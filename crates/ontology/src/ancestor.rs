//! Precomputed ancestor closures for the Section 4.1 hot path.
//!
//! [`Hierarchy::ancestors_with_dist`](crate::Hierarchy::ancestors_with_dist)
//! runs an upward BFS with a fresh `HashMap`, `VecDeque`, and output `Vec`
//! on every call. The coverage-graph builder in `osa-core` calls it once
//! per target pair, so at corpus scale the ancestor walk — not the
//! sentiment matching — dominates construction time. [`AncestorIndex`]
//! removes the walk entirely: one topological sweep computes every node's
//! ancestor closure into a CSR arena, after which "all ancestors of `n`
//! with shortest distances" is a slice borrow.
//!
//! For callers that need the allocation-free walk but cannot justify the
//! full closure (one-shot queries on huge hierarchies), [`AncestorScratch`]
//! backs the reusable-buffer variant
//! [`Hierarchy::ancestors_with_dist_into`](crate::Hierarchy::ancestors_with_dist_into).

use std::collections::VecDeque;

use crate::{Hierarchy, NodeId};

/// A CSR-layout ancestor closure: for every node, a flat slice of
/// `(ancestor, shortest downward distance)` entries sorted by ancestor id.
/// Every node appears in its own closure at distance 0, matching the
/// coverage semantics where a concept covers itself.
///
/// Built in a single topological sweep: a node's closure is the
/// min-distance merge of its parents' (already final) closures shifted by
/// one edge, so distances are exact shortest directed paths even in
/// multi-parent DAGs. Obtain one through
/// [`Hierarchy::ancestor_index`](crate::Hierarchy::ancestor_index), which
/// computes it lazily once per hierarchy.
#[derive(Debug, Clone, Default)]
pub struct AncestorIndex {
    /// Closure of node `i` lives at `entries[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// `(ancestor, dist)` runs, ascending by ancestor id within each run.
    entries: Vec<(NodeId, u32)>,
}

impl AncestorIndex {
    /// Compute the full closure index for `h` in one topological sweep.
    pub fn build(h: &Hierarchy) -> Self {
        let n = h.node_count();
        let mut closures: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); n];
        // Dense min-dist merge scratch, reset via the touched list so the
        // sweep is O(total closure size), not O(nodes²).
        let mut dist = vec![u32::MAX; n];
        let mut touched: Vec<u32> = Vec::new();
        for v in h.topological_order() {
            touched.clear();
            dist[v.index()] = 0;
            touched.push(v.0);
            for &p in h.parents(v) {
                for &(a, d) in &closures[p.index()] {
                    let slot = &mut dist[a.index()];
                    if *slot == u32::MAX {
                        *slot = d + 1;
                        touched.push(a.0);
                    } else if d + 1 < *slot {
                        *slot = d + 1;
                    }
                }
            }
            touched.sort_unstable();
            closures[v.index()] = touched
                .iter()
                .map(|&a| {
                    let d = dist[a as usize];
                    dist[a as usize] = u32::MAX;
                    (NodeId(a), d)
                })
                .collect();
        }

        let total = closures.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::with_capacity(total);
        offsets.push(0);
        for c in &closures {
            entries.extend_from_slice(c);
            offsets.push(u32::try_from(entries.len()).expect("closure arena exceeds u32 range"));
        }
        AncestorIndex { offsets, entries }
    }

    /// All ancestors of `n` — including `n` itself at distance 0 — with
    /// the shortest directed path length from each ancestor down to `n`,
    /// sorted by ancestor id. Same *set* as
    /// [`Hierarchy::ancestors_with_dist`](crate::Hierarchy::ancestors_with_dist)
    /// (which returns BFS discovery order).
    #[inline]
    pub fn ancestors(&self, n: NodeId) -> &[(NodeId, u32)] {
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total closure entries across all nodes (the index's memory weight,
    /// published as the `graph.closure.entries` metric by `osa-core`).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }
}

/// Reusable buffers for
/// [`Hierarchy::ancestors_with_dist_into`](crate::Hierarchy::ancestors_with_dist_into):
/// a dense visited/distance table (reset through a touched list), the BFS
/// queue, and nothing else. One scratch amortizes all allocations across
/// any number of walks over hierarchies of any size.
#[derive(Debug, Clone, Default)]
pub struct AncestorScratch {
    pub(crate) dist: Vec<u32>,
    pub(crate) queue: VecDeque<u32>,
    pub(crate) touched: Vec<u32>,
}

impl AncestorScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchyBuilder;

    /// r -> {a, b}, {a, b} -> c, b -> d (the diamond from hierarchy.rs).
    fn diamond() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        let a = b.add_node("a");
        let bb = b.add_node("b");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_edge(r, a).unwrap();
        b.add_edge(r, bb).unwrap();
        b.add_edge(a, c).unwrap();
        b.add_edge(bb, c).unwrap();
        b.add_edge(bb, d).unwrap();
        b.build().unwrap()
    }

    fn sorted_bfs(h: &Hierarchy, n: NodeId) -> Vec<(NodeId, u32)> {
        let mut v = h.ancestors_with_dist(n);
        v.sort_unstable();
        v
    }

    #[test]
    fn index_matches_bfs_on_diamond() {
        let h = diamond();
        let idx = h.ancestor_index();
        assert_eq!(idx.node_count(), h.node_count());
        for n in h.nodes() {
            assert_eq!(idx.ancestors(n), sorted_bfs(&h, n).as_slice(), "{n:?}");
        }
    }

    #[test]
    fn index_takes_shortest_path_in_multi_parent_dag() {
        // r -> a -> b -> c and r -> c directly: dist(r, c) must be 1.
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a = bl.add_node("a");
        let b = bl.add_node("b");
        let c = bl.add_node("c");
        bl.add_edge(r, a).unwrap();
        bl.add_edge(a, b).unwrap();
        bl.add_edge(b, c).unwrap();
        bl.add_edge(r, c).unwrap();
        let h = bl.build().unwrap();
        let idx = h.ancestor_index();
        let anc = idx.ancestors(c);
        assert_eq!(anc, &[(r, 1), (a, 2), (b, 1), (c, 0)]);
    }

    #[test]
    fn index_is_cached_per_hierarchy() {
        let h = diamond();
        let first = h.ancestor_index() as *const AncestorIndex;
        let second = h.ancestor_index() as *const AncestorIndex;
        assert_eq!(first, second, "OnceLock must return the same index");
        // A clone recomputes independently (the cache state is cloned,
        // but mutating queries never leak across hierarchies).
        let h2 = h.clone();
        for n in h2.nodes() {
            assert_eq!(
                h2.ancestor_index().ancestors(n),
                h.ancestor_index().ancestors(n)
            );
        }
    }

    #[test]
    fn entry_count_sums_closures() {
        let h = diamond();
        let expect: usize = h.nodes().map(|n| h.ancestors_with_dist(n).len()).sum();
        assert_eq!(h.ancestor_index().entry_count(), expect);
    }

    #[test]
    fn into_variant_matches_allocating_walk_exactly() {
        let h = diamond();
        let mut scratch = AncestorScratch::new();
        let mut out = Vec::new();
        for n in h.nodes() {
            h.ancestors_with_dist_into(n, &mut scratch, &mut out);
            assert_eq!(out, h.ancestors_with_dist(n), "{n:?}");
        }
    }

    #[test]
    fn scratch_survives_hierarchies_of_different_sizes() {
        let big = diamond();
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let x = bl.add_node("x");
        bl.add_edge(r, x).unwrap();
        let small = bl.build().unwrap();

        let mut scratch = AncestorScratch::new();
        let mut out = Vec::new();
        for h in [&big, &small, &big] {
            for n in h.nodes() {
                h.ancestors_with_dist_into(n, &mut scratch, &mut out);
                assert_eq!(out, h.ancestors_with_dist(n));
            }
        }
    }
}
