//! Best-first branch & bound for mixed-integer models.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::model::{Model, Solution, Status};
use crate::SolverError;

/// Tuning knobs for the branch & bound search.
#[derive(Debug, Clone, Copy)]
pub struct IlpOptions {
    /// A variable counts as integral when within this distance of an
    /// integer.
    pub int_tolerance: f64,
    /// Stop after exploring this many nodes (status becomes
    /// [`Status::NodeLimit`]).
    pub max_nodes: usize,
    /// Prune nodes whose LP bound is within this of the incumbent.
    pub gap_tolerance: f64,
    /// A known objective value of some feasible solution (e.g. from a
    /// heuristic). Subtrees whose LP bound cannot beat it are pruned from
    /// the start. If the search finds nothing strictly better, the result
    /// is [`Status::Infeasible`]-with-bound semantics: the caller should
    /// fall back to the heuristic solution, which is then proven optimal.
    pub upper_bound: Option<f64>,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            int_tolerance: 1e-6,
            max_nodes: 200_000,
            gap_tolerance: 1e-9,
            upper_bound: None,
        }
    }
}

/// A search node: bound-altering decisions layered over the base model.
#[derive(Debug, Clone)]
struct Node {
    /// LP bound of the parent (optimistic estimate for this node).
    bound: f64,
    /// `(var, new_lb, new_ub)` decisions along the path from the root.
    decisions: Vec<(usize, f64, f64)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

pub(crate) fn solve(
    model: &Model,
    opts: &IlpOptions,
    trace: Option<&osa_obs::Trace>,
) -> Result<Solution, SolverError> {
    if !model.has_integers() {
        return model.solve_lp();
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: f64::NEG_INFINITY,
        decisions: Vec::new(),
    });

    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;
    let mut pruned = 0u64;
    let publish = |nodes: usize, pruned: u64| {
        let obs = osa_obs::global();
        obs.add("solver.bb_nodes", nodes as u64);
        obs.add("solver.bb_pruned", pruned);
        if let Some(t) = trace {
            t.count("solver.bb_nodes", nodes as u64);
            t.count("solver.bb_pruned", pruned);
        }
    };

    while let Some(node) = heap.pop() {
        if nodes >= opts.max_nodes {
            publish(nodes, pruned);
            return Ok(match incumbent {
                Some(mut s) => {
                    s.status = Status::NodeLimit;
                    s
                }
                None => Solution {
                    status: Status::NodeLimit,
                    objective: f64::INFINITY,
                    values: vec![0.0; model.num_vars()],
                },
            });
        }
        nodes += 1;

        let cutoff = |incumbent: &Option<Solution>| -> f64 {
            let inc = incumbent.as_ref().map_or(f64::INFINITY, |s| s.objective);
            inc.min(opts.upper_bound.unwrap_or(f64::INFINITY))
        };
        if node.bound >= cutoff(&incumbent) - opts.gap_tolerance {
            pruned += 1;
            continue; // pruned by bound
        }

        // Apply the node's bound decisions to a copy of the model.
        let mut sub = model.clone();
        let mut infeasible_bounds = false;
        for &(v, lb, ub) in &node.decisions {
            let var = &mut sub.vars[v];
            var.lb = var.lb.max(lb);
            var.ub = var.ub.min(ub);
            if var.lb > var.ub + 1e-12 {
                infeasible_bounds = true;
                break;
            }
        }
        if infeasible_bounds {
            pruned += 1;
            continue;
        }

        let relax = match sub.solve_lp_with(crate::LpMethod::Auto) {
            Ok(s) => s,
            Err(SolverError::Unbounded) => return Err(SolverError::Unbounded),
            Err(e) => return Err(e),
        };
        if relax.status == Status::Infeasible {
            pruned += 1;
            continue;
        }
        if relax.objective >= cutoff(&incumbent) - opts.gap_tolerance {
            pruned += 1;
            continue;
        }

        // Most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = opts.int_tolerance;
        for (j, var) in model.vars.iter().enumerate() {
            if !var.integer {
                continue;
            }
            let v = relax.values[j];
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((j, v));
            }
        }

        match branch_var {
            None => {
                // Integral: snap and accept as incumbent.
                let mut vals = relax.values.clone();
                for (j, var) in model.vars.iter().enumerate() {
                    if var.integer {
                        vals[j] = vals[j].round();
                    }
                }
                let obj: f64 = model
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(j, v)| v.obj * vals[j])
                    .sum();
                if incumbent
                    .as_ref()
                    .is_none_or(|inc| obj < inc.objective - opts.gap_tolerance)
                {
                    incumbent = Some(Solution {
                        status: Status::Optimal,
                        objective: obj,
                        values: vals,
                    });
                }
            }
            Some((j, v)) => {
                let floor = v.floor();
                let mut down = node.decisions.clone();
                down.push((j, f64::NEG_INFINITY, floor));
                let mut up = node.decisions;
                up.push((j, floor + 1.0, f64::INFINITY));
                heap.push(Node {
                    bound: relax.objective,
                    decisions: down,
                });
                heap.push(Node {
                    bound: relax.objective,
                    decisions: up,
                });
            }
        }
    }

    publish(nodes, pruned);
    Ok(incumbent.unwrap_or(Solution {
        status: Status::Infeasible,
        objective: f64::INFINITY,
        values: vec![0.0; model.num_vars()],
    }))
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, IlpOptions, Model, Status};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, weights 3,4,2, capacity 6 → {b,c} = 20.
        let mut m = Model::minimize();
        let a = m.add_bin_var(-10.0);
        let b = m.add_bin_var(-13.0);
        let c = m.add_bin_var(-7.0);
        m.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let s = m.solve_ilp().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 20.0).abs() < 1e-6);
        assert!((s.value(a) - 0.0).abs() < 1e-6);
        assert!((s.value(b) - 1.0).abs() < 1e-6);
        assert!((s.value(c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 3, integer → 1 (LP gives 1.5).
        let mut m = Model::minimize();
        let x = m.add_int_var(0.0, 10.0, -1.0);
        let y = m.add_int_var(0.0, 10.0, -1.0);
        m.add_constraint(&[(x, 2.0), (y, 2.0)], Cmp::Le, 3.0);
        let lp = m.solve_lp().unwrap();
        assert!((lp.objective + 1.5).abs() < 1e-7);
        let ip = m.solve_ilp().unwrap();
        assert!((ip.objective + 1.0).abs() < 1e-7);
    }

    #[test]
    fn set_cover_ilp() {
        // Universe {1..5}; S1={1,2,3}, S2={2,4}, S3={3,4}, S4={4,5}, S5={1,5}.
        // Minimum cover has size 2 (S1, S4).
        let sets: Vec<Vec<usize>> = vec![
            vec![1, 2, 3],
            vec![2, 4],
            vec![3, 4],
            vec![4, 5],
            vec![1, 5],
        ];
        let mut m = Model::minimize();
        let vars: Vec<_> = sets.iter().map(|_| m.add_bin_var(1.0)).collect();
        for u in 1..=5usize {
            let terms: Vec<_> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contains(&u))
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            m.add_constraint(&terms, Cmp::Ge, 1.0);
        }
        let s = m.solve_ilp().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = Model::minimize();
        let x = m.add_bin_var(1.0);
        m.add_constraint(&[(x, 2.0)], Cmp::Eq, 1.0); // x = 0.5 impossible
        let s = m.solve_ilp().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn mixed_integer_model() {
        // min -x - 2y, x integer in [0,3], y continuous in [0, 2.5],
        // x + y <= 4 → x=3 (int), y=1 → wait: y ≤ 2.5 allows x=1.5.. but x
        // integer: best is x=3? obj(x=3,y=1) = -5; obj(x=1,y=2.5)=-6;
        // obj(x=2,y=2)=-6... x=1.5 forbidden; optimum -6.
        let mut m = Model::minimize();
        let x = m.add_int_var(0.0, 3.0, -1.0);
        let y = m.add_var(0.0, 2.5, -2.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = m.solve_ilp().unwrap();
        assert!((s.objective + 6.0).abs() < 1e-6);
        let xv = s.value(x);
        assert!((xv - xv.round()).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_status() {
        let mut m = Model::minimize();
        // A small packing problem that needs more than one node.
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_bin_var(-(1.0 + i as f64 * 0.1)))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_constraint(&terms, Cmp::Le, 5.0);
        let opts = IlpOptions {
            max_nodes: 1,
            ..Default::default()
        };
        let s = m.solve_ilp_with(&opts).unwrap();
        assert_eq!(s.status, Status::NodeLimit);
    }

    #[test]
    fn pure_lp_shortcut() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1.0, -1.0);
        let _ = x;
        let s = m.solve_ilp().unwrap();
        assert!((s.objective + 1.0).abs() < 1e-9);
    }
}
