//! LexRank sentence extraction (Erkan & Radev, 2004).

use std::collections::HashMap;

use osa_linalg::{pagerank, PageRankOptions};
use osa_text::{is_stopword, stem};

use crate::textrank::top_k;
use crate::{SentenceRecord, SentenceSelector};

/// Continuous LexRank: sentences are tf-idf vectors; the sentence graph is
/// weighted by cosine similarity (edges below `threshold` dropped, as in
/// the original paper); PageRank scores centrality; top-k selected.
#[derive(Debug, Clone, Copy)]
pub struct LexRank {
    /// Cosine-similarity cutoff below which edges are dropped. The
    /// original paper's default is 0.1.
    pub threshold: f64,
}

impl Default for LexRank {
    fn default() -> Self {
        LexRank { threshold: 0.1 }
    }
}

impl SentenceSelector for LexRank {
    fn select(&self, sentences: &[SentenceRecord], k: usize) -> Vec<usize> {
        let n = sentences.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }

        // Vocabulary of stemmed content words.
        let mut vocab: HashMap<String, usize> = HashMap::new();
        let docs: Vec<HashMap<usize, f64>> = sentences
            .iter()
            .map(|s| {
                let mut tf: HashMap<usize, f64> = HashMap::new();
                for t in &s.tokens {
                    if is_stopword(t) || t.len() <= 2 {
                        continue;
                    }
                    let id = {
                        let next = vocab.len();
                        *vocab.entry(stem(t)).or_insert(next)
                    };
                    *tf.entry(id).or_default() += 1.0;
                }
                tf
            })
            .collect();

        // idf(t) = ln(n / df(t)).
        let mut df = vec![0usize; vocab.len()];
        for d in &docs {
            for &t in d.keys() {
                df[t] += 1;
            }
        }
        let idf: Vec<f64> = df
            .iter()
            .map(|&d| ((n as f64) / (d.max(1) as f64)).ln().max(1e-9))
            .collect();

        // tf-idf vectors and their norms.
        let vecs: Vec<HashMap<usize, f64>> = docs
            .iter()
            .map(|d| {
                d.iter()
                    .map(|(&t, &f)| (t, f * idf[t]))
                    .collect::<HashMap<_, _>>()
            })
            .collect();
        let norms: Vec<f64> = vecs
            .iter()
            .map(|v| v.values().map(|x| x * x).sum::<f64>().sqrt())
            .collect();

        let mut weights = vec![0.0f64; n * n];
        for i in 0..n {
            if norms[i] < 1e-12 {
                continue;
            }
            for j in (i + 1)..n {
                if norms[j] < 1e-12 {
                    continue;
                }
                // Iterate the smaller map.
                let (a, b) = if vecs[i].len() <= vecs[j].len() {
                    (&vecs[i], &vecs[j])
                } else {
                    (&vecs[j], &vecs[i])
                };
                let dot: f64 = a
                    .iter()
                    .filter_map(|(t, &x)| b.get(t).map(|&y| x * y))
                    .sum();
                let cos = dot / (norms[i] * norms[j]);
                if cos >= self.threshold {
                    weights[i * n + j] = cos;
                    weights[j * n + i] = cos;
                }
            }
        }
        let ranks = pagerank(&weights, n, PageRankOptions::default());
        top_k(&ranks, k)
    }

    fn name(&self) -> &'static str {
        "lexrank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(text: &str) -> SentenceRecord {
        SentenceRecord::new(text, Vec::new())
    }

    #[test]
    fn hub_sentence_ranks_first() {
        let sents = vec![
            rec("battery camera screen keyboard speaker"),
            rec("battery camera quality"),
            rec("screen keyboard feel"),
            rec("unrelated shipping delivery carton"),
        ];
        let sel = LexRank::default().select(&sents, 1);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn threshold_prunes_weak_edges() {
        let sents = vec![
            rec("alpha beta gamma delta"),
            rec("alpha epsilon zeta eta"),
            rec("theta iota kappa lambda"),
        ];
        // With an impossible threshold nothing connects: uniform ranks.
        let strict = LexRank { threshold: 0.99 };
        assert_eq!(strict.select(&sents, 3), vec![0, 1, 2]);
    }

    #[test]
    fn rare_shared_terms_weigh_more_than_common_ones() {
        // "phone" appears everywhere (low idf); "gimbal" only in 2
        // sentences (high idf) → the gimbal pair is more similar.
        let sents = vec![
            rec("phone gimbal stabilizer"),
            rec("phone gimbal mount"),
            rec("phone case"),
            rec("phone charger"),
            rec("phone strap"),
        ];
        let sel = LexRank::default().select(&sents, 2);
        assert!(sel.contains(&0) && sel.contains(&1), "{sel:?}");
    }

    #[test]
    fn empty_input() {
        assert!(LexRank::default().select(&[], 2).is_empty());
    }

    #[test]
    fn all_stopword_sentences_do_not_crash() {
        let sents = vec![rec("the of and"), rec("is are was")];
        let sel = LexRank::default().select(&sents, 1);
        assert_eq!(sel.len(), 1);
    }
}
