//! Validated incremental construction of [`Hierarchy`] values.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::{Hierarchy, NodeId, OntologyError};

/// Builds a [`Hierarchy`] node by node, validating the rooted-DAG
/// invariants on [`HierarchyBuilder::build`]:
///
/// * at least one node;
/// * exactly one node without parents (the root);
/// * no directed cycles;
/// * every node reachable from the root;
/// * no duplicate node names or duplicate edges.
///
/// Edges accumulate in one flat arena (duplicates caught by a hash set),
/// and [`build`](Self::build) freezes adjacency into CSR arrays in a
/// single counting pass — no per-node `Vec` is ever allocated, so adding
/// a node or edge is amortized `O(1)` allocations at SNOMED scale (pinned
/// by the `hot_loop_allocations` integration test).
#[derive(Default, Debug, Clone)]
pub struct HierarchyBuilder {
    names: Vec<String>,
    terms: Vec<Vec<String>>,
    edges: Vec<(NodeId, NodeId)>,
    edge_set: HashSet<(u32, u32)>,
    by_name: HashMap<String, NodeId>,
    duplicate_name: Option<String>,
}

impl HierarchyBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a concept node; its canonical name doubles as its first surface
    /// term. Duplicate names are reported by [`build`](Self::build).
    pub fn add_node(&mut self, name: &str) -> NodeId {
        self.add_node_with_terms(name, std::slice::from_ref(&name))
    }

    /// Add a concept node with an explicit surface-term lexicon (used by
    /// the concept matcher). The canonical name is added as a term if not
    /// already present.
    pub fn add_node_with_terms<S: AsRef<str>>(&mut self, name: &str, terms: &[S]) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        if self.by_name.insert(name.to_owned(), id).is_some() && self.duplicate_name.is_none() {
            self.duplicate_name = Some(name.to_owned());
        }
        self.names.push(name.to_owned());
        let mut ts: Vec<String> = terms.iter().map(|t| t.as_ref().to_owned()).collect();
        if !ts.iter().any(|t| t == name) {
            ts.push(name.to_owned());
        }
        self.terms.push(ts);
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Add a directed edge from a general concept to a more specific one.
    pub fn add_edge(&mut self, parent: NodeId, child: NodeId) -> Result<(), OntologyError> {
        let n = self.names.len();
        if parent.index() >= n || child.index() >= n {
            return Err(OntologyError::UnknownNode);
        }
        if parent == child {
            return Err(OntologyError::SelfLoop(self.names[parent.index()].clone()));
        }
        if !self.edge_set.insert((parent.0, child.0)) {
            return Err(OntologyError::DuplicateEdge {
                parent: self.names[parent.index()].clone(),
                child: self.names[child.index()].clone(),
            });
        }
        self.edges.push((parent, child));
        Ok(())
    }

    /// Convenience: add (or reuse) nodes by name and connect them.
    pub fn add_edge_by_name(&mut self, parent: &str, child: &str) -> Result<(), OntologyError> {
        let p = self.get_or_add(parent);
        let c = self.get_or_add(child);
        self.add_edge(p, c)
    }

    /// Look up a node by name, adding it if absent.
    pub fn get_or_add(&mut self, name: &str) -> NodeId {
        match self.by_name.get(name) {
            Some(&id) => id,
            None => self.add_node(name),
        }
    }

    /// Validate the invariants and freeze into an immutable [`Hierarchy`].
    pub fn build(self) -> Result<Hierarchy, OntologyError> {
        if let Some(name) = self.duplicate_name {
            return Err(OntologyError::DuplicateName(name));
        }
        let n = self.names.len();
        if n == 0 {
            return Err(OntologyError::Empty);
        }

        // Freeze adjacency into CSR arenas: one counting pass, one
        // placement pass, preserving per-node insertion order exactly as
        // the old per-node `Vec` pushes did.
        let mut parent_off = vec![0u32; n + 1];
        let mut child_off = vec![0u32; n + 1];
        for &(p, c) in &self.edges {
            child_off[p.index() + 1] += 1;
            parent_off[c.index() + 1] += 1;
        }
        for i in 0..n {
            child_off[i + 1] += child_off[i];
            parent_off[i + 1] += parent_off[i];
        }
        let mut child_dat = vec![NodeId(0); self.edges.len()];
        let mut parent_dat = vec![NodeId(0); self.edges.len()];
        let mut ccur = child_off.clone();
        let mut pcur = parent_off.clone();
        for &(p, c) in &self.edges {
            child_dat[ccur[p.index()] as usize] = c;
            ccur[p.index()] += 1;
            parent_dat[pcur[c.index()] as usize] = p;
            pcur[c.index()] += 1;
        }

        let roots: Vec<NodeId> = (0..n)
            .filter(|&i| parent_off[i] == parent_off[i + 1])
            .map(|i| NodeId(i as u32))
            .collect();
        let root = match roots.as_slice() {
            [] => return Err(OntologyError::NoRoot),
            [r] => *r,
            many => {
                return Err(OntologyError::MultipleRoots(
                    many.iter().map(|r| self.names[r.index()].clone()).collect(),
                ))
            }
        };

        let children = |u: usize| &child_dat[child_off[u] as usize..child_off[u + 1] as usize];

        // Kahn topological sort detects cycles; BFS from the root computes
        // depths and reachability in one pass.
        let mut indeg: Vec<u32> = (0..n).map(|i| parent_off[i + 1] - parent_off[i]).collect();
        let mut queue: VecDeque<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut visited = 0usize;
        while let Some(u) = queue.pop_front() {
            visited += 1;
            for &c in children(u) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push_back(c.index());
                }
            }
        }
        if visited != n {
            return Err(OntologyError::Cycle);
        }

        let mut depth = vec![u32::MAX; n];
        let mut bfs = VecDeque::new();
        depth[root.index()] = 0;
        bfs.push_back(root.index());
        while let Some(u) = bfs.pop_front() {
            for &c in children(u) {
                if depth[c.index()] == u32::MAX {
                    depth[c.index()] = depth[u] + 1;
                    bfs.push_back(c.index());
                }
            }
        }
        if let Some(i) = depth.iter().position(|&d| d == u32::MAX) {
            return Err(OntologyError::Unreachable(self.names[i].clone()));
        }

        Ok(Hierarchy {
            names: self.names,
            terms: self.terms,
            parent_off,
            parent_dat,
            child_off,
            child_dat,
            edge_list: self.edges,
            root,
            depth,
            by_name: self.by_name,
            ancestor_index: std::sync::OnceLock::new(),
            segments: std::sync::OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            HierarchyBuilder::new().build(),
            Err(OntologyError::Empty)
        ));
    }

    #[test]
    fn rejects_cycles() {
        // A 2-cycle hanging off a root still has a unique root but cycles.
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.add_edge(r, x).unwrap();
        b.add_edge(x, y).unwrap();
        b.add_edge(y, x).unwrap();
        assert!(matches!(b.build(), Err(OntologyError::Cycle)));
    }

    #[test]
    fn rejects_multiple_roots() {
        let mut b = HierarchyBuilder::new();
        let r1 = b.add_node("r1");
        let _r2 = b.add_node("r2");
        let c = b.add_node("c");
        b.add_edge(r1, c).unwrap();
        match b.build() {
            Err(OntologyError::MultipleRoots(names)) => {
                assert_eq!(names, vec!["r1".to_owned(), "r2".to_owned()]);
            }
            other => panic!("expected MultipleRoots, got {other:?}"),
        }
    }

    #[test]
    fn rejects_self_loop_and_duplicate_edge() {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        let c = b.add_node("c");
        assert!(matches!(b.add_edge(r, r), Err(OntologyError::SelfLoop(_))));
        b.add_edge(r, c).unwrap();
        assert!(matches!(
            b.add_edge(r, c),
            Err(OntologyError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        let c1 = b.add_node("c");
        let c2 = b.add_node("c");
        b.add_edge(r, c1).unwrap();
        b.add_edge(r, c2).unwrap();
        assert!(matches!(b.build(), Err(OntologyError::DuplicateName(_))));
    }

    #[test]
    fn add_edge_by_name_builds_incrementally() {
        let mut b = HierarchyBuilder::new();
        b.add_edge_by_name("phone", "battery").unwrap();
        b.add_edge_by_name("phone", "screen").unwrap();
        b.add_edge_by_name("screen", "resolution").unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.name(h.root()), "phone");
        let res = h.node_by_name("resolution").unwrap();
        assert_eq!(h.depth(res), 2);
    }

    #[test]
    fn terms_include_canonical_name() {
        let mut b = HierarchyBuilder::new();
        let n = b.add_node_with_terms("display", &["screen", "lcd"]);
        let r = b.add_node("r");
        b.add_edge(r, n).unwrap();
        let h = b.build().unwrap();
        let terms = h.terms(n);
        assert!(terms.contains(&"screen".to_owned()));
        assert!(terms.contains(&"display".to_owned()));
    }

    #[test]
    fn unknown_node_edge_rejected() {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        assert!(matches!(
            b.add_edge(r, NodeId(42)),
            Err(OntologyError::UnknownNode)
        ));
    }
}
