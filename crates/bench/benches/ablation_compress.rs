//! Pair-compression ablation: the same instance solved raw (one pair per
//! occurrence) vs compressed (distinct pairs with multiplicities).

use criterion::{criterion_group, criterion_main, Criterion};
use osa_bench::quant_workload;
use osa_core::{compress_pairs, CoverageGraph, GreedySummarizer, Summarizer};

fn bench_compress(c: &mut Criterion) {
    let w = quant_workload(1, 400, 31);
    let pairs = &w.items[0].pairs;
    let (unique, weights) = compress_pairs(pairs);
    eprintln!("{} raw pairs -> {} distinct", pairs.len(), unique.len());

    let raw = CoverageGraph::for_pairs(&w.hierarchy, pairs, 0.5);
    let compressed = CoverageGraph::for_weighted_pairs(&w.hierarchy, &unique, &weights, 0.5);
    assert_eq!(
        GreedySummarizer.summarize(&raw, 8).cost,
        GreedySummarizer.summarize(&compressed, 8).cost,
        "compression must preserve greedy cost"
    );

    let mut group = c.benchmark_group("ablation/compression");
    group.bench_function("build_raw", |b| {
        b.iter(|| CoverageGraph::for_pairs(&w.hierarchy, pairs, 0.5))
    });
    group.bench_function("build_compressed", |b| {
        b.iter(|| {
            let (u, ws) = compress_pairs(pairs);
            CoverageGraph::for_weighted_pairs(&w.hierarchy, &u, &ws, 0.5)
        })
    });
    group.bench_function("greedy_raw", |b| {
        b.iter(|| GreedySummarizer.summarize(&raw, 8))
    });
    group.bench_function("greedy_compressed", |b| {
        b.iter(|| GreedySummarizer.summarize(&compressed, 8))
    });
    group.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
