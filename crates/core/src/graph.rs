//! The Section 4.1 initialization: the edge-weighted bipartite coverage
//! graph shared by every algorithm and every problem variant.
//!
//! Two construction implementations produce identical graphs:
//!
//! * **Indexed** (the default, [`GraphImpl::Indexed`]) — pass 1 buckets
//!   candidate pairs per concept into a CSR arena sorted by sentiment;
//!   pass 2 walks each target pair's precomputed ancestor closure
//!   ([`osa_ontology::AncestorIndex`]) and resolves the ε-window
//!   `[s − ε, s + ε]` with two binary searches, deduplicating candidates
//!   through a dense epoch-stamped scratch ([`GraphBuildScratch`]).
//!   Pass 2 is embarrassingly parallel over pair ranges: see
//!   [`GraphBuildPlan::shard`] and [`CoverageGraph::assemble`], which
//!   `osa-runtime` drives from a worker pool with an in-order merge so
//!   the result is byte-identical for any worker count.
//! * **Naive** ([`GraphImpl::Naive`]) — the original per-pair upward BFS
//!   plus full-bucket scan, kept as the cross-checking oracle
//!   (`--graph-impl naive`, property tests, benchmarks).
//!
//! The ε-window binary searches reproduce the naive predicate *exactly*:
//! `|s − s_q| ≤ ε ⟺ fl(s − s_q) ≤ ε ∧ fl(s_q − s) ≤ ε` (IEEE negation is
//! exact), and each one-sided rounded difference is weakly monotone along
//! the sentiment-sorted bucket, so the two partition points bound
//! precisely the candidates the naive `(s - s_q).abs() <= eps` test
//! accepts — floating-point boundaries included.

use std::collections::HashMap;
use std::ops::Range;

use osa_ontology::{AncestorImpl, AncestorIndex, Hierarchy, NodeId, SegmentIndex, SegmentScratch};

use crate::Pair;

/// Which problem variant a [`CoverageGraph`] was built for (informational;
/// the algorithms are granularity-agnostic, exactly as in Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// k-Pairs Coverage: each candidate is a single pair.
    Pairs,
    /// k-Sentences Coverage: each candidate is a sentence's pair set.
    Sentences,
    /// k-Reviews Coverage: each candidate is a review's pair set.
    Reviews,
}

/// The bipartite graph `G = (U, W, E)` of Section 4.1: `U` are the
/// selection candidates (pairs, sentences, or reviews), `W` the
/// concept-sentiment pairs to cover, and an edge `(u, q)` with weight `d`
/// means candidate `u` covers pair `q` at distance `d` (the minimum over
/// the candidate's member pairs, per Section 4.5).
///
/// The virtual root is *not* a candidate; its coverage of every pair is
/// recorded in [`root_dist`](CoverageGraph::root_dist), so the cost of any
/// selection is always finite (Definition 2 takes the min over `F ∪ {r}`).
///
/// Equality compares the full structure (granularity, both adjacency
/// sides, root distances, weights) — the naive and indexed builders are
/// property-tested `==`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageGraph {
    granularity: Granularity,
    /// `cand_edges[u]` = sorted `(pair, dist)` covered by candidate `u`.
    cand_edges: Vec<Vec<(u32, u32)>>,
    /// Reverse adjacency: `pair_edges[q]` = `(candidate, dist)`.
    pair_edges: Vec<Vec<(u32, u32)>>,
    /// Distance from the virtual root to each pair (= concept depth).
    root_dist: Vec<u32>,
    /// Multiplicity of each pair (1 unless built from compressed pairs).
    pair_weight: Vec<u64>,
}

/// Selects which [`CoverageGraph`] construction implementation runs: the
/// index-backed windowed builder (default) or the original scan builder,
/// kept as a cross-checking oracle (`--graph-impl naive`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphImpl {
    /// Ancestor-closure walk + sentiment-sorted buckets with binary-search
    /// ε-windows + dense epoch-stamped dedup scratch.
    #[default]
    Indexed,
    /// Per-pair upward BFS + full-bucket scan + per-pair `HashMap`
    /// (the pre-index builder; slower, trivially auditable).
    Naive,
}

impl GraphImpl {
    /// Parse the CLI spelling (`indexed|naive`).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "indexed" => GraphImpl::Indexed,
            "naive" => GraphImpl::Naive,
            _ => return None,
        })
    }

    /// The CLI spelling of this implementation.
    pub fn name(self) -> &'static str {
        match self {
            GraphImpl::Indexed => "indexed",
            GraphImpl::Naive => "naive",
        }
    }
}

/// Reusable dense scratch of the indexed builder: per-candidate best
/// distance for the pair currently being resolved, deduplicated by an
/// epoch stamp instead of clearing (or hashing) between pairs. One
/// scratch amortizes across any number of builds of any size; workers in
/// `osa-runtime` keep one per thread.
#[derive(Debug, Clone, Default)]
pub struct GraphBuildScratch {
    /// Best distance of candidate `u` — valid only when
    /// `stamp[u] == epoch`.
    dist: Vec<u32>,
    stamp: Vec<u32>,
    /// Candidates stamped in the current epoch.
    touched: Vec<u32>,
    epoch: u32,
    /// Segment-walk buffers for [`AncestorImpl::Segmented`] plans; unused
    /// (and unallocated) on the dense path.
    seg: SegmentScratch,
    /// Ancestor output of the segment walk, reused across pairs.
    anc_buf: Vec<(NodeId, u32)>,
}

impl GraphBuildScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    fn reserve(&mut self, n_cands: usize) {
        if self.dist.len() < n_cands {
            self.dist.resize(n_cands, 0);
            self.stamp.resize(n_cands, 0);
        }
        self.touched.clear();
    }

    /// Start resolving a new target pair; invalidates all stamps.
    fn next_epoch(&mut self) -> u32 {
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrap: ancient stamps could alias the restarted counter,
            // so wipe them and skip epoch 0 (the initial stamp value).
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }

    /// Record that some member of candidate `u` covers the current pair
    /// at `dist`, keeping the minimum over the candidate's members.
    #[inline]
    fn offer(&mut self, u: u32, dist: u32, epoch: u32) {
        let i = u as usize;
        if self.stamp[i] != epoch {
            self.stamp[i] = epoch;
            self.dist[i] = dist;
            self.touched.push(u);
        } else if dist < self.dist[i] {
            self.dist[i] = dist;
        }
    }
}

/// Pass 1 of the indexed builder, reusable across shards: candidate
/// member pairs bucketed per concept into a CSR arena, each bucket sorted
/// by sentiment so pass 2 can window it with two binary searches.
#[derive(Debug, Clone)]
pub struct GraphBuildPlan {
    eps: f64,
    root: NodeId,
    n_cands: usize,
    /// CSR offsets per concept node into `bucket_entries`.
    bucket_off: Vec<u32>,
    /// `(sentiment, candidate)` per bucket, sorted ascending (ties by
    /// candidate id; the order within equal sentiments is irrelevant to
    /// the output but fixed for determinism of the scan).
    bucket_entries: Vec<(f64, u32)>,
    /// Root distance (= concept depth) per target pair.
    root_dist: Vec<u32>,
    /// Entry weight of the ancestor index pass 2 walks (dense closure
    /// entries, or segment-index array elements — the
    /// `graph.closure.entries` metric).
    closure_entries: u64,
    /// Which ancestor index pass 2 walks per target pair.
    ancestor_impl: AncestorImpl,
}

/// The ancestor index a shard walks, resolved once per shard from the
/// plan's [`AncestorImpl`].
enum AncestorSource<'h> {
    Dense(&'h AncestorIndex),
    Segmented(&'h SegmentIndex),
}

impl GraphBuildPlan {
    /// Bucket `groups` (or, with `None`, one candidate per pair — the
    /// k-Pairs identity grouping, without materializing it) by member
    /// concept and sort each bucket by sentiment. Uses the dense ancestor
    /// closure; see [`new_with`](Self::new_with) for the switch.
    pub fn new(h: &Hierarchy, pairs: &[Pair], groups: Option<&[Vec<usize>]>, eps: f64) -> Self {
        Self::new_with(h, pairs, groups, eps, AncestorImpl::Dense)
    }

    /// [`new`](Self::new) with an explicit ancestor-index implementation.
    /// `Segmented` plans never materialize the dense closure — the whole
    /// build stays `O(n)` in hierarchy memory — and produce byte-identical
    /// graphs (the `osars check` ancestor axis proves it).
    pub fn new_with(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: Option<&[Vec<usize>]>,
        eps: f64,
        ancestor_impl: AncestorImpl,
    ) -> Self {
        assert!(eps >= 0.0, "sentiment threshold must be non-negative");
        let n_nodes = h.node_count();
        let n_cands = groups.map_or(pairs.len(), <[Vec<usize>]>::len);

        // Counting pass, then placement into the CSR arena.
        let mut bucket_off = vec![0u32; n_nodes + 1];
        let each_member = |f: &mut dyn FnMut(u32, Pair)| match groups {
            None => {
                for (u, p) in pairs.iter().enumerate() {
                    f(u as u32, *p);
                }
            }
            Some(gs) => {
                for (u, members) in gs.iter().enumerate() {
                    for &pi in members {
                        f(u as u32, pairs[pi]);
                    }
                }
            }
        };
        each_member(&mut |_, p| {
            // Matches the target-side assert in `shard`: a literal
            // `Pair` with NaN (bypassing `Pair::new`) must fail loudly
            // rather than land unwindowable in a sorted bucket.
            assert!(
                !p.sentiment.is_nan(),
                "NaN sentiments must be sanitized by Pair::new before building"
            );
            bucket_off[p.concept.index() + 1] += 1;
        });
        for i in 0..n_nodes {
            bucket_off[i + 1] += bucket_off[i];
        }
        let mut cursor = bucket_off.clone();
        let mut bucket_entries = vec![(0.0, 0u32); bucket_off[n_nodes] as usize];
        each_member(&mut |u, p| {
            let at = &mut cursor[p.concept.index()];
            bucket_entries[*at as usize] = (p.sentiment, u);
            *at += 1;
        });
        for c in 0..n_nodes {
            bucket_entries[bucket_off[c] as usize..bucket_off[c + 1] as usize]
                .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }

        GraphBuildPlan {
            eps,
            root: h.root(),
            n_cands,
            bucket_off,
            bucket_entries,
            root_dist: pairs.iter().map(|p| h.depth(p.concept)).collect(),
            closure_entries: match ancestor_impl {
                AncestorImpl::Dense => h.ancestor_index().entry_count() as u64,
                AncestorImpl::Segmented => h.segment_index().entry_weight() as u64,
            },
            ancestor_impl,
        }
    }

    /// Resolve the plan's ancestor index against `h` (building and
    /// caching it on first use).
    fn ancestor_source<'h>(&self, h: &'h Hierarchy) -> AncestorSource<'h> {
        match self.ancestor_impl {
            AncestorImpl::Dense => AncestorSource::Dense(h.ancestor_index()),
            AncestorImpl::Segmented => AncestorSource::Segmented(h.segment_index()),
        }
    }

    /// Number of coverage targets the plan was built over.
    pub fn num_pairs(&self) -> usize {
        self.root_dist.len()
    }

    /// The ε-window of bucket `anc` around target sentiment `s_q`, as a
    /// range into `bucket_entries`. Exactly the candidates the naive
    /// `(s - s_q).abs() <= eps` test accepts: each one-sided rounded
    /// difference is weakly monotone along the sorted bucket, and
    /// `fl(s_q − s) = −fl(s − s_q)` exactly, so the two partition points
    /// split the bucket on the very same predicate.
    #[inline]
    fn window(&self, anc: NodeId, s_q: f64) -> (usize, usize) {
        let lo0 = self.bucket_off[anc.index()] as usize;
        let hi0 = self.bucket_off[anc.index() + 1] as usize;
        let b = &self.bucket_entries[lo0..hi0];
        let lo = b.partition_point(|&(s, _)| s_q - s > self.eps);
        let hi = lo + b[lo..].partition_point(|&(s, _)| s - s_q <= self.eps);
        (lo0 + lo, lo0 + hi)
    }

    /// Pass 2 over the contiguous target range `range`: resolve each
    /// pair's covering candidates (minimum distance over members) by
    /// walking the concept's ancestor closure and windowing each bucket.
    /// Pure with respect to `self`; shards of disjoint ranges can run on
    /// any threads in any order and [`CoverageGraph::assemble`] back into
    /// the exact sequential result.
    ///
    /// `h` and `pairs` must be the values the plan was built from.
    pub fn shard(
        &self,
        h: &Hierarchy,
        pairs: &[Pair],
        range: Range<usize>,
        scratch: &mut GraphBuildScratch,
    ) -> GraphShard {
        let src = self.ancestor_source(h);
        scratch.reserve(self.n_cands);
        let mut pair_off = Vec::with_capacity(range.len() + 1);
        pair_off.push(0u32);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut window_hits = 0u64;
        let start = range.start;
        for qi in range {
            self.resolve_pair(&src, pairs[qi], scratch, &mut edges, &mut window_hits);
            pair_off.push(u32::try_from(edges.len()).expect("shard edge count exceeds u32"));
        }
        GraphShard {
            start,
            pair_off,
            edges,
            window_hits,
        }
    }

    /// Resolve one target pair's covering candidates into `edges` —
    /// the shared body of [`shard`](Self::shard) and
    /// [`shard_append`](Self::shard_append).
    fn resolve_pair(
        &self,
        src: &AncestorSource<'_>,
        q: Pair,
        scratch: &mut GraphBuildScratch,
        edges: &mut Vec<(u32, u32)>,
        window_hits: &mut u64,
    ) {
        // Real assert, not debug: `Pair.sentiment` is a pub field, so
        // a literal-constructed NaN can bypass `Pair::new`'s
        // sanitization, and a NaN here would silently corrupt the
        // sorted-bucket windows in release builds.
        assert!(
            !q.sentiment.is_nan(),
            "NaN sentiments must be sanitized by Pair::new before building"
        );
        let epoch = scratch.next_epoch();
        match src {
            AncestorSource::Dense(index) => {
                for &(anc, dist) in index.ancestors(q.concept) {
                    self.offer_bucket(anc, dist, q.sentiment, scratch, epoch, window_hits);
                }
            }
            AncestorSource::Segmented(index) => {
                // Walk into an owned buffer so the bucket offers below can
                // borrow the scratch mutably again.
                let mut anc_buf = std::mem::take(&mut scratch.anc_buf);
                index.ancestors_with_dist_into(q.concept, &mut scratch.seg, &mut anc_buf);
                for &(anc, dist) in &anc_buf {
                    self.offer_bucket(anc, dist, q.sentiment, scratch, epoch, window_hits);
                }
                scratch.anc_buf = anc_buf;
            }
        }
        // Ascending candidate order makes the shard (and therefore
        // the assembled graph) independent of closure walk order — this
        // sort is also why the two ancestor implementations, which
        // enumerate the same set in different orders, produce
        // byte-identical shards.
        scratch.touched.sort_unstable();
        edges.extend(
            scratch
                .touched
                .iter()
                .map(|&u| (u, scratch.dist[u as usize])),
        );
    }

    /// Offer one ancestor's ε-window (or whole root bucket) to the
    /// current pair's candidates.
    #[inline]
    fn offer_bucket(
        &self,
        anc: NodeId,
        dist: u32,
        s_q: f64,
        scratch: &mut GraphBuildScratch,
        epoch: u32,
        window_hits: &mut u64,
    ) {
        // A candidate on the root covers every pair with no
        // sentiment condition (Definition 1), so the root bucket
        // is taken whole.
        let (lo, hi) = if anc == self.root {
            (
                self.bucket_off[anc.index()] as usize,
                self.bucket_off[anc.index() + 1] as usize,
            )
        } else {
            self.window(anc, s_q)
        };
        *window_hits += (hi - lo) as u64;
        for &(_, u) in &self.bucket_entries[lo..hi] {
            scratch.offer(u, dist, epoch);
        }
    }

    /// Build the successor plan after an **append**: `self` was built
    /// over a prefix of `pairs` (and of `groups`, when grouped), and the
    /// result is byte-identical to `GraphBuildPlan::new(h, pairs, groups,
    /// eps)` — but only the *new* members are bucketed and each touched
    /// bucket is merged (old sorted run + new sorted run) instead of
    /// re-sorting every bucket from scratch.
    ///
    /// Contract: `h` and `eps` are unchanged, the old pairs/groups are an
    /// unmodified prefix, and new groups only extend the candidate list.
    /// The returned [`PlanDelta`] records which concept buckets grew, so
    /// [`shard_append`](Self::shard_append) can reuse unaffected rows.
    pub fn append(
        &self,
        h: &Hierarchy,
        pairs: &[Pair],
        groups: Option<&[Vec<usize>]>,
    ) -> (GraphBuildPlan, PlanDelta) {
        let n_nodes = h.node_count();
        let prev_pairs = self.root_dist.len();
        let prev_cands = self.n_cands;
        let n_cands = groups.map_or(pairs.len(), <[Vec<usize>]>::len);
        assert!(pairs.len() >= prev_pairs, "append must extend the pairs");
        assert!(n_cands >= prev_cands, "append must extend the candidates");

        // Bucket only the new members (new candidates' member pairs).
        let mut fresh: Vec<(u32, (f64, u32))> = Vec::new();
        let each_new = |f: &mut dyn FnMut(u32, Pair)| match groups {
            None => {
                for (u, p) in pairs.iter().enumerate().skip(prev_cands) {
                    f(u as u32, *p);
                }
            }
            Some(gs) => {
                for (u, members) in gs.iter().enumerate().skip(prev_cands) {
                    for &pi in members {
                        f(u as u32, pairs[pi]);
                    }
                }
            }
        };
        each_new(&mut |u, p| {
            assert!(
                !p.sentiment.is_nan(),
                "NaN sentiments must be sanitized by Pair::new before building"
            );
            fresh.push((p.concept.index() as u32, (p.sentiment, u)));
        });
        // Group new entries per bucket, sorted the way `new` sorts: the
        // comparator totally orders entries (ties are identical tuples),
        // so merging two sorted runs reproduces the full sort exactly.
        fresh.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1 .0.total_cmp(&b.1 .0))
                .then(a.1 .1.cmp(&b.1 .1))
        });
        let mut delta_count = vec![0u32; n_nodes];
        for &(node, _) in &fresh {
            delta_count[node as usize] += 1;
        }

        let mut bucket_off = vec![0u32; n_nodes + 1];
        for i in 0..n_nodes {
            let old = self.bucket_off[i + 1] - self.bucket_off[i];
            bucket_off[i + 1] = bucket_off[i] + old + delta_count[i];
        }
        let mut bucket_entries = Vec::with_capacity(bucket_off[n_nodes] as usize);
        let mut fresh_at = 0usize;
        let mut changed_nodes = Vec::new();
        for (c, &count) in delta_count.iter().enumerate().take(n_nodes) {
            let old =
                &self.bucket_entries[self.bucket_off[c] as usize..self.bucket_off[c + 1] as usize];
            let added = count as usize;
            if added == 0 {
                bucket_entries.extend_from_slice(old);
                continue;
            }
            changed_nodes.push(c as u32);
            let new = &fresh[fresh_at..fresh_at + added];
            fresh_at += added;
            // Two-run merge under the bucket comparator.
            let (mut i, mut j) = (0, 0);
            while i < old.len() && j < new.len() {
                let a = old[i];
                let b = new[j].1;
                if a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).is_le() {
                    bucket_entries.push(a);
                    i += 1;
                } else {
                    bucket_entries.push(b);
                    j += 1;
                }
            }
            bucket_entries.extend_from_slice(&old[i..]);
            bucket_entries.extend(new[j..].iter().map(|&(_, e)| e));
        }

        let mut root_dist = self.root_dist.clone();
        root_dist.extend(pairs[prev_pairs..].iter().map(|p| h.depth(p.concept)));
        let root_changed = delta_count[self.root.index()] > 0;
        let next = GraphBuildPlan {
            eps: self.eps,
            root: self.root,
            n_cands,
            bucket_off,
            bucket_entries,
            root_dist,
            closure_entries: self.closure_entries,
            ancestor_impl: self.ancestor_impl,
        };
        (
            next,
            PlanDelta {
                prev_pairs,
                prev_cands,
                changed_nodes,
                root_changed,
            },
        )
    }

    /// Incremental pass 2 after [`append`](Self::append): produce the
    /// full-range shard of the successor plan (`self`), copying the edge
    /// row of every old pair whose ancestor closure touches **no** grown
    /// bucket (its ε-windows are unchanged, so its row is unchanged by
    /// construction) and resolving only affected old pairs plus all new
    /// pairs. Byte-identical to `self.shard(h, pairs, 0..pairs.len())`.
    ///
    /// `prev` must be the predecessor plan's full-range shard. Returns
    /// the shard plus the indices of old pairs that were re-resolved —
    /// the exact rows whose edges may differ, which
    /// [`warm_keys`](Self::warm_keys) uses to update gain keys.
    pub fn shard_append(
        &self,
        h: &Hierarchy,
        pairs: &[Pair],
        prev: &GraphShard,
        delta: &PlanDelta,
        scratch: &mut GraphBuildScratch,
    ) -> (GraphShard, Vec<u32>) {
        assert_eq!(prev.start, 0, "prev must be a full-range shard");
        assert_eq!(prev.len(), delta.prev_pairs, "prev covers the old pairs");
        let src = self.ancestor_source(h);
        scratch.reserve(self.n_cands);
        let mut changed = vec![false; h.node_count()];
        for &c in &delta.changed_nodes {
            changed[c as usize] = true;
        }
        let mut pair_off = Vec::with_capacity(pairs.len() + 1);
        pair_off.push(0u32);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut window_hits = 0u64;
        let mut recomputed = Vec::new();
        for (qi, &q) in pairs.iter().enumerate() {
            let reusable = qi < delta.prev_pairs
                && !delta.root_changed
                && match &src {
                    AncestorSource::Dense(index) => index
                        .ancestors(q.concept)
                        .iter()
                        .all(|&(anc, _)| !changed[anc.index()]),
                    AncestorSource::Segmented(index) => {
                        let mut anc_buf = std::mem::take(&mut scratch.anc_buf);
                        index.ancestors_with_dist_into(q.concept, &mut scratch.seg, &mut anc_buf);
                        let clean = anc_buf.iter().all(|&(anc, _)| !changed[anc.index()]);
                        scratch.anc_buf = anc_buf;
                        clean
                    }
                };
            if reusable {
                edges.extend_from_slice(prev.row(qi));
            } else {
                if qi < delta.prev_pairs {
                    recomputed.push(qi as u32);
                }
                self.resolve_pair(&src, q, scratch, &mut edges, &mut window_hits);
            }
            pair_off.push(u32::try_from(edges.len()).expect("shard edge count exceeds u32"));
        }
        (
            GraphShard {
                start: 0,
                pair_off,
                edges,
                window_hits,
            },
            recomputed,
        )
    }

    /// Update a cached exact initial-gain vector (one `u64` per
    /// candidate, as seeded by the lazy greedy heap) across an append:
    /// subtract the contributions of every re-resolved old row, add the
    /// contributions of its replacement, and add the rows of the new
    /// pairs. Old pairs' root distances and weights are unchanged by an
    /// append, so the result is byte-identical to recomputing the keys
    /// from the assembled successor graph.
    ///
    /// `weights` must match what the graph is assembled with (`None` =
    /// unit weights).
    pub fn warm_keys(
        &self,
        prev_keys: &[u64],
        prev: &GraphShard,
        next: &GraphShard,
        recomputed: &[u32],
        delta: &PlanDelta,
        weights: Option<&[u64]>,
    ) -> Vec<u64> {
        assert_eq!(
            prev_keys.len(),
            delta.prev_cands,
            "one key per old candidate"
        );
        assert_eq!(next.len(), self.root_dist.len(), "next must be full-range");
        let weight = |q: usize| weights.map_or(1, |w| w[q]);
        let mut keys = prev_keys.to_vec();
        keys.resize(self.n_cands, 0);
        for &qi in recomputed {
            let q = qi as usize;
            let rd = self.root_dist[q];
            let w = weight(q);
            for &(u, d) in prev.row(q) {
                keys[u as usize] -= u64::from(rd.saturating_sub(d)) * w;
            }
            for &(u, d) in next.row(q) {
                keys[u as usize] += u64::from(rd.saturating_sub(d)) * w;
            }
        }
        for q in delta.prev_pairs..self.root_dist.len() {
            let rd = self.root_dist[q];
            let w = weight(q);
            for &(u, d) in next.row(q) {
                keys[u as usize] += u64::from(rd.saturating_sub(d)) * w;
            }
        }
        keys
    }
}

/// What changed between a plan and its [`append`](GraphBuildPlan::append)
/// successor: the prefix sizes plus which concept buckets grew. Drives
/// row reuse in [`GraphBuildPlan::shard_append`] and key reuse in
/// [`GraphBuildPlan::warm_keys`].
#[derive(Debug, Clone)]
pub struct PlanDelta {
    /// Coverage targets of the predecessor plan.
    prev_pairs: usize,
    /// Candidates of the predecessor plan.
    prev_cands: usize,
    /// Concept node indices whose bucket gained entries, ascending.
    changed_nodes: Vec<u32>,
    /// Did the root bucket grow? Root candidates cover *every* pair, so
    /// this forces every row to re-resolve.
    root_changed: bool,
}

impl PlanDelta {
    /// Coverage targets of the predecessor plan.
    pub fn prev_pairs(&self) -> usize {
        self.prev_pairs
    }

    /// Candidates of the predecessor plan.
    pub fn prev_cands(&self) -> usize {
        self.prev_cands
    }

    /// Number of concept buckets that gained entries.
    pub fn changed_buckets(&self) -> usize {
        self.changed_nodes.len()
    }
}

/// Pass-2 output for one contiguous range of target pairs (see
/// [`GraphBuildPlan::shard`]): per pair, the covering candidates with
/// their minimum distances, candidates ascending.
#[derive(Debug, Clone)]
pub struct GraphShard {
    start: usize,
    /// CSR offsets: pair `start + i` owns `edges[pair_off[i]..pair_off[i + 1]]`.
    pair_off: Vec<u32>,
    /// `(candidate, dist)` runs.
    edges: Vec<(u32, u32)>,
    /// Candidates examined through ε-windows and root buckets — a
    /// deterministic per-pair sum, so totals are sharding-invariant.
    window_hits: u64,
}

impl GraphShard {
    /// First target pair index this shard covers.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of target pairs this shard covers.
    pub fn len(&self) -> usize {
        self.pair_off.len() - 1
    }

    /// Does this shard cover no pairs?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(candidate, dist)` edge row of local pair `i` (for a
    /// full-range shard, `i` is the pair index itself).
    pub fn row(&self, i: usize) -> &[(u32, u32)] {
        &self.edges[self.pair_off[i] as usize..self.pair_off[i + 1] as usize]
    }
}

impl CoverageGraph {
    /// Build the graph for **k-Pairs Coverage**: every pair is both a
    /// candidate and a coverage target.
    pub fn for_pairs(h: &Hierarchy, pairs: &[Pair], eps: f64) -> Self {
        Self::for_pairs_with(
            h,
            pairs,
            eps,
            GraphImpl::default(),
            &mut GraphBuildScratch::new(),
        )
    }

    /// Build the k-Pairs graph over *compressed* pairs: `weights[q]` is
    /// the multiplicity of `pairs[q]` (see [`compress_pairs`]). Costs are
    /// identical to the uncompressed instance, but the graph is as small
    /// as the number of distinct pairs.
    pub fn for_weighted_pairs(h: &Hierarchy, pairs: &[Pair], weights: &[u64], eps: f64) -> Self {
        Self::for_weighted_pairs_with(
            h,
            pairs,
            weights,
            eps,
            GraphImpl::default(),
            &mut GraphBuildScratch::new(),
        )
    }

    /// Build the graph for **k-Reviews/Sentences Coverage**: candidate `u`
    /// is the set of pairs `groups[u]` (indices into `pairs`).
    pub fn for_groups(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: &[Vec<usize>],
        eps: f64,
        granularity: Granularity,
    ) -> Self {
        Self::for_groups_with(
            h,
            pairs,
            groups,
            eps,
            granularity,
            GraphImpl::default(),
            &mut GraphBuildScratch::new(),
        )
    }

    /// [`for_pairs`](Self::for_pairs) with an explicit implementation and
    /// a caller-owned scratch (ignored by the naive builder).
    pub fn for_pairs_with(
        h: &Hierarchy,
        pairs: &[Pair],
        eps: f64,
        imp: GraphImpl,
        scratch: &mut GraphBuildScratch,
    ) -> Self {
        Self::for_pairs_with_ancestor(h, pairs, eps, imp, AncestorImpl::Dense, scratch)
    }

    /// [`for_pairs_with`](Self::for_pairs_with) plus the ancestor-index
    /// switch (ignored by the naive builder, whose upward BFS needs no
    /// index at all).
    pub fn for_pairs_with_ancestor(
        h: &Hierarchy,
        pairs: &[Pair],
        eps: f64,
        imp: GraphImpl,
        ancestor: AncestorImpl,
        scratch: &mut GraphBuildScratch,
    ) -> Self {
        match imp {
            GraphImpl::Indexed => Self::build_indexed(
                h,
                pairs,
                None,
                eps,
                Granularity::Pairs,
                None,
                ancestor,
                scratch,
            ),
            GraphImpl::Naive => Self::for_pairs_naive(h, pairs, eps),
        }
    }

    /// [`for_weighted_pairs`](Self::for_weighted_pairs) with an explicit
    /// implementation and a caller-owned scratch.
    pub fn for_weighted_pairs_with(
        h: &Hierarchy,
        pairs: &[Pair],
        weights: &[u64],
        eps: f64,
        imp: GraphImpl,
        scratch: &mut GraphBuildScratch,
    ) -> Self {
        Self::for_weighted_pairs_with_ancestor(
            h,
            pairs,
            weights,
            eps,
            imp,
            AncestorImpl::Dense,
            scratch,
        )
    }

    /// [`for_weighted_pairs_with`](Self::for_weighted_pairs_with) plus the
    /// ancestor-index switch.
    pub fn for_weighted_pairs_with_ancestor(
        h: &Hierarchy,
        pairs: &[Pair],
        weights: &[u64],
        eps: f64,
        imp: GraphImpl,
        ancestor: AncestorImpl,
        scratch: &mut GraphBuildScratch,
    ) -> Self {
        assert_eq!(pairs.len(), weights.len(), "one weight per pair");
        match imp {
            GraphImpl::Indexed => Self::build_indexed(
                h,
                pairs,
                None,
                eps,
                Granularity::Pairs,
                Some(weights),
                ancestor,
                scratch,
            ),
            GraphImpl::Naive => Self::for_weighted_pairs_naive(h, pairs, weights, eps),
        }
    }

    /// [`for_groups`](Self::for_groups) with an explicit implementation
    /// and a caller-owned scratch.
    pub fn for_groups_with(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: &[Vec<usize>],
        eps: f64,
        granularity: Granularity,
        imp: GraphImpl,
        scratch: &mut GraphBuildScratch,
    ) -> Self {
        Self::for_groups_with_ancestor(
            h,
            pairs,
            groups,
            eps,
            granularity,
            imp,
            AncestorImpl::Dense,
            scratch,
        )
    }

    /// [`for_groups_with`](Self::for_groups_with) plus the ancestor-index
    /// switch.
    #[allow(clippy::too_many_arguments)]
    pub fn for_groups_with_ancestor(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: &[Vec<usize>],
        eps: f64,
        granularity: Granularity,
        imp: GraphImpl,
        ancestor: AncestorImpl,
        scratch: &mut GraphBuildScratch,
    ) -> Self {
        match imp {
            GraphImpl::Indexed => Self::build_indexed(
                h,
                pairs,
                Some(groups),
                eps,
                granularity,
                None,
                ancestor,
                scratch,
            ),
            GraphImpl::Naive => Self::for_groups_naive(h, pairs, groups, eps, granularity),
        }
    }

    /// Sequential indexed build: one plan, one full-range shard, one
    /// assembly.
    #[allow(clippy::too_many_arguments)]
    fn build_indexed(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: Option<&[Vec<usize>]>,
        eps: f64,
        granularity: Granularity,
        weights: Option<&[u64]>,
        ancestor: AncestorImpl,
        scratch: &mut GraphBuildScratch,
    ) -> Self {
        let plan = GraphBuildPlan::new_with(h, pairs, groups, eps, ancestor);
        let shard = plan.shard(h, pairs, 0..pairs.len(), scratch);
        Self::assemble(&plan, granularity, weights, &[shard])
    }

    /// Merge pass-2 shards into the final graph. The shards must tile
    /// `0..plan.num_pairs()` contiguously in order; because target
    /// indices then ascend across the walk and are unique per candidate,
    /// every adjacency list comes out sorted — the exact layout the naive
    /// builder produces, regardless of how the range was sharded.
    pub fn assemble(
        plan: &GraphBuildPlan,
        granularity: Granularity,
        weights: Option<&[u64]>,
        shards: &[GraphShard],
    ) -> Self {
        let n_pairs = plan.num_pairs();
        let mut expect = 0usize;
        for s in shards {
            assert_eq!(s.start, expect, "shards must tile the pair range in order");
            expect += s.len();
        }
        assert_eq!(expect, n_pairs, "shards must cover every pair");

        let mut cand_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); plan.n_cands];
        let mut window_hits = 0u64;
        let mut n_edges = 0u64;
        for s in shards {
            window_hits += s.window_hits;
            n_edges += s.edges.len() as u64;
            for li in 0..s.len() {
                let qi = (s.start + li) as u32;
                for &(u, d) in &s.edges[s.pair_off[li] as usize..s.pair_off[li + 1] as usize] {
                    cand_edges[u as usize].push((qi, d));
                }
            }
        }
        let mut pair_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_pairs];
        for (u, edges) in cand_edges.iter().enumerate() {
            for &(q, d) in edges {
                pair_edges[q as usize].push((u as u32, d));
            }
        }

        let pair_weight = match weights {
            Some(w) => {
                assert_eq!(w.len(), n_pairs, "one weight per pair");
                w.to_vec()
            }
            None => vec![1; n_pairs],
        };
        let obs = osa_obs::global();
        obs.add("graph.builds", 1);
        obs.add("graph.edges", n_edges);
        obs.add("graph.closure.entries", plan.closure_entries);
        obs.add("graph.window.hits", window_hits);
        obs.add("graph.sharded_items", n_pairs as u64);
        CoverageGraph {
            granularity,
            cand_edges,
            pair_edges,
            root_dist: plan.root_dist.clone(),
            pair_weight,
        }
    }

    /// [`for_pairs`](Self::for_pairs) through the naive oracle builder.
    pub fn for_pairs_naive(h: &Hierarchy, pairs: &[Pair], eps: f64) -> Self {
        let groups: Vec<Vec<usize>> = (0..pairs.len()).map(|i| vec![i]).collect();
        Self::build_naive(h, pairs, &groups, eps, Granularity::Pairs, None)
    }

    /// [`for_weighted_pairs`](Self::for_weighted_pairs) through the naive
    /// oracle builder.
    pub fn for_weighted_pairs_naive(
        h: &Hierarchy,
        pairs: &[Pair],
        weights: &[u64],
        eps: f64,
    ) -> Self {
        assert_eq!(pairs.len(), weights.len(), "one weight per pair");
        let groups: Vec<Vec<usize>> = (0..pairs.len()).map(|i| vec![i]).collect();
        Self::build_naive(h, pairs, &groups, eps, Granularity::Pairs, Some(weights))
    }

    /// [`for_groups`](Self::for_groups) through the naive oracle builder.
    pub fn for_groups_naive(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: &[Vec<usize>],
        eps: f64,
        granularity: Granularity,
    ) -> Self {
        Self::build_naive(h, pairs, groups, eps, granularity, None)
    }

    /// The original two-pass construction of Section 4.1, kept verbatim
    /// as the oracle the indexed builder is tested against: bucket
    /// candidate pairs by concept, then for each target pair walk its
    /// concept's ancestors (upward BFS) and connect every bucketed
    /// candidate within the sentiment threshold (no threshold for
    /// candidates sitting on the root concept).
    fn build_naive(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: &[Vec<usize>],
        eps: f64,
        granularity: Granularity,
        weights: Option<&[u64]>,
    ) -> Self {
        assert!(eps >= 0.0, "sentiment threshold must be non-negative");
        let n_pairs = pairs.len();
        let n_cands = groups.len();

        // Pass 1: bucket (candidate, sentiment) by member-pair concept.
        let mut buckets: Vec<Vec<(u32, f64)>> = vec![Vec::new(); h.node_count()];
        for (u, members) in groups.iter().enumerate() {
            for &pi in members {
                let p = pairs[pi];
                buckets[p.concept.index()].push((u as u32, p.sentiment));
            }
        }

        // Pass 2: for each target pair, BFS up the ancestors.
        let root = h.root();
        let mut cand_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_cands];
        let mut root_dist = Vec::with_capacity(n_pairs);
        // Reused scratch: candidate -> best distance for the current pair.
        let mut best: HashMap<u32, u32> = HashMap::new();
        for (qi, q) in pairs.iter().enumerate() {
            root_dist.push(h.depth(q.concept));
            best.clear();
            for (anc, dist) in h.ancestors_with_dist(q.concept) {
                let is_root = anc == root;
                for &(u, s) in &buckets[anc.index()] {
                    if is_root || (s - q.sentiment).abs() <= eps {
                        best.entry(u)
                            .and_modify(|d| *d = (*d).min(dist))
                            .or_insert(dist);
                    }
                }
            }
            for (&u, &d) in &best {
                cand_edges[u as usize].push((qi as u32, d));
            }
        }
        for e in &mut cand_edges {
            e.sort_unstable();
        }
        let mut pair_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_pairs];
        for (u, edges) in cand_edges.iter().enumerate() {
            for &(q, d) in edges {
                pair_edges[q as usize].push((u as u32, d));
            }
        }

        let pair_weight = match weights {
            Some(w) => w.to_vec(),
            None => vec![1; n_pairs],
        };
        let obs = osa_obs::global();
        obs.add("graph.builds", 1);
        obs.add(
            "graph.edges",
            cand_edges.iter().map(|e| e.len() as u64).sum(),
        );
        CoverageGraph {
            granularity,
            cand_edges,
            pair_edges,
            root_dist,
            pair_weight,
        }
    }

    /// Problem variant this graph was built for.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of selection candidates `|U|`.
    pub fn num_candidates(&self) -> usize {
        self.cand_edges.len()
    }

    /// Number of coverage targets `|W|`.
    pub fn num_pairs(&self) -> usize {
        self.root_dist.len()
    }

    /// Number of coverage edges `|E|` (excluding the implicit root edges).
    pub fn num_edges(&self) -> usize {
        self.cand_edges.iter().map(Vec::len).sum()
    }

    /// Pairs covered by candidate `u`, with distances.
    pub fn covered_by(&self, u: usize) -> &[(u32, u32)] {
        &self.cand_edges[u]
    }

    /// Candidates covering pair `q`, with distances.
    pub fn coverers_of(&self, q: usize) -> &[(u32, u32)] {
        &self.pair_edges[q]
    }

    /// Distance from the virtual root to pair `q`.
    pub fn root_dist(&self, q: usize) -> u32 {
        self.root_dist[q]
    }

    /// Multiplicity of pair `q` (1 unless built from compressed pairs).
    pub fn pair_weight(&self, q: usize) -> u64 {
        self.pair_weight[q]
    }

    /// Cost of the empty summary: every pair served by the root.
    pub fn root_cost(&self) -> u64 {
        self.root_dist
            .iter()
            .zip(&self.pair_weight)
            .map(|(&d, &w)| u64::from(d) * w)
            .sum()
    }

    /// The Definition 2 cost `C(F, P)` of selecting candidates `selected`.
    pub fn cost_of(&self, selected: &[usize]) -> u64 {
        let mut best = self.root_dist.clone();
        for &u in selected {
            for &(q, d) in &self.cand_edges[u] {
                let b = &mut best[q as usize];
                if d < *b {
                    *b = d;
                }
            }
        }
        best.iter()
            .zip(&self.pair_weight)
            .map(|(&d, &w)| u64::from(d) * w)
            .sum()
    }

    /// Per-pair serving distances for a selection (used by metrics).
    pub fn serving_distances(&self, selected: &[usize]) -> Vec<u32> {
        let mut best = Vec::new();
        self.serving_distances_into(selected, &mut best);
        best
    }

    /// [`serving_distances`](Self::serving_distances) into a caller-owned
    /// buffer, so sweeps that probe many selections allocate nothing.
    pub fn serving_distances_into(&self, selected: &[usize], out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.root_dist);
        for &u in selected {
            for &(q, d) in &self.cand_edges[u] {
                let b = &mut out[q as usize];
                if d < *b {
                    *b = d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_ontology::{Hierarchy, HierarchyBuilder, NodeId};

    /// r -> a -> c ; r -> b   (a tiny tree)
    fn tree() -> (Hierarchy, NodeId, NodeId, NodeId, NodeId) {
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a = bl.add_node("a");
        let b = bl.add_node("b");
        let c = bl.add_node("c");
        bl.add_edge(r, a).unwrap();
        bl.add_edge(r, b).unwrap();
        bl.add_edge(a, c).unwrap();
        (bl.build().unwrap(), r, a, b, c)
    }

    #[test]
    fn pairs_graph_edges_match_definition() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![
            Pair::new(a, 0.5), // 0
            Pair::new(c, 0.4), // 1: covered by 0 (dist 1) and itself
            Pair::new(b, 0.9), // 2: only itself
        ];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        assert_eq!(g.num_candidates(), 3);
        assert_eq!(g.num_pairs(), 3);
        assert_eq!(g.covered_by(0), &[(0, 0), (1, 1)]);
        assert_eq!(g.covered_by(1), &[(1, 0)]);
        assert_eq!(g.covered_by(2), &[(2, 0)]);
        assert_eq!(g.root_dist(1), 2);
        assert_eq!(g.coverers_of(1), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn eps_controls_density() {
        let (h, _r, a, _b, c) = tree();
        let pairs = vec![Pair::new(a, 0.9), Pair::new(c, 0.0)];
        let tight = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let loose = CoverageGraph::for_pairs(&h, &pairs, 1.0);
        // Self-edges always exist; the cross edge only at eps >= 0.9.
        assert_eq!(tight.num_edges(), 2);
        assert_eq!(loose.num_edges(), 3);
    }

    #[test]
    fn root_concept_pair_covers_everything() {
        let (h, r, a, _b, c) = tree();
        let pairs = vec![Pair::new(r, 0.0), Pair::new(a, 1.0), Pair::new(c, -1.0)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.1);
        // Candidate 0 sits on the root: covers all three pairs despite the
        // sentiment gaps, at depth distances.
        assert_eq!(g.covered_by(0), &[(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn cost_of_empty_selection_is_root_cost() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![Pair::new(a, 0.0), Pair::new(b, 0.0), Pair::new(c, 0.0)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        assert_eq!(g.root_cost(), 1 + 1 + 2);
        assert_eq!(g.cost_of(&[]), g.root_cost());
    }

    #[test]
    fn cost_decreases_monotonically() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![Pair::new(a, 0.0), Pair::new(b, 0.0), Pair::new(c, 0.1)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let c0 = g.cost_of(&[]);
        let c1 = g.cost_of(&[0]);
        let c2 = g.cost_of(&[0, 1]);
        assert!(c1 <= c0 && c2 <= c1);
        // Selecting pair on `a` serves itself (0) and c (1); b stays at root (1).
        assert_eq!(c1, 1 + 1);
    }

    #[test]
    fn group_candidates_take_min_over_members() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![
            Pair::new(a, 0.0), // 0
            Pair::new(b, 0.0), // 1
            Pair::new(c, 0.0), // 2
        ];
        // One "sentence" containing pairs on a and b.
        let groups = vec![vec![0, 1], vec![2]];
        let g = CoverageGraph::for_groups(&h, &pairs, &groups, 0.5, Granularity::Sentences);
        assert_eq!(g.granularity(), Granularity::Sentences);
        assert_eq!(g.num_candidates(), 2);
        // Sentence 0 covers pair 0 (d 0), pair 1 (d 0), pair 2 (d 1 via a).
        assert_eq!(g.covered_by(0), &[(0, 0), (1, 0), (2, 1)]);
        // Selecting just that sentence zeroes everything except c at 1.
        assert_eq!(g.cost_of(&[0]), 1);
    }

    #[test]
    fn duplicate_member_concepts_keep_min_distance() {
        let (h, _r, a, _b, c) = tree();
        let pairs = vec![Pair::new(a, 0.0), Pair::new(c, 0.0), Pair::new(c, 0.05)];
        // A review mentioning a and c: covers pair 2 at distance 0 (via its
        // own c member), not 1 (via a).
        let groups = vec![vec![0, 1]];
        let g = CoverageGraph::for_groups(&h, &pairs, &groups, 0.5, Granularity::Reviews);
        let edge = g.covered_by(0).iter().find(|&&(q, _)| q == 2).copied();
        assert_eq!(edge, Some((2, 0)));
    }

    #[test]
    fn serving_distances_match_cost() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![Pair::new(a, 0.2), Pair::new(b, -0.3), Pair::new(c, 0.2)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        for sel in [vec![], vec![0], vec![1, 2], vec![0, 1, 2]] {
            let dists = g.serving_distances(&sel);
            let total: u64 = dists.iter().map(|&d| u64::from(d)).sum();
            assert_eq!(total, g.cost_of(&sel));
        }
    }

    /// A multi-parent DAG exercising the closure merge:
    /// r -> {a, b}, a -> m, b -> m, m -> l, b -> l.
    fn dag() -> (Hierarchy, Vec<NodeId>) {
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a = bl.add_node("a");
        let b = bl.add_node("b");
        let m = bl.add_node("m");
        let l = bl.add_node("l");
        bl.add_edge(r, a).unwrap();
        bl.add_edge(r, b).unwrap();
        bl.add_edge(a, m).unwrap();
        bl.add_edge(b, m).unwrap();
        bl.add_edge(m, l).unwrap();
        bl.add_edge(b, l).unwrap();
        (bl.build().unwrap(), vec![r, a, b, m, l])
    }

    fn dag_pairs(ids: &[NodeId]) -> Vec<Pair> {
        // Boundary-heavy sentiments: exact ε hits, both zeros, extremes.
        let sentiments = [0.5, -0.5, 0.0, -0.0, 1.0, -1.0, 0.2, 0.7, -0.3, 0.5];
        sentiments
            .iter()
            .enumerate()
            .map(|(i, &s)| Pair::new(ids[i % ids.len()], s))
            .collect()
    }

    #[test]
    fn indexed_matches_naive_for_pairs_on_dag() {
        let (h, ids) = dag();
        let pairs = dag_pairs(&ids);
        for eps in [0.0, 0.2, 0.5, 1.0, 2.0] {
            let naive = CoverageGraph::for_pairs_naive(&h, &pairs, eps);
            let indexed = CoverageGraph::for_pairs(&h, &pairs, eps);
            assert_eq!(naive, indexed, "eps={eps}");
        }
    }

    #[test]
    fn indexed_matches_naive_for_weighted_pairs() {
        let (h, ids) = dag();
        let (unique, weights) = crate::compress_pairs(&dag_pairs(&ids));
        let naive = CoverageGraph::for_weighted_pairs_naive(&h, &unique, &weights, 0.5);
        let indexed = CoverageGraph::for_weighted_pairs(&h, &unique, &weights, 0.5);
        assert_eq!(naive, indexed);
    }

    #[test]
    fn indexed_matches_naive_for_groups() {
        let (h, ids) = dag();
        let pairs = dag_pairs(&ids);
        let groups = vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7, 8, 9], vec![2, 2]];
        for gran in [Granularity::Sentences, Granularity::Reviews] {
            let naive = CoverageGraph::for_groups_naive(&h, &pairs, &groups, 0.3, gran);
            let indexed = CoverageGraph::for_groups(&h, &pairs, &groups, 0.3, gran);
            assert_eq!(naive, indexed, "{gran:?}");
        }
    }

    /// Assemble the full graph through the incremental append path and
    /// through a fresh build, plus the warm-started gain keys, and demand
    /// byte-identity of both.
    fn assert_append_matches_fresh(
        h: &Hierarchy,
        base_pairs: &[Pair],
        pairs: &[Pair],
        base_groups: Option<&[Vec<usize>]>,
        groups: Option<&[Vec<usize>]>,
        eps: f64,
        granularity: Granularity,
    ) {
        use crate::LazyGreedySummarizer;
        let mut scratch = GraphBuildScratch::new();
        let plan0 = GraphBuildPlan::new(h, base_pairs, base_groups, eps);
        let shard0 = plan0.shard(h, base_pairs, 0..base_pairs.len(), &mut scratch);
        let g0 = CoverageGraph::assemble(&plan0, granularity, None, std::slice::from_ref(&shard0));
        let keys0 = LazyGreedySummarizer::initial_keys(&g0);

        let (plan1, delta) = plan0.append(h, pairs, groups);
        let (shard1, recomputed) = plan1.shard_append(h, pairs, &shard0, &delta, &mut scratch);
        let incremental =
            CoverageGraph::assemble(&plan1, granularity, None, std::slice::from_ref(&shard1));

        let fresh_plan = GraphBuildPlan::new(h, pairs, groups, eps);
        let fresh_shard = fresh_plan.shard(h, pairs, 0..pairs.len(), &mut scratch);
        let fresh = CoverageGraph::assemble(&fresh_plan, granularity, None, &[fresh_shard]);
        assert_eq!(incremental, fresh, "eps={eps} {granularity:?}");

        let keys1 = plan1.warm_keys(&keys0, &shard0, &shard1, &recomputed, &delta, None);
        assert_eq!(
            keys1,
            LazyGreedySummarizer::initial_keys(&fresh),
            "warm keys must match a cold recompute (eps={eps})"
        );
    }

    #[test]
    fn append_matches_fresh_build_for_pairs() {
        let (h, ids) = dag();
        let base = dag_pairs(&ids);
        let mut ext = base.clone();
        // New pairs hit existing buckets, a fresh bucket, and exact-ε
        // boundaries.
        ext.push(Pair::new(ids[3], 0.5));
        ext.push(Pair::new(ids[4], -0.2));
        ext.push(Pair::new(ids[1], 1.0));
        for eps in [0.0, 0.2, 0.5, 1.0] {
            assert_append_matches_fresh(&h, &base, &ext, None, None, eps, Granularity::Pairs);
        }
    }

    #[test]
    fn append_touching_the_root_bucket_recomputes_everything() {
        let (h, ids) = dag();
        let base = dag_pairs(&ids);
        let mut ext = base.clone();
        ext.push(Pair::new(ids[0], 0.1)); // ids[0] is the root
        assert_append_matches_fresh(&h, &base, &ext, None, None, 0.5, Granularity::Pairs);
    }

    #[test]
    fn append_matches_fresh_build_for_groups() {
        let (h, ids) = dag();
        let base_pairs = dag_pairs(&ids);
        let base_groups = vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7, 8, 9]];
        let mut pairs = base_pairs.clone();
        pairs.push(Pair::new(ids[2], 0.3));
        pairs.push(Pair::new(ids[4], -0.5));
        pairs.push(Pair::new(ids[3], 0.8));
        let mut groups = base_groups.clone();
        groups.push(vec![10, 11]);
        groups.push(vec![12]);
        for gran in [Granularity::Sentences, Granularity::Reviews] {
            assert_append_matches_fresh(
                &h,
                &base_pairs,
                &pairs,
                Some(&base_groups),
                Some(&groups),
                0.3,
                gran,
            );
        }
    }

    #[test]
    fn chained_appends_match_fresh_builds() {
        // Grow pair-by-pair through the incremental path, checking the
        // invariant at every step — the serve ingest access pattern.
        let (h, ids) = dag();
        let mut pairs = dag_pairs(&ids);
        let mut scratch = GraphBuildScratch::new();
        let mut plan = GraphBuildPlan::new(&h, &pairs, None, 0.5);
        let mut shard = plan.shard(&h, &pairs, 0..pairs.len(), &mut scratch);
        let mut keys = crate::LazyGreedySummarizer::initial_keys(&CoverageGraph::assemble(
            &plan,
            Granularity::Pairs,
            None,
            &[shard.clone()],
        ));
        let additions = [
            Pair::new(ids[4], 0.5),
            Pair::new(ids[2], -0.9),
            Pair::new(ids[0], 0.0),
            Pair::new(ids[1], 0.5),
        ];
        for (step, &p) in additions.iter().enumerate() {
            pairs.push(p);
            let (next_plan, delta) = plan.append(&h, &pairs, None);
            let (next_shard, recomputed) =
                next_plan.shard_append(&h, &pairs, &shard, &delta, &mut scratch);
            let g = CoverageGraph::assemble(
                &next_plan,
                Granularity::Pairs,
                None,
                std::slice::from_ref(&next_shard),
            );
            let fresh = CoverageGraph::for_pairs(&h, &pairs, 0.5);
            assert_eq!(g, fresh, "step {step}");
            keys = next_plan.warm_keys(&keys, &shard, &next_shard, &recomputed, &delta, None);
            assert_eq!(
                keys,
                crate::LazyGreedySummarizer::initial_keys(&fresh),
                "step {step}"
            );
            plan = next_plan;
            shard = next_shard;
        }
    }

    #[test]
    fn shard_rows_expose_the_edge_runs() {
        let (h, ids) = dag();
        let pairs = dag_pairs(&ids);
        let plan = GraphBuildPlan::new(&h, &pairs, None, 0.5);
        let shard = plan.shard(&h, &pairs, 0..pairs.len(), &mut GraphBuildScratch::new());
        let g = CoverageGraph::assemble(
            &plan,
            Granularity::Pairs,
            None,
            std::slice::from_ref(&shard),
        );
        for q in 0..pairs.len() {
            assert_eq!(shard.row(q), g.coverers_of(q), "pair {q}");
        }
    }

    #[test]
    fn sharded_assembly_matches_single_shard() {
        let (h, ids) = dag();
        let pairs = dag_pairs(&ids);
        let plan = GraphBuildPlan::new(&h, &pairs, None, 0.5);
        let mut scratch = GraphBuildScratch::new();
        let whole = plan.shard(&h, &pairs, 0..pairs.len(), &mut scratch);
        let whole = CoverageGraph::assemble(&plan, Granularity::Pairs, None, &[whole]);
        // Every contiguous 2-way split, including empty edge shards.
        for cut in 0..=pairs.len() {
            let s1 = plan.shard(&h, &pairs, 0..cut, &mut scratch);
            let s2 = plan.shard(&h, &pairs, cut..pairs.len(), &mut scratch);
            let merged = CoverageGraph::assemble(&plan, Granularity::Pairs, None, &[s1, s2]);
            assert_eq!(whole, merged, "cut={cut}");
        }
    }

    #[test]
    #[should_panic(expected = "sanitized by Pair::new")]
    fn literal_nan_pair_is_rejected_in_release_too() {
        // `Pair.sentiment` is pub, so literal construction can bypass the
        // constructor's NaN sanitization; the build must fail loudly
        // (real assert, not debug_assert) instead of producing a graph
        // with corrupt sorted buckets.
        let (h, _r, a, _b, _c) = tree();
        let pairs = vec![
            Pair::new(a, 0.5),
            Pair {
                concept: a,
                sentiment: f64::NAN,
            },
        ];
        let _ = CoverageGraph::for_pairs(&h, &pairs, 0.5);
    }

    #[test]
    #[should_panic(expected = "tile the pair range in order")]
    fn assemble_rejects_out_of_order_shards() {
        let (h, ids) = dag();
        let pairs = dag_pairs(&ids);
        let plan = GraphBuildPlan::new(&h, &pairs, None, 0.5);
        let mut scratch = GraphBuildScratch::new();
        let s1 = plan.shard(&h, &pairs, 0..4, &mut scratch);
        let s2 = plan.shard(&h, &pairs, 4..pairs.len(), &mut scratch);
        let _ = CoverageGraph::assemble(&plan, Granularity::Pairs, None, &[s2, s1]);
    }

    #[test]
    fn scratch_survives_reuse_across_instances_and_epoch_wrap() {
        let (h, ids) = dag();
        let pairs = dag_pairs(&ids);
        let (h2, _r, a, b, c) = {
            let t = tree();
            (t.0, t.1, t.2, t.3, t.4)
        };
        let small = vec![Pair::new(a, 0.1), Pair::new(b, 0.2), Pair::new(c, 0.3)];
        let mut scratch = GraphBuildScratch::new();
        // Force the epoch counter through its wrap-around reset path.
        scratch.epoch = u32::MAX - 2;
        for _ in 0..8 {
            let big =
                CoverageGraph::for_pairs_with(&h, &pairs, 0.5, GraphImpl::Indexed, &mut scratch);
            assert_eq!(big, CoverageGraph::for_pairs_naive(&h, &pairs, 0.5));
            let tiny =
                CoverageGraph::for_pairs_with(&h2, &small, 0.1, GraphImpl::Indexed, &mut scratch);
            assert_eq!(tiny, CoverageGraph::for_pairs_naive(&h2, &small, 0.1));
        }
    }

    #[test]
    fn graph_impl_names_round_trip() {
        for imp in [GraphImpl::Indexed, GraphImpl::Naive] {
            assert_eq!(GraphImpl::from_name(imp.name()), Some(imp));
        }
        assert_eq!(GraphImpl::from_name("fast"), None);
        assert_eq!(GraphImpl::default(), GraphImpl::Indexed);
    }

    #[test]
    fn window_is_inclusive_at_exact_eps_boundary() {
        // a-candidate at 0.5, c-target at 0.0, eps exactly 0.5: the naive
        // abs-test accepts; the windowed builder must too.
        let (h, _r, a, _b, c) = tree();
        let pairs = vec![Pair::new(a, 0.5), Pair::new(c, 0.0)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        assert_eq!(g.covered_by(0), &[(0, 0), (1, 1)]);
        assert_eq!(g, CoverageGraph::for_pairs_naive(&h, &pairs, 0.5));
    }
}
