//! Pluggable span sinks: where completed-span events go.
//!
//! The registry notifies its sink once per completed span (RAII guard
//! drop or [`crate::Registry::observe_span`]). Sinks must be cheap and
//! must never panic on I/O failure — a broken trace pipe should not take
//! the pipeline down, so write errors are swallowed.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receiver of completed-span events. Implementations must be
/// thread-safe: spans complete concurrently on worker threads.
pub trait Sink: Send + Sync {
    /// Called once per completed span with its histogram name and
    /// duration in microseconds.
    fn on_span(&self, name: &str, micros: f64);

    /// Flush any buffered output. Default: nothing.
    fn flush(&self) {}
}

/// Discards every event. What the registry behaves like before a sink
/// is installed; provided as an explicit value for [`TeeSink`] slots
/// and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn on_span(&self, _name: &str, _micros: f64) {}
}

/// Human-readable one-line-per-span output on stderr, e.g.
/// `[osa-obs] graph.build 1234.5µs`. Stdout is deliberately untouched so
/// summaries stay byte-identical under `--trace`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn on_span(&self, name: &str, micros: f64) {
        eprintln!("[osa-obs] {name} {micros:.1}µs");
    }
}

/// Streams one JSON object per span as a line of JSON-text (JSONL),
/// serialized with the in-tree `osa-json`:
///
/// ```text
/// {"t":"span","name":"graph.build","us":1234.5}
/// ```
///
/// Snapshot lines (counters/gauges/histograms) are appended at the end
/// of a run via [`JsonlSink::write_snapshot`].
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Append one line per metric in `snapshot` (see
    /// [`crate::Snapshot::to_jsonl`] for the schema).
    pub fn write_snapshot(&self, snapshot: &crate::Snapshot) {
        let mut out = self.out.lock().expect("jsonl lock");
        let _ = out.write_all(snapshot.to_jsonl().as_bytes());
        let _ = out.flush();
    }
}

impl Sink for JsonlSink {
    fn on_span(&self, name: &str, micros: f64) {
        use osa_json::Value;
        let obj = Value::Object(vec![
            ("t".to_owned(), Value::String("span".to_owned())),
            ("name".to_owned(), Value::String(name.to_owned())),
            ("us".to_owned(), Value::Number(micros)),
        ]);
        let mut line = osa_json::to_string(&obj);
        line.push('\n');
        let _ = self
            .out
            .lock()
            .expect("jsonl lock")
            .write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl lock").flush();
    }
}

/// Fans every event out to each inner sink, so `--trace --metrics f.jsonl`
/// can feed the human and machine outputs simultaneously.
pub struct TeeSink(pub Vec<Arc<dyn Sink>>);

impl Sink for TeeSink {
    fn on_span(&self, name: &str, micros: f64) {
        for sink in &self.0 {
            sink.on_span(name, micros);
        }
    }

    fn flush(&self) {
        for sink in &self.0 {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_streams_valid_span_lines() {
        let dir = std::env::temp_dir().join("osa_obs_sink_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.on_span("graph.build", 12.5);
        sink.on_span("extract", 3.0);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = osa_json::parse(lines[0]).unwrap();
        assert_eq!(v.get("t").and_then(|t| t.as_str()), Some("span"));
        assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("graph.build"));
        assert_eq!(v.get("us").and_then(|u| u.as_f64()), Some(12.5));
    }

    #[test]
    fn tee_sink_fans_out() {
        struct CountSink(std::sync::atomic::AtomicUsize);
        impl Sink for CountSink {
            fn on_span(&self, _: &str, _: f64) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let a = Arc::new(CountSink(Default::default()));
        let b = Arc::new(CountSink(Default::default()));
        let tee = TeeSink(vec![a.clone(), b.clone()]);
        tee.on_span("x", 1.0);
        tee.on_span("y", 2.0);
        assert_eq!(a.0.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(b.0.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
