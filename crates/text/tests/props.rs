//! Property tests for the text pipeline.

use osa_text::{porter_stem, split_sentences, stem, tokenize, SentimentLexicon};
use proptest::prelude::*;

/// Pinned regression: the shrunken instance from the checked-in proptest
/// seed (`crates/text/tests/props.proptest-regressions`), `text = "𝑨"`.
/// U+1D468 (MATHEMATICAL BOLD CAPITAL A) is a non-BMP scalar: 4 bytes of
/// UTF-8, classified `Lu` but with no lowercase mapping. Any byte-offset
/// slicing or "uppercase implies a distinct lowercase form" assumption
/// in the tokenizer, stemmers or sentence splitter trips on it. Kept as
/// a named test so it can never silently shrink away or depend on RNG
/// replay (upstream `cc` seed hashes are not replayable).
#[test]
fn regression_non_bmp_math_bold_a() {
    let text = "𝑨";
    let tokens = tokenize(text);
    assert_eq!(tokens, vec!["𝑨".to_string()], "one intact token");
    for t in &tokens {
        assert!(!t.is_empty());
        // Lowercased, except characters with no lowercase mapping.
        assert!(t
            .chars()
            .all(|c| !c.is_uppercase() || c.to_lowercase().eq(std::iter::once(c))));
    }
    assert_eq!(split_sentences(text), vec!["𝑨".to_string()]);
    // Stemmers must pass non-ASCII through untouched, never panic.
    assert_eq!(stem("𝑨"), "𝑨");
    assert_eq!(porter_stem("𝑨"), "𝑨");
    assert_eq!(stem("𝑨𝑨𝑨"), "𝑨𝑨𝑨");
    assert_eq!(porter_stem("𝑨𝑨𝑨"), "𝑨𝑨𝑨");
    let lex = SentimentLexicon::default();
    let s = lex.score_sentence(text);
    assert!((-1.0..=1.0).contains(&s));
}

/// Pinned regression: `stem`'s doubled-consonant collapse used to compare
/// the final two *bytes* of the stemmed word. Any scalar whose UTF-8
/// encoding ends in two equal bytes — 𒀀 (U+12000, `F0 92 80 80`) is the
/// canonical example — matched the "doubled consonant" pattern, and
/// `out.pop()` then removed the entire four-byte character:
/// `stem("𒀀es")` returned `""`. The collapse now compares whole chars
/// and only fires on ASCII consonants.
#[test]
fn regression_byte_level_collapse_ate_cuneiform() {
    // The min-stem-length guard also counts chars now, so short bases
    // refuse to strip rather than relying on byte length.
    assert_eq!(stem("𒀀es"), "𒀀es");
    assert_eq!(stem("x𒀀ing"), "x𒀀ing");
    assert_eq!(stem("ab𒀀s"), "ab𒀀");
    assert_eq!(stem("𒀀𒀀es"), "𒀀𒀀e");
    // Porter's ASCII gate must pass non-ASCII input through untouched.
    assert_eq!(porter_stem("𒀀es"), "𒀀es");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokens_are_lowercase_and_nonempty(text in ".{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(!t.is_empty());
            // Lowercased, except characters with no lowercase mapping
            // (e.g. 𝑨, which Unicode classifies Lu but maps to itself).
            prop_assert!(
                t.chars().all(|c| !c.is_uppercase() || c.to_lowercase().eq(std::iter::once(c))),
                "{t}"
            );
            prop_assert!(
                t.chars().next().is_some_and(char::is_alphanumeric),
                "token must start alphanumeric: {t:?}"
            );
            prop_assert!(
                t.chars().last().is_some_and(char::is_alphanumeric),
                "token must end alphanumeric: {t:?}"
            );
        }
    }

    #[test]
    fn tokenize_is_idempotent_on_joined_output(text in "[a-zA-Z0-9 .,!?'-]{0,120}") {
        let once = tokenize(&text);
        let rejoined = once.join(" ");
        let twice = tokenize(&rejoined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn sentences_cover_all_letters(text in "[a-zA-Z .!?]{0,160}") {
        let letters = |s: &str| s.chars().filter(|c| c.is_alphabetic()).count();
        let total: usize = split_sentences(&text).iter().map(|s| letters(s)).sum();
        prop_assert_eq!(total, letters(&text), "no letter may be lost");
    }

    #[test]
    fn every_sentence_contains_a_letter(text in ".{0,200}") {
        for s in split_sentences(&text) {
            prop_assert!(s.chars().any(char::is_alphabetic));
        }
    }

    #[test]
    fn stem_never_produces_tiny_or_longer_output(word in "[a-z]{1,20}") {
        let s = stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= word.len());
        if word.len() > 4 && s != word {
            prop_assert!(s.len() >= 3);
        }
    }

    #[test]
    fn porter_stem_shrinks_and_stays_ascii(word in "[a-z]{1,20}") {
        let s = porter_stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= word.len());
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn sentiment_scores_are_bounded(text in ".{0,200}") {
        let lex = SentimentLexicon::default();
        let s = lex.score_sentence(&text);
        prop_assert!((-1.0..=1.0).contains(&s), "{s}");
    }

    #[test]
    fn unicode_words_keep_every_scalar_through_stemming(
        prefix in "[a-z]{0,6}",
        suffix in "[a-z]{0,6}",
        which in 0usize..5,
    ) {
        // Splice one exotic scalar into an otherwise-ASCII word. The
        // stemmers take the Unicode slow path; whatever suffix handling
        // happens, the non-ASCII scalar itself must survive intact and
        // nothing may panic on a char boundary.
        let exotic = ['𝑨', '𒀀', '😀', 'ß', 'é'][which];
        let word = format!("{prefix}{exotic}{suffix}");
        let s = stem(&word);
        prop_assert!(s.chars().filter(|&c| c == exotic).count() >= 1, "{word:?} -> {s:?}");
        prop_assert!(s.chars().count() <= word.chars().count());
        // Porter refuses non-ASCII entirely: input comes back verbatim.
        prop_assert_eq!(porter_stem(&word), word.clone());
        // And the ASCII fast path agrees with itself: stripping the
        // exotic scalar first or after never panics either.
        let ascii: String = word.chars().filter(char::is_ascii).collect();
        let _ = stem(&ascii);
        let _ = porter_stem(&ascii);
    }

    #[test]
    fn repeating_an_opinion_word_does_not_change_its_average(word in "[a-z]{3,10}", n in 1usize..5) {
        let lex = SentimentLexicon::default();
        let one = lex.score_sentence(&word);
        let many = lex.score_sentence(&vec![word.as_str(); n].join(" "));
        // Averaging over identical hits keeps the score constant.
        prop_assert!((one - many).abs() < 1e-12);
    }
}
