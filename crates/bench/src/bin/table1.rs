//! Table 1 reproduction: dataset characteristics of the two synthetic
//! corpora, printed next to the paper's reference values.

use osa_bench::write_csv;
use osa_datasets::{table1_stats, Corpus, CorpusConfig};

fn main() {
    println!("=== Table 1: dataset characteristics ===\n");
    let doctors = Corpus::doctors(&CorpusConfig::doctors_full(), 1);
    let phones = Corpus::phones(&CorpusConfig::phones_full(), 2);
    let ds = table1_stats(&doctors);
    let ps = table1_stats(&phones);

    // Paper reference values (vitals.com / Amazon crawls).
    let paper_doc = (1000, 68686, 43, 354, 4.87);
    let paper_ph = (60, 33578, 102, 3200, 3.81);

    println!(
        "{:<34} {:>14} {:>14} | {:>14} {:>14}",
        "", "Doctors (ours)", "(paper)", "Phones (ours)", "(paper)"
    );
    let row = |label: &str, ours: String, paper: String, ours2: String, paper2: String| {
        println!("{label:<34} {ours:>14} {paper:>14} | {ours2:>14} {paper2:>14}");
    };
    row(
        "#Items",
        ds.items.to_string(),
        paper_doc.0.to_string(),
        ps.items.to_string(),
        paper_ph.0.to_string(),
    );
    row(
        "#Reviews",
        ds.reviews.to_string(),
        paper_doc.1.to_string(),
        ps.reviews.to_string(),
        paper_ph.1.to_string(),
    );
    row(
        "Min #reviews per item",
        ds.min_reviews_per_item.to_string(),
        paper_doc.2.to_string(),
        ps.min_reviews_per_item.to_string(),
        paper_ph.2.to_string(),
    );
    row(
        "Max #reviews per item",
        ds.max_reviews_per_item.to_string(),
        paper_doc.3.to_string(),
        ps.max_reviews_per_item.to_string(),
        paper_ph.3.to_string(),
    );
    row(
        "Average #sentences per review",
        format!("{:.2}", ds.avg_sentences_per_review),
        format!("{:.2}", paper_doc.4),
        format!("{:.2}", ps.avg_sentences_per_review),
        format!("{:.2}", paper_ph.4),
    );

    write_csv(
        "table1.csv",
        "corpus,items,reviews,min_reviews,max_reviews,avg_sentences",
        &[
            format!(
                "doctors,{},{},{},{},{:.3}",
                ds.items,
                ds.reviews,
                ds.min_reviews_per_item,
                ds.max_reviews_per_item,
                ds.avg_sentences_per_review
            ),
            format!(
                "phones,{},{},{},{},{:.3}",
                ps.items,
                ps.reviews,
                ps.min_reviews_per_item,
                ps.max_reviews_per_item,
                ps.avg_sentences_per_review
            ),
        ],
    );
}
