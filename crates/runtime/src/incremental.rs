//! Per-item incremental pipeline artifacts — the runtime layer of
//! "`POST /reviews` without the full rebuild".
//!
//! An [`ItemArtifacts`] caches, for one corpus item, everything the
//! per-item pipeline computes that can be **extended** instead of
//! rebuilt when reviews are appended (or truncated when trailing
//! reviews are retracted):
//!
//! * the interned extraction ([`ExtractedItem`]) — an append
//!   re-extracts only the new reviews
//!   ([`osa_datasets::extract_append`]),
//! * the sentiment-sorted [`GraphBuildPlan`] buckets and the full-range
//!   [`GraphShard`] — an append merges the new pairs' bucket runs and
//!   re-resolves only the rows whose ancestor closure touches a grown
//!   bucket ([`GraphBuildPlan::append`] /
//!   [`GraphBuildPlan::shard_append`]),
//! * the exact CELF initial-gain vector — maintained by exact
//!   subtract/add arithmetic over the recomputed rows
//!   ([`GraphBuildPlan::warm_keys`]), so
//!   [`LazyGreedySummarizer::summarize_seeded`] warm-starts the lazy
//!   heap and still selects byte-identically to a cold run.
//!
//! Every update path is **byte-identical** to rebuilding from scratch —
//! the property the `osa-check --edits` differential oracle enforces
//! over seeded random edit scripts. Graph artifacts are kept for the
//! indexed builder at sentence/review granularity (the serving
//! default); every other `(granularity, graph-impl)` signature falls
//! back to a fresh graph build from the cached extraction, which is
//! still sublinear in corpus size because only the edited item is
//! touched.

use osa_core::{
    CoverageGraph, Granularity, GraphBuildPlan, GraphImpl, GraphShard, LazyGreedySummarizer,
};
use osa_datasets::{extract_append, extract_truncate, ExtractedItem, Extractor, Item};
use osa_ontology::Hierarchy;

use crate::{
    finish_item_summary, item_seed, BatchAlgorithm, BatchOptions, ItemSummary, WorkerScratch,
};

/// Cached per-item pipeline state, valid for one `(item, revision)` and
/// one graph signature (`eps`, granularity, indexed builder). Build one
/// with [`ItemArtifacts::build`], advance it with
/// [`ItemArtifacts::update`] after an edit, and answer requests with
/// [`ItemArtifacts::summarize`].
#[derive(Debug, Clone)]
pub struct ItemArtifacts {
    /// Number of reviews the cached extraction covers.
    reviews: usize,
    /// Full extraction of those reviews (impl-invariant bytes).
    extracted: ExtractedItem,
    /// Mergeable graph state for the signature it was built under.
    graph: Option<GraphArtifacts>,
}

/// The mergeable coverage-graph state: the plan (sorted CSR buckets),
/// the full-range shard (per-pair edge runs), and the exact CELF
/// initial-gain vector.
#[derive(Debug, Clone)]
struct GraphArtifacts {
    eps: f64,
    granularity: Granularity,
    plan: GraphBuildPlan,
    shard: GraphShard,
    keys: Vec<u64>,
}

impl GraphArtifacts {
    fn matches(&self, opts: &BatchOptions) -> bool {
        self.eps.to_bits() == opts.eps.to_bits() && self.granularity == opts.granularity
    }
}

/// Graph artifacts are cached for the signatures the incremental merge
/// supports: the indexed builder at group granularity. `Pairs`
/// granularity compresses duplicates into weights (an append can grow
/// an *existing* pair's weight, so the pair list is not append-only),
/// and the naive builder is the oracle the deltas are tested against.
fn graph_eligible(opts: &BatchOptions) -> bool {
    opts.graph_impl == GraphImpl::Indexed && opts.granularity != Granularity::Pairs
}

fn groups_of(ex: &ExtractedItem, granularity: Granularity) -> Vec<Vec<usize>> {
    match granularity {
        Granularity::Pairs => unreachable!("pairs granularity caches no graph artifacts"),
        Granularity::Sentences => ex.sentence_groups(),
        Granularity::Reviews => ex.review_groups(),
    }
}

impl ItemArtifacts {
    /// Build artifacts for `item` from scratch under `opts`.
    pub fn build(
        hierarchy: &Hierarchy,
        extractor: &Extractor,
        opts: &BatchOptions,
        item: &Item,
        scratch: &mut WorkerScratch,
    ) -> Self {
        let extracted = extractor.extract(item, opts.extract_impl, &mut scratch.extract);
        Self::from_extracted(hierarchy, opts, item, extracted, scratch)
    }

    /// Build artifacts from an **already extracted** item — the artifact
    /// cold-boot path: `osars serve --artifacts` deserializes every
    /// item's `ExtractedItem` from the compiled store and seeds the
    /// per-item caches without re-running extraction (extraction is the
    /// dominant boot cost; this is what makes an artifact boot I/O-bound).
    /// `extracted` must be the full extraction of `item.reviews` —
    /// extraction bytes are impl-invariant, so artifacts written by either
    /// extract impl are valid seeds.
    pub fn from_extracted(
        hierarchy: &Hierarchy,
        opts: &BatchOptions,
        item: &Item,
        extracted: ExtractedItem,
        scratch: &mut WorkerScratch,
    ) -> Self {
        let graph = Self::fresh_graph(hierarchy, &extracted, opts, scratch);
        ItemArtifacts {
            reviews: item.reviews.len(),
            extracted,
            graph,
        }
    }

    fn fresh_graph(
        hierarchy: &Hierarchy,
        ex: &ExtractedItem,
        opts: &BatchOptions,
        scratch: &mut WorkerScratch,
    ) -> Option<GraphArtifacts> {
        if !graph_eligible(opts) {
            return None;
        }
        let groups = groups_of(ex, opts.granularity);
        let plan = GraphBuildPlan::new_with(
            hierarchy,
            &ex.pairs,
            Some(&groups),
            opts.eps,
            opts.ancestor_impl,
        );
        let shard = plan.shard(
            hierarchy,
            &ex.pairs,
            0..ex.pairs.len(),
            &mut scratch.graph_build,
        );
        let graph =
            CoverageGraph::assemble(&plan, opts.granularity, None, std::slice::from_ref(&shard));
        let keys = LazyGreedySummarizer::initial_keys(&graph);
        Some(GraphArtifacts {
            eps: opts.eps,
            granularity: opts.granularity,
            plan,
            shard,
            keys,
        })
    }

    /// Advance the artifacts after an edit to `item`.
    ///
    /// Contract: the surviving prefix of reviews is unchanged — either
    /// reviews were **appended** (`item.reviews.len() >= self.reviews`,
    /// the first `self.reviews` identical) or trailing reviews were
    /// **retracted** (`item.reviews.len() < self.reviews`, all
    /// remaining identical). Appends re-extract only the new reviews
    /// and merge the graph state; retractions truncate the extraction
    /// and rebuild the (single-item) graph state fresh.
    pub fn update(
        &self,
        hierarchy: &Hierarchy,
        extractor: &Extractor,
        opts: &BatchOptions,
        item: &Item,
        scratch: &mut WorkerScratch,
    ) -> Self {
        if item.reviews.len() < self.reviews {
            let extracted = extract_truncate(&self.extracted, item.reviews.len());
            let graph = Self::fresh_graph(hierarchy, &extracted, opts, scratch);
            return ItemArtifacts {
                reviews: item.reviews.len(),
                extracted,
                graph,
            };
        }
        let extracted = extract_append(extractor, &self.extracted, item, self.reviews);
        let graph = match &self.graph {
            Some(prev) if graph_eligible(opts) && prev.matches(opts) => {
                let groups = groups_of(&extracted, opts.granularity);
                let (plan, delta) = prev.plan.append(hierarchy, &extracted.pairs, Some(&groups));
                let (shard, recomputed) = plan.shard_append(
                    hierarchy,
                    &extracted.pairs,
                    &prev.shard,
                    &delta,
                    &mut scratch.graph_build,
                );
                let keys =
                    plan.warm_keys(&prev.keys, &prev.shard, &shard, &recomputed, &delta, None);
                Some(GraphArtifacts {
                    eps: opts.eps,
                    granularity: opts.granularity,
                    plan,
                    shard,
                    keys,
                })
            }
            _ => Self::fresh_graph(hierarchy, &extracted, opts, scratch),
        };
        ItemArtifacts {
            reviews: item.reviews.len(),
            extracted,
            graph,
        }
    }

    /// Summarize `item` from the cached artifacts. Byte-identical to
    /// [`summarize_one`](crate::summarize_one) with [`Fault::None`]
    /// (`crate::Fault::None`) for the same `(hierarchy, opts)`: the
    /// cached extraction is the full extraction, the assembled graph
    /// equals a fresh build, and a warm-started lazy greedy selects
    /// exactly what a cold one does. Signatures without cached graph
    /// artifacts rebuild the graph from the cached extraction.
    pub fn summarize(
        &self,
        hierarchy: &Hierarchy,
        opts: &BatchOptions,
        idx: usize,
        item: &Item,
        scratch: &mut WorkerScratch,
        trace: Option<&osa_obs::Trace>,
    ) -> ItemSummary {
        assert_eq!(
            self.reviews,
            item.reviews.len(),
            "artifacts are stale: update() before summarize()"
        );
        let obs = osa_obs::global();
        let ex = &self.extracted;
        // The same stage spans/timers the batch pipeline records, so
        // traces and `Server-Timing` keep their shape when a request is
        // answered from artifacts. "extract" measures the cache hit —
        // near zero here by design; the real extraction cost was paid
        // once in `build`/`update`.
        {
            let _tspan = trace.map(|t| t.span("extract"));
            let _ = obs.time("extract", || {
                if opts.granularity == Granularity::Pairs {
                    let _ = scratch.compress_into(&ex.pairs);
                }
            });
            if let Some(t) = trace {
                t.count("extract.pairs", ex.pairs.len() as u64);
                t.count("extract.sentences", ex.sentences.len() as u64);
            }
        }
        let WorkerScratch {
            pair_buf,
            weight_buf,
            graph_build,
            ..
        } = scratch;
        let cached = self.graph.as_ref().filter(|g| g.matches(opts));
        let graph = {
            let _tspan = trace.map(|t| t.span("graph.build"));
            let (graph, _us) = obs.time("graph.build", || match (&cached, graph_eligible(opts)) {
                (Some(g), true) => CoverageGraph::assemble(
                    &g.plan,
                    opts.granularity,
                    None,
                    std::slice::from_ref(&g.shard),
                ),
                _ => match opts.granularity {
                    Granularity::Pairs => CoverageGraph::for_weighted_pairs_with_ancestor(
                        hierarchy,
                        pair_buf,
                        weight_buf,
                        opts.eps,
                        opts.graph_impl,
                        opts.ancestor_impl,
                        graph_build,
                    ),
                    Granularity::Sentences => CoverageGraph::for_groups_with_ancestor(
                        hierarchy,
                        &ex.pairs,
                        &ex.sentence_groups(),
                        opts.eps,
                        Granularity::Sentences,
                        opts.graph_impl,
                        opts.ancestor_impl,
                        graph_build,
                    ),
                    Granularity::Reviews => CoverageGraph::for_groups_with_ancestor(
                        hierarchy,
                        &ex.pairs,
                        &ex.review_groups(),
                        opts.eps,
                        Granularity::Reviews,
                        opts.graph_impl,
                        opts.ancestor_impl,
                        graph_build,
                    ),
                },
            });
            if let Some(t) = trace {
                t.count("graph.candidates", graph.num_candidates() as u64);
                t.count("graph.pairs", graph.num_pairs() as u64);
            }
            graph
        };
        let summary = {
            let _tspan = trace.map(|t| t.span(opts.algorithm.span_name()));
            let (summary, _us) = obs.time(opts.algorithm.span_name(), || {
                match (cached, opts.algorithm) {
                    (Some(g), BatchAlgorithm::LazyGreedy) => {
                        LazyGreedySummarizer.summarize_seeded(&graph, opts.k, &g.keys, trace)
                    }
                    _ => {
                        let alg = opts
                            .algorithm
                            .summarizer(item_seed(opts.corpus_seed, idx as u64));
                        alg.summarize_traced(&graph, opts.k, trace)
                    }
                }
            });
            summary
        };
        finish_item_summary(
            hierarchy,
            opts.granularity,
            idx,
            item,
            ex,
            pair_buf,
            weight_buf,
            &graph,
            summary,
        )
    }

    /// Number of reviews the cached extraction covers.
    pub fn reviews(&self) -> usize {
        self.reviews
    }

    /// The cached extraction.
    pub fn extracted(&self) -> &ExtractedItem {
        &self.extracted
    }

    /// Whether mergeable graph artifacts are cached for `opts`'
    /// signature (and a lazy-greedy request would warm-start).
    pub fn has_graph_for(&self, opts: &BatchOptions) -> bool {
        graph_eligible(opts) && self.graph.as_ref().is_some_and(|g| g.matches(opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{summarize_one, Fault};
    use osa_datasets::{Corpus, CorpusConfig, Review};

    fn corpus() -> Corpus {
        Corpus::phones(
            &CorpusConfig {
                items: 3,
                min_reviews: 3,
                max_reviews: 6,
                mean_reviews: 4.0,
                mean_sentences: 3.0,
                aspect_sentence_prob: 0.85,
            },
            77,
        )
    }

    fn opts_matrix() -> Vec<BatchOptions> {
        let mut all = Vec::new();
        for granularity in [
            Granularity::Pairs,
            Granularity::Sentences,
            Granularity::Reviews,
        ] {
            for graph_impl in [GraphImpl::Indexed, GraphImpl::Naive] {
                for algorithm in [BatchAlgorithm::Greedy, BatchAlgorithm::LazyGreedy] {
                    all.push(BatchOptions {
                        granularity,
                        graph_impl,
                        algorithm,
                        ..BatchOptions::default()
                    });
                }
            }
        }
        all
    }

    #[test]
    fn artifact_summaries_match_the_batch_pipeline() {
        let corpus = corpus();
        let mut scratch = WorkerScratch::new();
        let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
        for opts in opts_matrix() {
            for (idx, item) in corpus.items.iter().enumerate() {
                let art =
                    ItemArtifacts::build(&corpus.hierarchy, &extractor, &opts, item, &mut scratch);
                let got = art.summarize(&corpus.hierarchy, &opts, idx, item, &mut scratch, None);
                let expect =
                    summarize_one(&corpus, &extractor, &opts, &mut scratch, idx, Fault::None)
                        .unwrap();
                assert_eq!(got, expect, "{opts:?} item {idx}");
            }
        }
    }

    #[test]
    fn updated_artifacts_match_a_scratch_rebuild() {
        let corpus = corpus();
        let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
        let mut scratch = WorkerScratch::new();
        let recycled: Review = corpus.items[1].reviews[0].clone();
        for opts in opts_matrix() {
            let mut item = corpus.items[0].clone();
            let mut art =
                ItemArtifacts::build(&corpus.hierarchy, &extractor, &opts, &item, &mut scratch);
            // Append, append, retract, append — artifacts advance
            // through each edit and always match a from-scratch build.
            for edit in 0..4 {
                if edit == 2 {
                    item.reviews.pop();
                } else {
                    item.reviews.push(recycled.clone());
                }
                art = art.update(&corpus.hierarchy, &extractor, &opts, &item, &mut scratch);
                let fresh =
                    ItemArtifacts::build(&corpus.hierarchy, &extractor, &opts, &item, &mut scratch);
                assert_eq!(art.extracted(), fresh.extracted(), "{opts:?} edit {edit}");
                let got = art.summarize(&corpus.hierarchy, &opts, 0, &item, &mut scratch, None);
                let expect =
                    fresh.summarize(&corpus.hierarchy, &opts, 0, &item, &mut scratch, None);
                assert_eq!(got, expect, "{opts:?} edit {edit}");
            }
        }
    }

    #[test]
    fn graph_artifacts_are_cached_for_the_serving_signature() {
        let corpus = corpus();
        let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
        let mut scratch = WorkerScratch::new();
        let serving = BatchOptions {
            granularity: Granularity::Sentences,
            algorithm: BatchAlgorithm::LazyGreedy,
            ..BatchOptions::default()
        };
        let art = ItemArtifacts::build(
            &corpus.hierarchy,
            &extractor,
            &serving,
            &corpus.items[0],
            &mut scratch,
        );
        assert!(art.has_graph_for(&serving));
        // A different eps is a different signature — no cached graph.
        let other = BatchOptions {
            eps: serving.eps + 0.25,
            ..serving.clone()
        };
        assert!(!art.has_graph_for(&other));
        let naive = BatchOptions {
            graph_impl: GraphImpl::Naive,
            ..serving.clone()
        };
        assert!(!art.has_graph_for(&naive));
    }
}
