//! A plain-`std` LRU map: `HashMap` from key to slot index over an
//! index-linked doubly-linked list (no `unsafe`, no pointer juggling).
//! Used by the daemon as the summary cache — keys embed the corpus
//! epoch, so entries for a superseded corpus can never be returned, they
//! just age out of the tail.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity least-recently-used map. `get` refreshes recency;
/// inserting at capacity evicts the coldest entry.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. Capacity 0 is a valid
    /// always-empty cache (every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slots[i].as_ref().expect("linked slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("next slot").prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        {
            let s = self.slots[i].as_mut().expect("slot to link");
            s.prev = NIL;
            s.next = self.head;
        }
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].as_mut().expect("old head").prev = i,
        }
        self.head = i;
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(&self.slots[i].as_ref().expect("hit slot").value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `key → value` as most-recent, evicting the coldest entry
    /// if at capacity. Replaces (and refreshes) an existing key.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.map.get(&key).copied() {
            self.slots[i].as_mut().expect("existing slot").value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let cold = self.tail;
            self.unlink(cold);
            let s = self.slots[cold].take().expect("tail slot");
            self.map.remove(&s.key);
            self.free.push(cold);
        }
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[i] = Some(Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Drop every entry (hit/miss stats are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a → b is now coldest
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_key_refreshes_it() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh a → b coldest
        c.insert("c", 3);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_one_churns_correctly() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 2);
            assert_eq!(c.get(&i), Some(&(i * 2)));
            if i > 0 {
                assert_eq!(c.get(&(i - 1)), None);
            }
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(4);
        c.insert("k", 9);
        let _ = c.get(&"k");
        let _ = c.get(&"nope");
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let mut c = LruCache::new(8);
        for round in 0u64..5 {
            for i in 0u64..64 {
                c.insert((i * 7 + round) % 32, i);
                assert!(c.len() <= 8);
            }
        }
        // The 8 retained entries are retrievable.
        let mut found = 0;
        for k in 0u64..32 {
            if c.get(&k).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, 8);
    }
}
