//! Fig. 3 reproduction: the cell-phone aspect hierarchy, rendered as an
//! ASCII tree, with structural statistics.

use osa_datasets::phone_hierarchy;
use osa_ontology::HierarchyStats;

fn main() {
    let h = phone_hierarchy();
    println!("=== Fig. 3: cell phone aspect hierarchy ===\n");
    print!("{}", h.render_ascii());
    println!("\n--- structure ---\n{}", HierarchyStats::compute(&h));
}
