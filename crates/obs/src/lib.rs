//! # osa-obs — structured tracing and metrics for the OSARS pipeline
//!
//! The paper's quantitative claims (Figs. 4/6, Table 1) are all about
//! *where time goes* — greedy vs. lazy-greedy gain evaluations, ILP solve
//! time, coverage-graph construction. This crate is the workspace's
//! observability substrate: every layer (`osa-text` extraction,
//! `osa-core` graph/summarizers, `osa-solver` pivots, `osa-runtime`
//! workers) reports into one thread-safe [`Registry`] of
//!
//! * **counters** — monotonically increasing `u64` totals (saturating on
//!   overflow, never wrapping),
//! * **gauges** — last-write-wins `i64` levels,
//! * **histograms** — bounded-memory latency distributions (exact
//!   count/sum/min/max plus a fixed-capacity deterministic reservoir
//!   for nearest-rank percentiles, same query semantics as
//!   `osa_eval::LatencyHistogram` while under capacity),
//!
//! plus a lightweight **span** API: `registry.span("graph.build")`
//! returns an RAII guard whose drop records the elapsed microseconds
//! into the histogram of the same name and notifies the registry's
//! pluggable [`Sink`] (no-op by default, human `stderr`, or JSON-lines
//! through the in-tree `osa-json`).
//!
//! For *per-request* visibility the crate also provides [`Trace`]: a
//! request-scoped span **tree** (explicitly propagated as
//! `Option<&Trace>`, no thread-locals) that `osars serve`'s flight
//! recorder snapshots as [`TraceTree`]s and exports as osa-json or
//! Chrome `trace_event` JSON — see the [`trace`](self::Trace) module
//! types.
//!
//! ## Determinism contract
//!
//! Metrics **observe, never perturb**: no instrumented code path makes a
//! decision based on a metric, so summarization output is byte-identical
//! with metrics on or off, and counter totals for deterministic
//! algorithms are identical for any worker count (counters are atomic
//! adds; only histograms and span *ordering* are schedule-dependent).
//!
//! ## Cost when disabled
//!
//! The registry is **disabled** until [`Registry::set_enabled`] flips it
//! on (the `osars --metrics/--trace` flags do). Every recording
//! entry point checks one relaxed atomic load and returns immediately,
//! so instrumented hot paths cost a predictable branch; spans skip even
//! the clock read.
//!
//! ```
//! use osa_obs::Registry;
//!
//! let reg = Registry::new();
//! reg.set_enabled(true);
//! reg.add("greedy.gain_evals", 128);
//! {
//!     let _span = reg.span("graph.build");
//!     // ... work ...
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters[0], ("greedy.gain_evals".to_owned(), 128));
//! assert_eq!(snap.histograms[0].0, "graph.build");
//! ```

#![warn(missing_docs)]

mod sink;
mod trace;

pub use sink::{JsonlSink, NoopSink, Sink, StderrSink, TeeSink};
pub use trace::{chrome_trace_json, SpanRecord, Trace, TraceSpanGuard, TraceTree};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// --- handles ---------------------------------------------------------------

/// A monotonically increasing total. Cloning shares the underlying cell.
///
/// Additions **saturate** at `u64::MAX` instead of wrapping, so a runaway
/// instrument can never make a total appear small again.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the total (saturating).
    pub fn add(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Maximum samples a [`RawHistogram`] retains for percentile queries.
/// `count`/`total`/`min`/`max` stay exact past this; percentiles come
/// from the reservoir and are approximate once it overflows.
pub const RESERVOIR_CAPACITY: usize = 4096;

/// SplitMix64 finalizer — the deterministic "randomness" driving
/// reservoir replacement (a pure function of the running sample count,
/// so histogram contents never depend on wall-clock or thread
/// scheduling for a given record sequence).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded-memory sample histogram with nearest-rank percentiles — the
/// same query semantics as `osa_eval::LatencyHistogram` while under
/// [`RESERVOIR_CAPACITY`] samples.
///
/// Memory is **bounded**: a fixed-capacity deterministic reservoir
/// (Algorithm R with a SplitMix64-derived replacement index) holds at
/// most `RESERVOIR_CAPACITY` samples, while `count`, `total`, `min` and
/// `max` are tracked exactly on the side. A long-running `osars serve`
/// therefore records forever in O(1) memory per histogram; percentiles
/// past capacity are approximate (uniform subsample), everything else
/// stays exact.
#[derive(Debug, Clone, PartialEq)]
pub struct RawHistogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    reservoir: Vec<f64>,
}

impl Default for RawHistogram {
    fn default() -> Self {
        RawHistogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            reservoir: Vec::new(),
        }
    }
}

impl RawHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Non-finite values are clamped to `f64::MAX`
    /// (saturating) so a single broken clock read cannot poison
    /// percentile queries with `NaN`.
    pub fn record(&mut self, sample: f64) {
        let s = if sample.is_finite() { sample } else { f64::MAX };
        self.count += 1;
        self.sum += s;
        self.min = self.min.min(s);
        self.max = self.max.max(s);
        if self.reservoir.len() < RESERVOIR_CAPACITY {
            self.reservoir.push(s);
        } else {
            // Algorithm R: replace a uniformly chosen slot with
            // probability capacity/count. The index is a pure function
            // of the running count — deterministic for a given record
            // sequence.
            let j = splitmix64(self.count) % self.count;
            if (j as usize) < RESERVOIR_CAPACITY {
                self.reservoir[j as usize] = s;
            }
        }
    }

    /// Record a [`Duration`] in microseconds (saturating).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64() * 1e6);
    }

    /// Fold `other` into this histogram. While the combined sample count
    /// fits the reservoir this is exact concatenation — associative and
    /// insertion-order preserving, so `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`
    /// exactly (property-tested). Past capacity, `count`/`total`/`min`/
    /// `max` remain exact and the reservoir degrades to a subsample.
    pub fn merge(&mut self, other: &RawHistogram) {
        for &s in &other.reservoir {
            self.record(s);
        }
        let overflow = other.count - other.reservoir.len() as u64;
        if overflow > 0 {
            // Samples `other` evicted from its reservoir: invisible to
            // percentile queries, but their exact aggregates carry over.
            let retained: f64 = other.reservoir.iter().sum();
            self.count += overflow;
            self.sum += other.sum - retained;
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of recorded samples (exact, including evicted ones).
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Sum of all samples (exact, including evicted ones).
    pub fn total(&self) -> f64 {
        self.sum
    }

    /// Nearest-rank percentile for `p ∈ [0, 100]` over the retained
    /// reservoir; `None` when empty. Exact while the histogram has seen
    /// at most [`RESERVOIR_CAPACITY`] samples, approximate past that.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.reservoir.is_empty() {
            return None;
        }
        let mut sorted = self.reservoir.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are never NaN"));
        let n = sorted.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(sorted[rank - 1])
    }

    /// The retained reservoir samples in insertion order (every sample,
    /// until the reservoir overflows).
    pub fn samples(&self) -> &[f64] {
        &self.reservoir
    }

    /// Summary statistics; `None` when empty. `count`/`total`/`mean`/
    /// `min`/`max` are exact; the percentiles share
    /// [`percentile`](Self::percentile)'s reservoir approximation.
    pub fn stats(&self) -> Option<HistStats> {
        if self.count == 0 {
            return None;
        }
        Some(HistStats {
            count: self.count as usize,
            total: self.sum,
            mean: self.sum / self.count as f64,
            min: self.min,
            max: self.max,
            p50: self.percentile(50.0).expect("non-empty"),
            p95: self.percentile(95.0).expect("non-empty"),
            p99: self.percentile(99.0).expect("non-empty"),
        })
    }
}

/// Summary statistics of one histogram (microseconds for span
/// histograms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    /// Sample count.
    pub count: usize,
    /// Sum of samples.
    pub total: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank) — the serving-tail statistic
    /// `osars loadgen` reports in `BENCH_serve.json`.
    pub p99: f64,
}

/// Shared handle to a registry histogram. Cloning shares the data.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<RawHistogram>>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, sample: f64) {
        self.0.lock().expect("histogram lock").record(sample);
    }

    /// Record a [`Duration`] in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.0.lock().expect("histogram lock").record_duration(d);
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&self, other: &RawHistogram) {
        self.0.lock().expect("histogram lock").merge(other);
    }

    /// Snapshot of the current data.
    pub fn data(&self) -> RawHistogram {
        self.0.lock().expect("histogram lock").clone()
    }
}

// --- registry --------------------------------------------------------------

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe metrics registry with a pluggable trace sink.
///
/// Instantiable for tests and embedded use; the process-wide instance the
/// instrumentation macros and pipeline code report to is [`global()`].
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
    sink: Mutex<Option<Arc<dyn Sink>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// A fresh, **disabled** registry with a no-op sink.
    pub const fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
            sink: Mutex::new(None),
        }
    }

    /// Is recording on? One relaxed load — the fast-path check every
    /// instrumented call site performs.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Install the trace sink (replacing any previous one).
    pub fn set_sink(&self, sink: Arc<dyn Sink>) {
        *self.sink.lock().expect("sink lock") = Some(sink);
    }

    /// Remove the sink, reverting to no-op.
    pub fn clear_sink(&self) {
        *self.sink.lock().expect("sink lock") = None;
    }

    /// Get-or-create the counter `name`. Handles bypass the enabled
    /// check — they record unconditionally — so hot paths should gate on
    /// [`enabled`](Self::enabled) (or use [`add`](Self::add), which
    /// does).
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        inner.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        inner.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        inner.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// Add `n` to counter `name` — no-op while disabled.
    pub fn add(&self, name: &str, n: u64) {
        if !self.enabled() {
            return;
        }
        self.counter(name).add(n);
    }

    /// Set gauge `name` to `v` — no-op while disabled.
    pub fn set_gauge(&self, name: &str, v: i64) {
        if !self.enabled() {
            return;
        }
        self.gauge(name).set(v);
    }

    /// Record `sample` into histogram `name` — no-op while disabled.
    pub fn observe(&self, name: &str, sample: f64) {
        if !self.enabled() {
            return;
        }
        self.histogram(name).record(sample);
    }

    /// Record a completed span: `micros` goes into the histogram `name`
    /// and the sink is notified. No-op while disabled. This is what
    /// [`SpanGuard`] calls on drop; call it directly when the duration
    /// was measured externally.
    pub fn observe_span(&self, name: &str, micros: f64) {
        if !self.enabled() {
            return;
        }
        self.histogram(name).record(micros);
        if let Some(sink) = self.sink.lock().expect("sink lock").clone() {
            sink.on_span(name, micros);
        }
    }

    /// Open an RAII span: the guard's drop records the elapsed
    /// microseconds under `name`. While disabled the guard is inert (not
    /// even a clock read).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            registry: self,
            name,
            start: self.enabled().then(Instant::now),
        }
    }

    /// Time `f` as a span named `name`, returning `(result, micros)`.
    /// The duration is measured (and returned) even while disabled; the
    /// histogram/sink recording is skipped per [`observe_span`](Self::observe_span).
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> (T, f64) {
        let start = Instant::now();
        let out = f();
        let micros = start.elapsed().as_secs_f64() * 1e6;
        self.observe_span(name, micros);
        (out, micros)
    }

    /// [`time`](Self::time), additionally recording the interval as a
    /// span on `trace` when one is passed. With `trace == None` this is
    /// exactly `time` — the byte-identical untraced path.
    pub fn time_traced<T>(
        &self,
        name: &str,
        trace: Option<&Trace>,
        f: impl FnOnce() -> T,
    ) -> (T, f64) {
        match trace {
            None => self.time(name, f),
            Some(t) => {
                let guard = t.span(name);
                let out = self.time(name, f);
                drop(guard);
                out
            }
        }
    }

    /// A point-in-time copy of every metric, names sorted.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry lock");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .filter_map(|(k, v)| v.data().stats().map(|s| (k.clone(), s)))
                .collect(),
        }
    }

    /// Drop every metric (the enabled flag and sink are kept). Intended
    /// for tests and between CLI sub-runs.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("registry lock");
        *inner = Inner::default();
    }
}

/// The process-wide registry every pipeline instrumentation site reports
/// to. Disabled (and therefore free, bar one branch) until something —
/// usually the `osars` CLI's `--metrics`/`--trace` flags — enables it.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// RAII span guard produced by [`Registry::span`] / [`span!`].
#[derive(Debug)]
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    name: &'static str,
    /// `None` when the registry was disabled at entry: drop is free.
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let micros = start.elapsed().as_secs_f64() * 1e6;
            self.registry.observe_span(self.name, micros);
        }
    }
}

/// Open a span on the [`global()`] registry:
/// `let _span = osa_obs::span!("graph.build");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}

// --- snapshot --------------------------------------------------------------

/// A point-in-time view of a [`Registry`], ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, stats)` per non-empty histogram, sorted by name.
    pub histograms: Vec<(String, HistStats)>,
}

impl Snapshot {
    /// Serialize as JSON lines (one object per metric), matching the
    /// span lines [`JsonlSink`] streams:
    ///
    /// ```text
    /// {"t":"counter","name":"greedy.gain_evals","value":811}
    /// {"t":"gauge","name":"runtime.jobs","value":8}
    /// {"t":"hist","name":"extract","count":30,"total_us":..,"mean_us":..,"p50_us":..,"p95_us":..}
    /// ```
    pub fn to_jsonl(&self) -> String {
        use osa_json::Value;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let obj = Value::Object(vec![
                ("t".to_owned(), Value::String("counter".to_owned())),
                ("name".to_owned(), Value::String(name.clone())),
                ("value".to_owned(), Value::Number(*value as f64)),
            ]);
            out.push_str(&osa_json::to_string(&obj));
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            let obj = Value::Object(vec![
                ("t".to_owned(), Value::String("gauge".to_owned())),
                ("name".to_owned(), Value::String(name.clone())),
                ("value".to_owned(), Value::Number(*value as f64)),
            ]);
            out.push_str(&osa_json::to_string(&obj));
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let obj = Value::Object(vec![
                ("t".to_owned(), Value::String("hist".to_owned())),
                ("name".to_owned(), Value::String(name.clone())),
                ("count".to_owned(), Value::Number(h.count as f64)),
                ("total_us".to_owned(), Value::Number(h.total)),
                ("mean_us".to_owned(), Value::Number(h.mean)),
                ("min_us".to_owned(), Value::Number(h.min)),
                ("max_us".to_owned(), Value::Number(h.max)),
                ("p50_us".to_owned(), Value::Number(h.p50)),
                ("p95_us".to_owned(), Value::Number(h.p95)),
                ("p99_us".to_owned(), Value::Number(h.p99)),
            ]);
            out.push_str(&osa_json::to_string(&obj));
            out.push('\n');
        }
        out
    }

    /// Prometheus-style text exposition — what `osa-serve` answers on
    /// `GET /metrics`. Metric names are sanitized to the Prometheus
    /// charset (`[a-zA-Z0-9_:]`, non-conforming bytes → `_`); counters
    /// get a `_total` suffix, histograms expose `_count`/`_sum` plus
    /// nearest-rank `{quantile="..."}` gauges:
    ///
    /// ```text
    /// # TYPE osars_serve_requests_total counter
    /// osars_serve_requests_total 42
    /// # TYPE osars_serve_request_us summary
    /// osars_serve_request_us{quantile="0.5"} 1200
    /// osars_serve_request_us_count 42
    /// osars_serve_request_us_sum 61200
    /// ```
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 6);
            out.push_str("osars_");
            for (i, c) in name.chars().enumerate() {
                let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
                // Leading digits are invalid even though digits are
                // allowed later; the `osars_` prefix already guards
                // that, so only the charset matters here.
                let _ = i;
                out.push(if ok { c } else { '_' });
            }
            out
        }
        // Prometheus floats: render integral values without the trailing
        // `.0` `{:?}`-style formatting would add.
        fn num(v: f64) -> String {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            }
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", num(v)));
            }
            out.push_str(&format!("{n}_count {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", num(h.total)));
        }
        out
    }

    /// Human-readable aligned table (for `--trace` stderr output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str(&format!("{:<32} {:>14}\n", "counter/gauge", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<32} {v:>14}\n"));
            }
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<32} {v:>14} (gauge)\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<32} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
                "span/histogram", "count", "total ms", "mean µs", "p50 µs", "p95 µs"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{name:<32} {:>8} {:>12.2} {:>10.1} {:>10.1} {:>10.1}\n",
                    h.count,
                    h.total / 1e3,
                    h.mean,
                    h.p50,
                    h.p95
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.add("c", 5);
        reg.set_gauge("g", 7);
        reg.observe("h", 1.0);
        {
            let _s = reg.span("s");
        }
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn enabled_registry_records_everything() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add("c", 5);
        reg.add("c", 2);
        reg.set_gauge("g", -3);
        reg.observe("h", 10.0);
        reg.observe("h", 20.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("c".to_owned(), 7)]);
        assert_eq!(snap.gauges, vec![("g".to_owned(), -3)]);
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "h");
        assert_eq!(h.count, 2);
        assert_eq!(h.total, 30.0);
        assert_eq!(h.p50, 10.0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn span_guard_records_a_sample() {
        let reg = Registry::new();
        reg.set_enabled(true);
        {
            let _s = reg.span("work");
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = reg.snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "work");
        assert_eq!(h.count, 1);
        assert!(h.total >= 500.0, "got {}µs", h.total);
    }

    #[test]
    fn time_returns_micros_even_when_disabled() {
        let reg = Registry::new();
        let (out, us) = reg.time("t", || 41 + 1);
        assert_eq!(out, 42);
        assert!(us >= 0.0);
        assert!(reg.snapshot().histograms.is_empty());
    }

    #[test]
    fn histogram_semantics_match_latency_histogram() {
        // Same nearest-rank behavior as osa_eval::LatencyHistogram.
        let mut h = RawHistogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(3.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(100.0), Some(5.0));
        let s = h.stats().unwrap();
        assert_eq!(s.p95, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn non_finite_samples_saturate() {
        let mut h = RawHistogram::new();
        h.record(f64::INFINITY);
        h.record_duration(Duration::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.samples().iter().all(|s| s.is_finite()));
        assert!(h.stats().unwrap().max <= f64::MAX);
    }

    #[test]
    fn record_duration_is_micros() {
        let mut h = RawHistogram::new();
        h.record_duration(Duration::from_millis(2));
        assert_eq!(h.samples(), &[2000.0]);
    }

    #[test]
    fn snapshot_jsonl_round_trips_through_osa_json() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add("a.count", 3);
        reg.set_gauge("b.level", 9);
        reg.observe("c.span", 123.5);
        let jsonl = reg.snapshot().to_jsonl();
        let mut lines = 0;
        for line in jsonl.lines() {
            let v = osa_json::parse(line).expect("valid JSON line");
            assert!(v.get("t").is_some() && v.get("name").is_some());
            let re = osa_json::parse(&osa_json::to_string(&v)).unwrap();
            assert_eq!(v, re, "round trip");
            lines += 1;
        }
        assert_eq!(lines, 3);
    }

    #[test]
    fn reset_clears_metrics_but_keeps_enabled() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add("x", 1);
        reg.reset();
        assert!(reg.snapshot().counters.is_empty());
        assert!(reg.enabled());
        reg.add("x", 2);
        assert_eq!(reg.snapshot().counters, vec![("x".to_owned(), 2)]);
    }

    #[test]
    fn p99_is_the_tail_sample() {
        let mut h = RawHistogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.stats().unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn reservoir_bounds_memory_but_keeps_exact_aggregates() {
        let mut h = RawHistogram::new();
        let n = RESERVOIR_CAPACITY * 4;
        for v in 1..=n {
            h.record(v as f64);
        }
        assert_eq!(h.samples().len(), RESERVOIR_CAPACITY, "memory is bounded");
        assert_eq!(h.count(), n, "count stays exact");
        assert_eq!(h.total(), (n * (n + 1) / 2) as f64, "sum stays exact");
        let s = h.stats().unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, n as f64);
        // Percentiles are approximate past capacity but must stay inside
        // the observed range and ordered.
        assert!(s.p50 >= s.min && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn reservoir_replacement_is_deterministic() {
        let build = || {
            let mut h = RawHistogram::new();
            for v in 0..RESERVOIR_CAPACITY * 3 {
                h.record(v as f64);
            }
            h
        };
        assert_eq!(build(), build(), "same record sequence, same reservoir");
    }

    #[test]
    fn merge_past_capacity_keeps_exact_aggregates() {
        let mut a = RawHistogram::new();
        let mut b = RawHistogram::new();
        let n = RESERVOIR_CAPACITY * 2;
        for v in 0..n {
            a.record(2.0);
            b.record(v as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2 * n);
        assert_eq!(a.total(), 2.0 * n as f64 + (n * (n - 1) / 2) as f64);
        assert_eq!(a.stats().unwrap().min, 0.0);
        assert_eq!(a.stats().unwrap().max, (n - 1) as f64);
        assert_eq!(a.samples().len(), RESERVOIR_CAPACITY);
    }

    #[test]
    fn time_traced_with_none_matches_time_and_with_some_builds_a_span() {
        let reg = Registry::new();
        reg.set_enabled(true);
        let (out, us) = reg.time_traced("stage", None, || 7);
        assert_eq!(out, 7);
        assert!(us >= 0.0);

        let trace = Trace::new(1);
        let root = trace.span("request");
        let (out, _) = reg.time_traced("stage", Some(&trace), || 8);
        assert_eq!(out, 8);
        drop(root);
        let tree = trace.tree();
        assert!(tree.is_well_formed());
        assert_eq!(tree.spans[1].name, "stage");
        assert_eq!(tree.spans[1].parent, Some(0));
        // Both calls also fed the flat histogram.
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].1.count, 2);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add("serve.requests", 42);
        reg.set_gauge("runtime.jobs", 8);
        reg.observe("serve.request.us", 100.0);
        reg.observe("serve.request.us", 300.0);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("# TYPE osars_serve_requests_total counter\n"));
        assert!(text.contains("osars_serve_requests_total 42\n"));
        assert!(text.contains("# TYPE osars_runtime_jobs gauge\n"));
        assert!(text.contains("osars_runtime_jobs 8\n"));
        assert!(text.contains("osars_serve_request_us{quantile=\"0.5\"} 100\n"));
        assert!(text.contains("osars_serve_request_us{quantile=\"0.99\"} 300\n"));
        assert!(text.contains("osars_serve_request_us_count 2\n"));
        assert!(text.contains("osars_serve_request_us_sum 400\n"));
        // Every exposed name uses the Prometheus charset only.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name:?}"
            );
        }
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let reg = Registry::new();
        reg.set_enabled(true);
        reg.add("alpha", 1);
        reg.set_gauge("beta", 2);
        reg.observe("gamma", 3.0);
        let table = reg.snapshot().render_table();
        for name in ["alpha", "beta", "gamma"] {
            assert!(table.contains(name), "{table}");
        }
    }
}
