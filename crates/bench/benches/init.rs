//! Initialization-phase benchmark (the paper's §4.1 cost observation):
//! coverage-graph construction time as |P| grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osa_bench::quant_workload;
use osa_core::CoverageGraph;

fn bench_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("init/for_pairs");
    for &n in &[50usize, 100, 200, 400] {
        let w = quant_workload(1, n, 11);
        let item = &w.items[0];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| CoverageGraph::for_pairs(&w.hierarchy, &item.pairs, 0.5));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init);
criterion_main!(benches);
