//! Tokenization and sentence segmentation.

/// Split text into lowercase word tokens. A token is a maximal run of
/// alphanumeric characters, apostrophes-in-words ("don't") or hyphens-in-
/// words ("x-ray"); everything else is a separator. Numbers are kept.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut buf = String::new();
    let mut spans = Vec::new();
    tokenize_into(text, &mut buf, &mut spans);
    spans
        .iter()
        .map(|&(a, b)| buf[a as usize..b as usize].to_owned())
        .collect()
}

/// Allocation-reusing tokenizer core: lowercased token text is appended to
/// `buf` and each token is recorded as a `(start, end)` byte span into it.
/// Both buffers are cleared first. Token semantics are identical to
/// [`tokenize`], which is a thin wrapper over this.
pub(crate) fn tokenize_into(text: &str, buf: &mut String, spans: &mut Vec<(u32, u32)>) {
    buf.clear();
    spans.clear();
    let mut tok_start: Option<u32> = None;
    let mut it = text.chars().peekable();
    while let Some(ch) = it.next() {
        let joiner = (ch == '\'' || ch == '-')
            && tok_start.is_some()
            && it.peek().is_some_and(|c| c.is_alphanumeric());
        if ch.is_alphanumeric() || joiner {
            if tok_start.is_none() {
                tok_start = Some(buf.len() as u32);
            }
            buf.extend(ch.to_lowercase());
        } else if let Some(start) = tok_start.take() {
            spans.push((start, buf.len() as u32));
        }
    }
    if let Some(start) = tok_start {
        spans.push((start, buf.len() as u32));
    }
    osa_obs::global().add("text.tokens", spans.len() as u64);
}

/// Abbreviations whose trailing period does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "vs", "etc", "e.g", "i.e", "st", "jr", "sr", "inc",
];

/// Split text into sentences on `.`, `!`, `?` and newlines, with a small
/// abbreviation guard (so "Dr. Smith" stays in one sentence). Returns
/// trimmed, non-empty sentence strings.
pub fn split_sentences(text: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let ch = chars[i];
        if ch == '\n' || ch == '!' || ch == '?' {
            if ch != '\n' {
                cur.push(ch);
            }
            flush(&mut cur, &mut sentences);
        } else if ch == '.' {
            // Look back at the word preceding the period.
            let tail: String = cur
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '.')
                .collect::<String>()
                .chars()
                .rev()
                .collect::<String>()
                .to_lowercase();
            let is_abbrev = ABBREVIATIONS.contains(&tail.trim_end_matches('.'))
                || (tail.len() == 1 && tail.chars().all(char::is_alphabetic));
            let decimal = tail.chars().all(|c| c.is_ascii_digit())
                && !tail.is_empty()
                && chars.get(i + 1).is_some_and(char::is_ascii_digit);
            cur.push('.');
            if !is_abbrev && !decimal {
                flush(&mut cur, &mut sentences);
            }
        } else {
            cur.push(ch);
        }
        i += 1;
    }
    flush(&mut cur, &mut sentences);
    sentences
}

fn flush(cur: &mut String, out: &mut Vec<String>) {
    let s = cur.trim();
    // A sentence needs at least one letter to be worth keeping.
    if s.chars().any(char::is_alphabetic) {
        out.push(s.to_owned());
    }
    cur.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basics() {
        assert_eq!(
            tokenize("The screen, is GREAT!"),
            vec!["the", "screen", "is", "great"]
        );
    }

    #[test]
    fn tokenize_keeps_contractions_and_hyphens() {
        assert_eq!(tokenize("don't x-ray"), vec!["don't", "x-ray"]);
        // Trailing apostrophe is a separator.
        assert_eq!(tokenize("dogs' bone"), vec!["dogs", "bone"]);
    }

    #[test]
    fn tokenize_numbers() {
        assert_eq!(
            tokenize("battery lasts 12 hours"),
            vec!["battery", "lasts", "12", "hours"]
        );
    }

    #[test]
    fn tokenize_empty_and_symbols() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ...").is_empty());
    }

    #[test]
    fn sentences_split_on_terminators() {
        let s = split_sentences("Great phone! Battery is weak. Would buy again?");
        assert_eq!(
            s,
            vec!["Great phone!", "Battery is weak.", "Would buy again?"]
        );
    }

    #[test]
    fn sentences_respect_abbreviations() {
        let s = split_sentences("Dr. Smith was kind. He listened.");
        assert_eq!(s, vec!["Dr. Smith was kind.", "He listened."]);
    }

    #[test]
    fn sentences_keep_decimals_together() {
        let s = split_sentences("It scored 4.5 stars. Nice.");
        assert_eq!(s, vec!["It scored 4.5 stars.", "Nice."]);
    }

    #[test]
    fn sentences_split_on_newlines() {
        let s = split_sentences("line one\nline two");
        assert_eq!(s, vec!["line one", "line two"]);
    }

    #[test]
    fn sentences_skip_letterless_fragments() {
        let s = split_sentences("... 123. Good phone.");
        assert_eq!(s, vec!["Good phone."]);
    }

    #[test]
    fn single_initial_is_abbreviation() {
        let s = split_sentences("John F. Kennedy spoke.");
        assert_eq!(s, vec!["John F. Kennedy spoke."]);
    }
}
