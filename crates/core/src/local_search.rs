//! Single-swap local search — the classic k-median improvement heuristic
//! (Arya et al., 2004: single swaps give a 5-approximation for metric
//! k-median), offered as an extension beyond the paper's three
//! algorithms. Starting from the greedy summary, it repeatedly applies
//! the best cost-improving swap between a selected and an unselected
//! candidate until a local optimum (or the iteration cap) is reached.

use crate::{CoverageGraph, GreedySummarizer, Summarizer, Summary};

/// Swap-based local search around the greedy solution.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchSummarizer {
    /// Maximum number of improving swaps to apply.
    pub max_swaps: usize,
}

impl Default for LocalSearchSummarizer {
    fn default() -> Self {
        LocalSearchSummarizer { max_swaps: 64 }
    }
}

impl Summarizer for LocalSearchSummarizer {
    fn summarize(&self, graph: &CoverageGraph, k: usize) -> Summary {
        self.summarize_traced(graph, k, None)
    }

    fn summarize_traced(
        &self,
        graph: &CoverageGraph,
        k: usize,
        trace: Option<&osa_obs::Trace>,
    ) -> Summary {
        let n = graph.num_candidates();
        let k = k.min(n);
        let mut current = GreedySummarizer.summarize_traced(graph, k, trace);
        if k == 0 || k == n {
            return current;
        }

        let mut in_summary = vec![false; n];
        for &u in &current.selected {
            in_summary[u] = true;
        }

        // Probe buffers hoisted out of the sweep: `rest` and `base` are
        // rebuilt once per out-slot, never per candidate probe.
        let mut rest: Vec<usize> = Vec::with_capacity(k - 1);
        let mut base: Vec<u32> = Vec::new();
        let mut moves = 0u64;
        for _ in 0..self.max_swaps {
            // Best single swap (out, in) over all pairs.
            let mut best: Option<(usize, usize, u64)> = None;
            for out_pos in 0..current.selected.len() {
                // Serving distances with `out` removed, shared by every
                // `in` candidate probed against this slot.
                rest.clear();
                rest.extend(
                    current
                        .selected
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != out_pos)
                        .map(|(_, &u)| u),
                );
                graph.serving_distances_into(&rest, &mut base);
                let base_cost: u64 = base
                    .iter()
                    .enumerate()
                    .map(|(q, &d)| u64::from(d) * graph.pair_weight(q))
                    .sum();
                for (cand, &selected_already) in in_summary.iter().enumerate() {
                    if selected_already {
                        continue;
                    }
                    // Cost after adding `cand` to `rest`: each covered
                    // pair improves by (base - d) when the candidate's
                    // edge is shorter. Edges are unique per pair, so the
                    // integer deltas are exact.
                    let mut cost = base_cost;
                    for &(q, d) in graph.covered_by(cand) {
                        let b = base[q as usize];
                        if d < b {
                            cost -= u64::from(b - d) * graph.pair_weight(q as usize);
                        }
                    }
                    if cost < current.cost && best.is_none_or(|(_, _, bc)| cost < bc) {
                        best = Some((out_pos, cand, cost));
                    }
                }
            }
            let Some((out_pos, cand, cost)) = best else {
                break; // local optimum
            };
            in_summary[current.selected[out_pos]] = false;
            in_summary[cand] = true;
            current.selected[out_pos] = cand;
            current.cost = cost;
            moves += 1;
        }
        osa_obs::global().add("local_search.moves", moves);
        if let Some(t) = trace {
            t.count("local_search.moves", moves);
        }

        debug_assert_eq!(current.cost, graph.cost_of(&current.selected));
        current
    }

    fn name(&self) -> &'static str {
        "local-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExactBruteForce, Pair};
    use osa_ontology::HierarchyBuilder;

    fn instance() -> (osa_ontology::Hierarchy, Vec<Pair>) {
        let mut bl = HierarchyBuilder::new();
        for c in ["a", "b", "c", "d"] {
            bl.add_edge_by_name("r", c).unwrap();
        }
        bl.add_edge_by_name("a", "a1").unwrap();
        bl.add_edge_by_name("a", "a2").unwrap();
        bl.add_edge_by_name("b", "b1").unwrap();
        let h = bl.build().unwrap();
        let p = |n: &str, s: f64| Pair::new(h.node_by_name(n).unwrap(), s);
        let pairs = vec![
            p("a", 0.1),
            p("a1", 0.2),
            p("a2", 0.0),
            p("b", -0.5),
            p("b1", -0.55),
            p("c", 0.9),
            p("d", -0.9),
        ];
        (h, pairs)
    }

    #[test]
    fn never_worse_than_greedy() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        for k in 1..=5 {
            let greedy = GreedySummarizer.summarize(&g, k);
            let ls = LocalSearchSummarizer::default().summarize(&g, k);
            assert!(ls.cost <= greedy.cost, "k={k}");
            assert_eq!(ls.cost, g.cost_of(&ls.selected));
        }
    }

    #[test]
    fn reaches_optimum_on_small_instance() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        for k in 1..=4 {
            let opt = ExactBruteForce.summarize(&g, k).cost;
            let ls = LocalSearchSummarizer::default().summarize(&g, k);
            // Single-swap local search is optimal on these tiny instances.
            assert_eq!(ls.cost, opt, "k={k}");
        }
    }

    #[test]
    fn selection_stays_distinct() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let ls = LocalSearchSummarizer::default().summarize(&g, 3);
        let mut s = ls.selected.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn degenerate_k_values() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        assert_eq!(
            LocalSearchSummarizer::default().summarize(&g, 0).cost,
            g.root_cost()
        );
        assert_eq!(
            LocalSearchSummarizer::default()
                .summarize(&g, 99)
                .selected
                .len(),
            g.num_candidates()
        );
    }

    /// The pre-optimization sweep, with every probe cost recomputed from
    /// scratch via [`CoverageGraph::cost_of`]. Pins the hoisted-buffer
    /// delta sweep to the obviously-correct implementation.
    fn reference_summarize(graph: &CoverageGraph, k: usize, max_swaps: usize) -> Summary {
        let n = graph.num_candidates();
        let k = k.min(n);
        let mut current = GreedySummarizer.summarize(graph, k);
        if k == 0 || k == n {
            return current;
        }
        let mut in_summary = vec![false; n];
        for &u in &current.selected {
            in_summary[u] = true;
        }
        for _ in 0..max_swaps {
            let mut best: Option<(usize, usize, u64)> = None;
            for out_pos in 0..current.selected.len() {
                for (cand, &taken) in in_summary.iter().enumerate() {
                    if taken {
                        continue;
                    }
                    let mut probe: Vec<usize> = current
                        .selected
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != out_pos)
                        .map(|(_, &u)| u)
                        .collect();
                    probe.push(cand);
                    let cost = graph.cost_of(&probe);
                    if cost < current.cost && best.is_none_or(|(_, _, bc)| cost < bc) {
                        best = Some((out_pos, cand, cost));
                    }
                }
            }
            let Some((out_pos, cand, cost)) = best else {
                break;
            };
            in_summary[current.selected[out_pos]] = false;
            in_summary[cand] = true;
            current.selected[out_pos] = cand;
            current.cost = cost;
        }
        current
    }

    #[test]
    fn optimized_sweep_matches_the_reference_costs() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        for k in 0..=6 {
            let fast = LocalSearchSummarizer::default().summarize(&g, k);
            let slow = reference_summarize(&g, k, 64);
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn optimized_sweep_matches_the_reference_on_a_larger_instance() {
        // A three-level hierarchy and an LCG-driven pair set large enough
        // that greedy is not locally optimal and real swaps happen.
        let mut bl = HierarchyBuilder::new();
        let mut leaves = Vec::new();
        for i in 0..6 {
            let mid = format!("m{i}");
            bl.add_edge_by_name("root", &mid).unwrap();
            for j in 0..4 {
                let leaf = format!("m{i}_l{j}");
                bl.add_edge_by_name(&mid, &leaf).unwrap();
                leaves.push(leaf);
            }
        }
        let h = bl.build().unwrap();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let pairs: Vec<Pair> = (0..40)
            .map(|_| {
                let leaf = &leaves[next() % leaves.len()];
                let sentiment = (next() % 21) as f64 / 10.0 - 1.0;
                Pair::new(h.node_by_name(leaf).unwrap(), sentiment)
            })
            .collect();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.4);
        for k in [2usize, 3, 5, 8] {
            let fast = LocalSearchSummarizer::default().summarize(&g, k);
            let slow = reference_summarize(&g, k, 64);
            assert_eq!(fast, slow, "k={k}");
            assert_eq!(fast.cost, g.cost_of(&fast.selected), "k={k}");
        }
    }

    #[test]
    fn zero_swap_budget_equals_greedy() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let greedy = GreedySummarizer.summarize(&g, 3);
        let ls = LocalSearchSummarizer { max_swaps: 0 }.summarize(&g, 3);
        assert_eq!(greedy.cost, ls.cost);
    }
}
