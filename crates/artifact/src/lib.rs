//! # osa-artifact
//!
//! The persistent artifact store behind `osars compile`: a versioned,
//! checksummed, little-endian binary encoding of a fully prepared corpus
//! — hierarchy, review text, per-item extraction output, and the
//! compressed segment reachability index — so a daemon can cold-start
//! from one sequential read instead of re-running the extraction
//! pipeline over every review.
//!
//! ## Format
//!
//! ```text
//! magic   u32   "OSAR" (little-endian; a byte-swapped magic is a
//!               wrong-endian file, not garbage)
//! version u32   bumped on any layout change; readers reject mismatches
//! length  u64   payload byte count
//! check   u64   lane-folded FNV-1a-64 checksum of the payload
//! payload       prelude · block-length table · item blocks
//! ```
//!
//! The payload is **block-framed**: a prelude (hierarchy, segment
//! index, corpus name, `u32` block-length table) followed by one
//! self-contained block per item holding that item's reviews *and* its
//! extraction output. [`decode`] materializes everything eagerly;
//! [`open_lazy`] decodes only the prelude and hands back an
//! [`ItemStore`] that decodes each block on first touch — so a daemon's
//! cold start is one sequential read plus the checksum sweep, with the
//! per-item decode amortized into request handling.
//!
//! All integers are little-endian; floats are stored as IEEE-754 bit
//! patterns (`f64::to_bits`), so values — including negative zero —
//! round-trip exactly.
//!
//! The hierarchy is stored as its node table plus the **original edge
//! insertion sequence** ([`Hierarchy::edge_list`]); decoding replays it
//! through [`HierarchyBuilder`], which re-validates every rooted-DAG
//! invariant and reproduces the adjacency arrays bit for bit. The
//! matcher automaton and token interner are deliberately *not* stored:
//! both are deterministic functions of the hierarchy, rebuilt in
//! milliseconds, while the per-review extraction pass they accelerate —
//! the true boot cost — is exactly what the stored
//! [`ExtractedItem`]s skip.
//!
//! Every decode error is a typed [`ArtifactError`]; a truncated file, a
//! flipped payload byte, a stale version, or a wrong-endian header each
//! fail cleanly before any partially decoded state escapes.
//!
//! [`Hierarchy::edge_list`]: osa_ontology::Hierarchy::edge_list
//! [`HierarchyBuilder`]: osa_ontology::HierarchyBuilder

#![warn(missing_docs)]

use std::fmt;
use std::path::Path;

use osa_core::Pair;
use osa_datasets::{Corpus, ExtractedItem, ExtractedSentence, Item, Review};
use osa_ontology::{HierarchyBuilder, NodeId, SegmentIndex};

/// "OSAR", read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"OSAR");

/// Current artifact layout version. Bumped on any change to the payload
/// encoding; readers reject every other version rather than guessing.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Everything a daemon needs to answer summary requests, decoded from
/// one artifact file.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The corpus (hierarchy + review text). The hierarchy's segment
    /// index cache is pre-primed from the artifact, so segmented
    /// ancestor queries never pay the build sweep.
    pub corpus: Corpus,
    /// Extraction output per item, aligned with `corpus.items`.
    pub extracted: Vec<ExtractedItem>,
}

/// Typed decode/IO failures. Every corruption mode maps to a distinct
/// variant — loaders report *why* an artifact was rejected, and never
/// panic or silently misread.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file IO failed.
    Io(std::io::Error),
    /// The magic number is not "OSAR" in either byte order.
    BadMagic(u32),
    /// The magic matches byte-swapped: the file was written by a
    /// (hypothetical) opposite-endian encoder.
    WrongEndian,
    /// The layout version is not [`VERSION`].
    WrongVersion {
        /// Version tag found in the header.
        found: u32,
        /// The version this reader understands.
        expected: u32,
    },
    /// The file ends before the encoded structure does.
    Truncated {
        /// Bytes the decoder needed next.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The lane-folded FNV-1a-64 checksum over the payload does not
    /// match.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the payload as read.
        computed: u64,
    },
    /// The payload decodes but violates a structural invariant (index
    /// out of range, section length disagreement, invalid UTF-8, …).
    Malformed(&'static str),
    /// The stored hierarchy failed rooted-DAG re-validation.
    Ontology(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io: {e}"),
            ArtifactError::BadMagic(m) => write!(f, "not an osars artifact (magic {m:#010x})"),
            ArtifactError::WrongEndian => {
                write!(f, "artifact written with opposite byte order")
            }
            ArtifactError::WrongVersion { found, expected } => write!(
                f,
                "artifact version {found} unsupported (this build reads version {expected}); \
                 re-run `osars compile`"
            ),
            ArtifactError::Truncated { need, have } => {
                write!(
                    f,
                    "artifact truncated: needed {need} more bytes, found {have}"
                )
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch (header {stored:#018x}, payload {computed:#018x})"
            ),
            ArtifactError::Malformed(what) => write!(f, "artifact malformed: {what}"),
            ArtifactError::Ontology(e) => {
                write!(f, "artifact hierarchy failed re-validation: {e}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Header checksum: FNV-1a-64 folded over 8-byte little-endian lanes
/// (tail zero-padded), seeded with the payload length. Lane folding
/// keeps the serial multiply chain 8× shorter than byte-at-a-time FNV;
/// every cold boot pays this over the whole payload, so it has to run
/// at memory speed. The length seed keeps zero-padded tails of
/// different lengths from colliding.
fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

// --- encoding ---------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Element/byte counts are u32 lanes: no section holds 4 billion
    /// entries, and the prefix appears once per string and per vector.
    fn len(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("count fits u32"));
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn ids(&mut self, ids: &[NodeId]) {
        self.len(ids.len());
        for &n in ids {
            self.u32(n.index() as u32);
        }
    }
    fn u32s(&mut self, vs: &[u32]) {
        self.len(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }
    /// Indices into in-memory vectors (pairs, sentences) — always far
    /// below `u32::MAX`, so four bytes per lane, not eight.
    fn indices(&mut self, vs: &[usize]) {
        self.len(vs.len());
        for &v in vs {
            self.u32(u32::try_from(v).expect("index fits u32"));
        }
    }
    fn pairs(&mut self, ps: &[Pair]) {
        self.len(ps.len());
        for p in ps {
            self.u32(p.concept.index() as u32);
            self.f64(p.sentiment);
        }
    }
}

/// One item's reviews and extraction output, framed as a contiguous
/// byte block. Blocks are the unit of lazy loading: a daemon can boot
/// from the prelude alone and decode a block on the item's first
/// request.
fn encode_block(item: &Item, ex: &ExtractedItem) -> Vec<u8> {
    let mut b = Enc { buf: Vec::new() };
    b.str(&item.name);
    b.len(item.reviews.len());
    for r in &item.reviews {
        b.str(&r.text);
        b.pairs(&r.planted);
    }
    b.pairs(&ex.pairs);
    b.len(ex.sentences.len());
    for s in &ex.sentences {
        b.str(&s.text);
        b.u32s(&s.tokens);
        b.indices(&s.pair_indices);
        b.f64(s.sentiment);
    }
    b.len(ex.reviews.len());
    for r in &ex.reviews {
        b.indices(r);
    }
    b.len(ex.tokens.len());
    for t in &ex.tokens {
        b.str(t);
    }
    b.buf
}

/// Serialize a prepared corpus into artifact bytes. `extracted` must be
/// the extraction output of `corpus.items`, in item order — extraction
/// is impl-invariant, so output from either extract impl is valid.
///
/// Building the segment index is part of compilation: the encoder forces
/// it (via [`Hierarchy::segment_index`]) so the artifact always carries
/// it and loaders never pay the construction sweep.
pub fn encode(corpus: &Corpus, extracted: &[ExtractedItem]) -> Vec<u8> {
    assert_eq!(
        corpus.items.len(),
        extracted.len(),
        "one ExtractedItem per corpus item"
    );
    let h = &corpus.hierarchy;
    let mut e = Enc { buf: Vec::new() };

    // Section: hierarchy.
    e.len(h.node_count());
    for n in h.nodes() {
        e.str(h.name(n));
        e.len(h.terms(n).len());
        for t in h.terms(n) {
            e.str(t);
        }
    }
    e.len(h.edge_list().len());
    for &(p, c) in h.edge_list() {
        e.u32(p.index() as u32);
        e.u32(c.index() as u32);
    }
    e.u32(h.root().index() as u32);

    // Section: segment index.
    let (order, starts, par_off, par_entries) = h.segment_index().parts();
    e.ids(order);
    e.u32s(starts);
    e.u32s(par_off);
    e.ids(par_entries);

    // Section: corpus header + item block table + blocks. Each block's
    // byte length is recorded up front so a loader can index every
    // block from the prelude without touching block contents.
    e.str(&corpus.name);
    e.len(corpus.items.len());
    let blocks: Vec<Vec<u8>> = corpus
        .items
        .iter()
        .zip(extracted)
        .map(|(item, ex)| encode_block(item, ex))
        .collect();
    for b in &blocks {
        e.len(b.len());
    }
    for b in &blocks {
        e.buf.extend_from_slice(b);
    }

    let payload = e.buf;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// --- decoding ---------------------------------------------------------------

struct Cur<'a> {
    data: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let have = self.data.len() - self.off;
        if n > have {
            return Err(ArtifactError::Truncated { need: n, have });
        }
        let s = &self.data[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix for items at least `unit` bytes each; bounded by
    /// the remaining payload so corrupt lengths fail as `Truncated`
    /// instead of attempting absurd allocations.
    fn len(&mut self, unit: usize) -> Result<usize, ArtifactError> {
        let raw = self.u32()? as u64;
        let have = self.data.len() - self.off;
        let need = raw.checked_mul(unit.max(1) as u64);
        match need {
            Some(n) if n <= have as u64 => Ok(raw as usize),
            _ => Err(ArtifactError::Truncated {
                need: need.map_or(usize::MAX, |n| n as usize),
                have,
            }),
        }
    }

    fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(ArtifactError::Malformed("string is not UTF-8")),
        }
    }

    fn node(&mut self, n_nodes: usize) -> Result<NodeId, ArtifactError> {
        let raw = self.u32()? as usize;
        if raw >= n_nodes {
            return Err(ArtifactError::Malformed("node id out of range"));
        }
        Ok(NodeId::from_index(raw))
    }

    // The array readers below take their whole byte range in one bounds
    // check and parse fixed-width lanes off it — cold boot decodes
    // millions of these, so per-element cursor arithmetic is the
    // difference between an I/O-bound and a compute-bound load.

    fn ids(&mut self, n_nodes: usize) -> Result<Vec<NodeId>, ArtifactError> {
        let n = self.len(4)?;
        let bytes = self.take(4 * n)?;
        let mut out = Vec::with_capacity(n);
        for c in bytes.chunks_exact(4) {
            let raw = u32::from_le_bytes(c.try_into().expect("4")) as usize;
            if raw >= n_nodes {
                return Err(ArtifactError::Malformed("node id out of range"));
            }
            out.push(NodeId::from_index(raw));
        }
        Ok(out)
    }

    fn u32s(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let n = self.len(4)?;
        let bytes = self.take(4 * n)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    /// `usize` indices bounded by `limit`, stored as u32 lanes.
    fn indices(&mut self, limit: usize) -> Result<Vec<usize>, ArtifactError> {
        let n = self.len(4)?;
        let bytes = self.take(4 * n)?;
        let mut out = Vec::with_capacity(n);
        for c in bytes.chunks_exact(4) {
            let raw = u32::from_le_bytes(c.try_into().expect("4")) as usize;
            if raw >= limit {
                return Err(ArtifactError::Malformed("index out of range"));
            }
            out.push(raw);
        }
        Ok(out)
    }

    fn pairs(&mut self, n_nodes: usize) -> Result<Vec<Pair>, ArtifactError> {
        let n = self.len(12)?;
        let bytes = self.take(12 * n)?;
        let mut out = Vec::with_capacity(n);
        for c in bytes.chunks_exact(12) {
            let raw = u32::from_le_bytes(c[0..4].try_into().expect("4")) as usize;
            if raw >= n_nodes {
                return Err(ArtifactError::Malformed("node id out of range"));
            }
            let s = f64::from_bits(u64::from_le_bytes(c[4..12].try_into().expect("8")));
            // Not `Pair::new`: it sanitizes (NaN → 0, sign-normalized
            // zero), which would break the codec's bit-exact round-trip
            // contract for values the encoder stored verbatim.
            out.push(Pair {
                concept: NodeId::from_index(raw),
                sentiment: s,
            });
        }
        Ok(out)
    }
}

/// Validate magic, version, payload length, and checksum; return the
/// payload slice. Every loader — eager or lazy — goes through this
/// before any structural decoding, so corruption is always caught up
/// front.
fn validate_header(data: &[u8]) -> Result<&[u8], ArtifactError> {
    if data.len() < HEADER_LEN {
        return Err(ArtifactError::Truncated {
            need: HEADER_LEN,
            have: data.len(),
        });
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().expect("4"));
    if magic != MAGIC {
        return Err(if magic == MAGIC.swap_bytes() {
            ArtifactError::WrongEndian
        } else {
            ArtifactError::BadMagic(magic)
        });
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4"));
    if version != VERSION {
        return Err(ArtifactError::WrongVersion {
            found: version,
            expected: VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(data[8..16].try_into().expect("8")) as usize;
    let payload = &data[HEADER_LEN..];
    if payload.len() < payload_len {
        return Err(ArtifactError::Truncated {
            need: payload_len,
            have: payload.len(),
        });
    }
    if payload.len() > payload_len {
        return Err(ArtifactError::Malformed("trailing bytes after payload"));
    }
    let stored = u64::from_le_bytes(data[16..24].try_into().expect("8"));
    let computed = checksum64(payload);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Everything decoded before the item blocks: hierarchy (segment index
/// primed), corpus name, and the block table.
struct Prelude {
    hierarchy: osa_ontology::Hierarchy,
    corpus_name: String,
    /// `(offset, len)` of each item block, relative to the payload.
    blocks: Vec<(usize, usize)>,
}

fn parse_prelude(payload: &[u8]) -> Result<Prelude, ArtifactError> {
    let mut c = Cur {
        data: payload,
        off: 0,
    };

    // Section: hierarchy — replayed through the builder so every
    // rooted-DAG invariant is re-validated on load.
    let n_nodes = c.len(1)?;
    let mut b = HierarchyBuilder::new();
    for _ in 0..n_nodes {
        let name = c.str()?;
        let n_terms = c.len(4)?;
        let terms: Vec<String> = (0..n_terms).map(|_| c.str()).collect::<Result<_, _>>()?;
        b.add_node_with_terms(&name, &terms);
    }
    let n_edges = c.len(8)?;
    for _ in 0..n_edges {
        let p = c.node(n_nodes)?;
        let ch = c.node(n_nodes)?;
        b.add_edge(p, ch)
            .map_err(|e| ArtifactError::Ontology(e.to_string()))?;
    }
    let hierarchy = b
        .build()
        .map_err(|e| ArtifactError::Ontology(e.to_string()))?;
    let root = c.node(n_nodes)?;
    if root != hierarchy.root() {
        return Err(ArtifactError::Malformed("stored root disagrees"));
    }

    // Section: segment index — structurally validated against the
    // rebuilt hierarchy before it is allowed to answer queries.
    let order = c.ids(n_nodes)?;
    let starts = c.u32s()?;
    let par_off = c.u32s()?;
    let par_entries = c.ids(n_nodes)?;
    let seg = SegmentIndex::from_parts(&hierarchy, order, starts, par_off, par_entries)
        .map_err(ArtifactError::Malformed)?;
    hierarchy.prime_segment_index(seg);

    // Section: corpus header + item block table. Block contents are
    // NOT decoded here — only indexed — so the prelude parses in
    // microseconds regardless of corpus size.
    let corpus_name = c.str()?;
    let n_items = c.len(4)?;
    let mut lens = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        lens.push(c.u32()? as usize);
    }
    let mut blocks = Vec::with_capacity(n_items);
    let mut off = c.off;
    for &len in &lens {
        let have = payload.len() - off;
        if len > have {
            return Err(ArtifactError::Truncated { need: len, have });
        }
        blocks.push((off, len));
        off += len;
    }
    if off != payload.len() {
        return Err(ArtifactError::Malformed("trailing bytes after payload"));
    }

    Ok(Prelude {
        hierarchy,
        corpus_name,
        blocks,
    })
}

/// Decode one item block: the item's reviews plus its extraction
/// output. `n_nodes` bounds every stored [`NodeId`].
fn decode_block(bytes: &[u8], n_nodes: usize) -> Result<(Item, ExtractedItem), ArtifactError> {
    let mut c = Cur {
        data: bytes,
        off: 0,
    };
    let name = c.str()?;
    let n_reviews = c.len(8)?;
    let mut reviews = Vec::with_capacity(n_reviews);
    for _ in 0..n_reviews {
        let text = c.str()?;
        let planted = c.pairs(n_nodes)?;
        reviews.push(Review { text, planted });
    }
    let item = Item { name, reviews };

    let pairs = c.pairs(n_nodes)?;
    let n_pairs = pairs.len();
    let n_sentences = c.len(8)?;
    let mut sentences = Vec::with_capacity(n_sentences);
    for _ in 0..n_sentences {
        let text = c.str()?;
        let tokens = c.u32s()?;
        let pair_indices = c.indices(n_pairs.max(1))?;
        if n_pairs == 0 && !pair_indices.is_empty() {
            return Err(ArtifactError::Malformed("index out of range"));
        }
        let sentiment = c.f64()?;
        sentences.push(ExtractedSentence {
            text,
            tokens,
            pair_indices,
            sentiment,
        });
    }
    let n_ex_reviews = c.len(4)?;
    let ex_reviews: Vec<Vec<usize>> = (0..n_ex_reviews)
        .map(|_| c.indices(n_sentences.max(1)))
        .collect::<Result<_, _>>()?;
    if n_sentences == 0 && ex_reviews.iter().any(|r| !r.is_empty()) {
        return Err(ArtifactError::Malformed("index out of range"));
    }
    let n_tokens = c.len(4)?;
    let tokens: Vec<String> = (0..n_tokens).map(|_| c.str()).collect::<Result<_, _>>()?;
    if sentences
        .iter()
        .any(|s| s.tokens.iter().any(|&t| t as usize >= tokens.len()))
    {
        return Err(ArtifactError::Malformed("token id out of range"));
    }
    if c.off != bytes.len() {
        return Err(ArtifactError::Malformed("trailing bytes in item block"));
    }
    Ok((
        item,
        ExtractedItem {
            pairs,
            sentences,
            reviews: ex_reviews,
            tokens,
        },
    ))
}

/// Decode artifact bytes produced by [`encode`], materializing every
/// item block eagerly.
pub fn decode(data: &[u8]) -> Result<Artifact, ArtifactError> {
    let payload = validate_header(data)?;
    let p = parse_prelude(payload)?;
    let n_nodes = p.hierarchy.node_count();
    let mut items = Vec::with_capacity(p.blocks.len());
    let mut extracted = Vec::with_capacity(p.blocks.len());
    for &(off, len) in &p.blocks {
        let (item, ex) = decode_block(&payload[off..off + len], n_nodes)?;
        items.push(item);
        extracted.push(ex);
    }
    Ok(Artifact {
        corpus: Corpus {
            name: p.corpus_name,
            hierarchy: p.hierarchy,
            items,
        },
        extracted,
    })
}

/// A block-framed artifact opened for lazy loading: the prelude —
/// hierarchy, primed segment index, block table — is decoded eagerly
/// (microseconds, independent of review volume) while each item block
/// is materialized on first touch through [`ItemStore::item`]. This is
/// what makes an artifact-booted daemon's cold start I/O-bound: boot
/// pays one sequential read plus the checksum sweep, never a per-review
/// decode or extraction pass.
#[derive(Debug)]
pub struct LazyArtifact {
    /// The rebuilt hierarchy, segment index primed from the artifact.
    pub hierarchy: osa_ontology::Hierarchy,
    /// Corpus display name.
    pub corpus_name: String,
    /// Cheaply clonable handle to the undecoded item blocks.
    pub store: ItemStore,
}

/// Shared handle to the artifact's raw bytes plus the block table;
/// clones are `Arc`-cheap so every daemon worker can hold one.
#[derive(Debug, Clone)]
pub struct ItemStore {
    inner: std::sync::Arc<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    /// The entire artifact file (header included).
    bytes: Vec<u8>,
    /// Absolute `(offset, len)` of each item block within `bytes`.
    blocks: Vec<(usize, usize)>,
    n_nodes: usize,
}

impl ItemStore {
    /// Number of item blocks.
    pub fn len(&self) -> usize {
        self.inner.blocks.len()
    }

    /// True when the artifact holds no items.
    pub fn is_empty(&self) -> bool {
        self.inner.blocks.is_empty()
    }

    /// Decode item block `i` into the item's reviews and extraction
    /// output. The whole payload was checksum-verified at open, so a
    /// structural error here means an encoder bug, not file corruption
    /// — it is still reported as a typed error, never a panic.
    pub fn item(&self, i: usize) -> Result<(Item, ExtractedItem), ArtifactError> {
        let &(off, len) = self
            .inner
            .blocks
            .get(i)
            .ok_or(ArtifactError::Malformed("item index out of range"))?;
        decode_block(&self.inner.bytes[off..off + len], self.inner.n_nodes)
    }
}

/// Open an artifact for lazy loading: validate the header and checksum,
/// decode the prelude, and index — but do not decode — the item blocks.
pub fn open_lazy(path: &Path) -> Result<LazyArtifact, ArtifactError> {
    lazy_from_bytes(std::fs::read(path)?)
}

/// [`open_lazy`] over bytes already in memory.
pub fn lazy_from_bytes(bytes: Vec<u8>) -> Result<LazyArtifact, ArtifactError> {
    let prelude = {
        let payload = validate_header(&bytes)?;
        parse_prelude(payload)?
    };
    let n_nodes = prelude.hierarchy.node_count();
    let blocks = prelude
        .blocks
        .iter()
        .map(|&(off, len)| (off + HEADER_LEN, len))
        .collect();
    Ok(LazyArtifact {
        hierarchy: prelude.hierarchy,
        corpus_name: prelude.corpus_name,
        store: ItemStore {
            inner: std::sync::Arc::new(StoreInner {
                bytes,
                blocks,
                n_nodes,
            }),
        },
    })
}

/// [`encode`] straight to a file.
pub fn write_artifact(
    path: &Path,
    corpus: &Corpus,
    extracted: &[ExtractedItem],
) -> Result<u64, ArtifactError> {
    let bytes = encode(corpus, extracted);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Read and [`decode`] an artifact file.
pub fn read_artifact(path: &Path) -> Result<Artifact, ArtifactError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_datasets::{CorpusConfig, ExtractImpl, Extractor};
    use osa_text::ExtractScratch;

    fn tiny() -> (Corpus, Vec<ExtractedItem>) {
        let cfg = CorpusConfig {
            items: 3,
            min_reviews: 2,
            max_reviews: 5,
            mean_reviews: 3.0,
            mean_sentences: 3.0,
            aspect_sentence_prob: 0.8,
        };
        let corpus = Corpus::phones(&cfg, 11);
        let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
        let mut scratch = ExtractScratch::default();
        let extracted = corpus
            .items
            .iter()
            .map(|it| extractor.extract(it, ExtractImpl::Interned, &mut scratch))
            .collect();
        (corpus, extracted)
    }

    #[test]
    fn round_trip_is_lossless() {
        let (corpus, extracted) = tiny();
        let bytes = encode(&corpus, &extracted);
        let art = decode(&bytes).expect("decodes");
        assert_eq!(art.corpus.name, corpus.name);
        assert_eq!(
            art.corpus.hierarchy.edge_list(),
            corpus.hierarchy.edge_list()
        );
        assert_eq!(art.extracted, extracted);
        // Re-encoding the decoded artifact reproduces the bytes exactly.
        assert_eq!(encode(&art.corpus, &art.extracted), bytes);
    }

    #[test]
    fn decoded_hierarchy_is_primed_with_the_segment_index() {
        let (corpus, extracted) = tiny();
        let expected = corpus.hierarchy.segment_index().parts().0.to_vec();
        let art = decode(&encode(&corpus, &extracted)).expect("decodes");
        // `segments` was seeded by the decoder; this get() hits the
        // primed cache, not a fresh build (equality would hold either
        // way, so also check via entry weight identity of parts()).
        assert_eq!(
            art.corpus.hierarchy.segment_index().parts().0,
            &expected[..]
        );
    }

    #[test]
    fn truncation_reports_typed_error() {
        let (corpus, extracted) = tiny();
        let bytes = encode(&corpus, &extracted);
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 1] {
            match decode(&bytes[..cut]) {
                Err(ArtifactError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let (corpus, extracted) = tiny();
        let mut bytes = encode(&corpus, &extracted);
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode(&bytes),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let (corpus, extracted) = tiny();
        let good = encode(&corpus, &extracted);

        let mut wrong_version = good.clone();
        wrong_version[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode(&wrong_version),
            Err(ArtifactError::WrongVersion { found, expected })
                if found == VERSION + 1 && expected == VERSION
        ));

        let mut swapped = good.clone();
        swapped[0..4].copy_from_slice(&MAGIC.swap_bytes().to_le_bytes());
        assert!(matches!(decode(&swapped), Err(ArtifactError::WrongEndian)));

        let mut garbage = good;
        garbage[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        assert!(matches!(decode(&garbage), Err(ArtifactError::BadMagic(_))));
    }
}
