//! # osars — Ontology- and Sentiment-Aware Review Summarization
//!
//! Meta-crate re-exporting the whole OSARS workspace: a from-scratch Rust
//! reproduction of *"Unsupervised Ontology- and Sentiment-Aware Review
//! Summarization"* (Le, Young, Hristidis; ICDE 2017 poster / WISE 2019).
//!
//! The individual crates:
//!
//! * [`ontology`] — rooted-DAG concept hierarchies,
//! * [`linalg`] — the dense/sparse linear algebra substrate,
//! * [`solver`] — LP (simplex) and ILP (branch & bound),
//! * [`text`] — tokenization, sentiment, concept extraction,
//! * [`core`] — the coverage problems and the Greedy/ILP/RR algorithms,
//! * [`baselines`] — the five baseline summarizers of the evaluation,
//! * [`eval`] — coverage-cost and sentiment-error metrics,
//! * [`datasets`] — synthetic doctor/phone corpora calibrated to Table 1,
//! * [`artifact`] — the compiled-corpus binary artifact store (`osars compile`),
//! * [`runtime`] — the deterministic parallel batch engine (`--jobs`),
//! * [`check`] — the seeded differential-testing & fault-injection harness,
//! * [`serve`] — the long-lived HTTP summarization daemon (`osars serve`),
//! * [`json`] — the self-contained JSON tree model used by the snapshots,
//! * [`obs`] — structured tracing and the pipeline metrics registry.
//!
//! See `examples/quickstart.rs` for a 30-line end-to-end run.

pub use osa_artifact as artifact;
pub use osa_baselines as baselines;
pub use osa_check as check;
pub use osa_core as core;
pub use osa_datasets as datasets;
pub use osa_eval as eval;
pub use osa_json as json;
pub use osa_linalg as linalg;
pub use osa_obs as obs;
pub use osa_ontology as ontology;
pub use osa_runtime as runtime;
pub use osa_serve as serve;
pub use osa_solver as solver;
pub use osa_text as text;

/// Commonly used items, for glob import in examples and downstream code.
pub mod prelude {
    pub use osa_core::{
        CoverageGraph, Granularity, GreedySummarizer, IlpSummarizer, Pair, RandomizedRounding,
        Summarizer,
    };
    pub use osa_ontology::{Hierarchy, HierarchyBuilder, NodeId};
    pub use osa_runtime::{summarize_corpus, BatchJob, BatchOptions, BatchReport};
}
