//! The ICDE 2017 poster's experiment: coverage measures of the greedy
//! summarizer on doctor reviews as k grows. The poster (the preliminary
//! version of the full paper this workspace reproduces) reports how much
//! of the opinion set a size-k summary covers; this harness prints the
//! strict summary-coverage rate, the within-distance rates, and the mean
//! serving distance, averaged over items, for the sentence variant at
//! ε = 0.5.

use osa_bench::write_csv;
use osa_core::{CoverageGraph, Granularity, GreedySummarizer, Summarizer};
use osa_datasets::{extract_item, Corpus, CorpusConfig};
use osa_eval::{covered_by_summary, covered_within, mean_serving_distance};
use osa_text::{ConceptMatcher, SentimentLexicon};

const EPS: f64 = 0.5;

fn main() {
    let corpus = Corpus::doctors(&CorpusConfig::doctors_small(), 61);
    let matcher = ConceptMatcher::from_hierarchy(&corpus.hierarchy);
    let lexicon = SentimentLexicon::default();

    println!(
        "=== ICDE'17 poster: greedy coverage on doctor reviews ({} items, eps={EPS}) ===\n",
        corpus.items.len()
    );
    println!(
        "{:<4} {:>16} {:>12} {:>12} {:>14}",
        "k", "covered-by-sum", "within<=1", "within<=2", "mean distance"
    );

    let graphs: Vec<CoverageGraph> = corpus
        .items
        .iter()
        .map(|item| {
            let ex = extract_item(item, &matcher, &lexicon);
            CoverageGraph::for_groups(
                &corpus.hierarchy,
                &ex.pairs,
                &ex.sentence_groups(),
                EPS,
                Granularity::Sentences,
            )
        })
        .collect();

    let mut csv = Vec::new();
    for k in [1usize, 2, 4, 6, 8, 10, 15, 20] {
        let mut strict = 0.0;
        let mut w1 = 0.0;
        let mut w2 = 0.0;
        let mut md = 0.0;
        for g in &graphs {
            let sel = GreedySummarizer.summarize(g, k).selected;
            strict += covered_by_summary(g, &sel);
            w1 += covered_within(g, &sel, 1);
            w2 += covered_within(g, &sel, 2);
            md += mean_serving_distance(g, &sel);
        }
        let n = graphs.len() as f64;
        println!(
            "{k:<4} {:>16.4} {:>12.4} {:>12.4} {:>14.4}",
            strict / n,
            w1 / n,
            w2 / n,
            md / n
        );
        csv.push(format!(
            "{k},{:.5},{:.5},{:.5},{:.5}",
            strict / n,
            w1 / n,
            w2 / n,
            md / n
        ));
    }
    println!("\n(coverage rises and mean distance falls monotonically with k,\n as the poster reports for its greedy summarizer)");
    write_csv(
        "poster_coverage.csv",
        "k,covered_by_summary,within_1,within_2,mean_distance",
        &csv,
    );
}
