//! A token-sequence trie with longest-match lookup.
//!
//! Backs the dictionary concept matcher: ontology surface terms are
//! inserted as token sequences, and review sentences are scanned left to
//! right taking the longest phrase match at each position (mirroring how
//! MetaMap prefers the most specific candidate).

use std::collections::HashMap;

/// A trie over token sequences; each accepted sequence carries a payload
/// of type `T` (the last insert for a given phrase wins).
#[derive(Debug, Clone)]
pub struct Trie<T> {
    nodes: Vec<TrieNode<T>>,
}

#[derive(Debug, Clone)]
struct TrieNode<T> {
    children: HashMap<String, usize>,
    payload: Option<T>,
}

impl<T> Default for Trie<T> {
    fn default() -> Self {
        Trie {
            nodes: vec![TrieNode {
                children: HashMap::new(),
                payload: None,
            }],
        }
    }
}

impl<T: Clone> Trie<T> {
    /// Empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a token sequence with a payload. Empty sequences are
    /// ignored.
    pub fn insert<S: AsRef<str>>(&mut self, phrase: &[S], payload: T) {
        if phrase.is_empty() {
            return;
        }
        let mut cur = 0usize;
        for tok in phrase {
            let tok = tok.as_ref();
            cur = match self.nodes[cur].children.get(tok) {
                Some(&next) => next,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(TrieNode {
                        children: HashMap::new(),
                        payload: None,
                    });
                    self.nodes[cur].children.insert(tok.to_owned(), next);
                    next
                }
            };
        }
        self.nodes[cur].payload = Some(payload);
    }

    /// Longest match starting exactly at `tokens[start]`. Returns the
    /// matched length (≥ 1) and a reference to the payload.
    pub fn longest_match<S: AsRef<str>>(&self, tokens: &[S], start: usize) -> Option<(usize, &T)> {
        let mut cur = 0usize;
        let mut best: Option<(usize, &T)> = None;
        for (offset, tok) in tokens[start..].iter().enumerate() {
            match self.nodes[cur].children.get(tok.as_ref()) {
                Some(&next) => {
                    cur = next;
                    if let Some(p) = &self.nodes[cur].payload {
                        best = Some((offset + 1, p));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Scan a token slice, emitting non-overlapping longest matches as
    /// `(start, len, payload)`. On a match of length `L` at position `i`
    /// the scan resumes at `i + L`.
    pub fn scan<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<(usize, usize, T)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            match self.longest_match(tokens, i) {
                Some((len, payload)) => {
                    out.push((i, len, payload.clone()));
                    i += len;
                }
                None => i += 1,
            }
        }
        out
    }

    /// Number of stored phrases.
    pub fn phrase_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.payload.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        crate::tokenize(s)
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = Trie::new();
        t.insert(&toks("display"), 1u32);
        t.insert(&toks("display color"), 2);
        let sent = toks("the display color is vivid");
        let hits = t.scan(&sent);
        assert_eq!(hits, vec![(1, 2, 2)]);
    }

    #[test]
    fn non_overlapping_scan() {
        let mut t = Trie::new();
        t.insert(&toks("battery"), 10u32);
        t.insert(&toks("battery life"), 11);
        t.insert(&toks("life"), 12);
        let sent = toks("battery life battery");
        let hits = t.scan(&sent);
        assert_eq!(hits, vec![(0, 2, 11), (2, 1, 10)]);
    }

    #[test]
    fn no_match_returns_empty() {
        let t: Trie<u32> = Trie::new();
        assert!(t.scan(&toks("nothing here")).is_empty());
        assert_eq!(t.phrase_count(), 0);
    }

    #[test]
    fn last_insert_wins() {
        let mut t = Trie::new();
        t.insert(&toks("screen"), 1u32);
        t.insert(&toks("screen"), 2);
        assert_eq!(t.phrase_count(), 1);
        let sent = toks("screen");
        assert_eq!(t.scan(&sent), vec![(0, 1, 2)]);
    }

    #[test]
    fn empty_phrase_is_ignored() {
        let mut t: Trie<u32> = Trie::new();
        t.insert::<&str>(&[], 5);
        assert_eq!(t.phrase_count(), 0);
    }

    #[test]
    fn partial_phrase_does_not_match() {
        let mut t = Trie::new();
        t.insert(&toks("heart disease management"), 1u32);
        assert!(t.scan(&toks("heart disease")).is_empty());
    }
}
