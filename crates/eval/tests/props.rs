//! Property tests for the evaluation metrics.

use osa_core::Pair;
use osa_eval::{sent_err, sent_err_penalized};
use osa_ontology::{Hierarchy, HierarchyBuilder, NodeId};
use proptest::prelude::*;

fn arb_tree_and_pairs() -> impl Strategy<Value = (Hierarchy, Vec<Pair>, Vec<Pair>)> {
    (2usize..=10)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
            let p = proptest::collection::vec((0..n, -10i8..=10), 1..=12);
            let f = proptest::collection::vec((0..n, -10i8..=10), 0..=6);
            (Just(n), parents, p, f)
        })
        .prop_map(|(n, parents, p, f)| {
            let mut b = HierarchyBuilder::new();
            for i in 0..n {
                b.add_node(&format!("n{i}"));
            }
            for (i, par) in parents.into_iter().enumerate() {
                b.add_edge(NodeId::from_index(par), NodeId::from_index(i + 1))
                    .unwrap();
            }
            let h = b.build().unwrap();
            let mk = |v: Vec<(usize, i8)>| {
                v.into_iter()
                    .map(|(c, s)| Pair::new(NodeId::from_index(c), f64::from(s) / 10.0))
                    .collect::<Vec<_>>()
            };
            (h, mk(p), mk(f))
        })
        .no_shrink()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn errors_are_bounded_and_ordered((h, p, f) in arb_tree_and_pairs()) {
        let plain = sent_err(&h, &p, &f);
        let pen = sent_err_penalized(&h, &p, &f);
        prop_assert!(plain >= 0.0);
        prop_assert!(plain <= 2.0 + 1e-12, "max per-pair error is 2");
        prop_assert!(pen >= plain - 1e-12, "penalized dominates plain");
        prop_assert!(pen <= 2.0 + 1e-12);
    }

    #[test]
    fn error_of_self_summary_is_zero((h, p, _f) in arb_tree_and_pairs()) {
        prop_assert_eq!(sent_err(&h, &p, &p), 0.0);
        prop_assert_eq!(sent_err_penalized(&h, &p, &p), 0.0);
    }

    #[test]
    fn adding_exact_pairs_never_hurts((h, p, f) in arb_tree_and_pairs()) {
        // Extending the summary with a *verbatim* copy of some original
        // pair can only reduce the error: that pair's own error becomes 0
        // and same-concept pairs only gain candidates.
        if p.is_empty() {
            return Ok(());
        }
        let before = sent_err(&h, &p, &f);
        let mut f2 = f.clone();
        f2.push(p[0]);
        let after = sent_err(&h, &p, &f2);
        // Not monotone in general for ancestor fallbacks (a new exact
        // concept *overrides* the ancestor branch), except for the pair
        // itself; so assert the weaker, always-true bound:
        prop_assert!(after <= before + 1.0 + 1e-12);
        // And the added pair itself now has zero error.
        let solo = sent_err(&h, &[p[0]], &f2);
        prop_assert_eq!(solo, 0.0);
    }
}
