//! Quickstart: from raw review text to an ontology- and sentiment-aware
//! summary in ~30 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use osars::core::{CoverageGraph, GreedySummarizer, Pair, Summarizer};
use osars::datasets::phone_hierarchy;
use osars::text::{split_sentences, tokenize, ConceptMatcher, SentimentLexicon};

fn main() {
    // 1. A domain concept hierarchy (Fig. 3 of the paper).
    let hierarchy = phone_hierarchy();

    // 2. Some reviews.
    let reviews = [
        "The screen is fantastic. The screen color is great. Battery life is terrible.",
        "Great display. The charging is slow and the battery is bad.",
        "The camera is good. Picture quality is good. The speaker seems awful.",
    ];

    // 3. Extract concept-sentiment pairs: concepts via the dictionary
    //    matcher, sentiment of the containing sentence via the lexicon.
    let matcher = ConceptMatcher::from_hierarchy(&hierarchy);
    let lexicon = SentimentLexicon::default();
    let mut pairs: Vec<Pair> = Vec::new();
    for review in reviews {
        for sentence in split_sentences(review) {
            let tokens = tokenize(&sentence);
            let sentiment = lexicon.score_tokens(&tokens);
            for m in matcher.find(&tokens) {
                pairs.push(Pair::new(m.concept, sentiment));
            }
        }
    }
    println!(
        "extracted {} concept-sentiment pairs (Fig. 1 style):",
        pairs.len()
    );
    for p in &pairs {
        println!("  ({}, {:+.2})", hierarchy.name(p.concept), p.sentiment);
    }

    // 4. Build the coverage graph (Section 4.1) and pick the k=3 most
    //    representative pairs with the greedy algorithm (Algorithm 2).
    let graph = CoverageGraph::for_pairs(&hierarchy, &pairs, 0.5);
    let summary = GreedySummarizer.summarize(&graph, 3);

    println!(
        "\nk=3 summary (cost {} vs root-only {}):",
        summary.cost,
        graph.root_cost()
    );
    for &i in &summary.selected {
        println!(
            "  {} = {:+.2}",
            hierarchy.name(pairs[i].concept),
            pairs[i].sentiment
        );
    }
}
