//! Solver error type.

use std::fmt;

/// Failures the solver can report (as opposed to model statuses like
/// infeasibility, which are returned in [`Solution`](crate::Solution)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverError {
    /// The LP is unbounded below (no finite optimum exists).
    Unbounded,
    /// The simplex iteration cap was hit — numerically pathological input.
    IterationLimit,
    /// The dual simplex requires non-negative shifted objective
    /// coefficients; this model has some. Use the primal (or `Auto`).
    DualUnsupported,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unbounded => write!(f, "objective is unbounded below"),
            Self::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            Self::DualUnsupported => {
                write!(f, "dual simplex requires non-negative shifted costs")
            }
        }
    }
}

impl std::error::Error for SolverError {}
