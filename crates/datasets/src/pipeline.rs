//! The extraction pipeline: review text → concept-sentiment pairs.
//!
//! Mirrors the paper's setup: concepts are spotted with the dictionary
//! matcher (MetaMap stand-in), the sentiment of the containing sentence is
//! computed (lexicon scorer) and assigned to every concept mentioned in
//! the sentence.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use osa_core::Pair;
use osa_ontology::Hierarchy;
use osa_text::{
    split_sentences, tokenize, ConceptMatcher, ExtractScratch, InternedExtractor, SentimentLexicon,
    SentimentRegressor,
};

use crate::{Corpus, Item};

/// The sentence-sentiment estimator used by extraction: either the
/// deterministic rule-based lexicon or the learned regressor (the paper's
/// doc2vec + regression architecture).
#[derive(Debug, Clone)]
pub enum SentimentModel {
    /// Rule-based lexicon scorer with valence shifters.
    Lexicon(SentimentLexicon),
    /// Hashed bag-of-words + ridge regression.
    Regressor(SentimentRegressor),
}

impl SentimentModel {
    /// Score a tokenized sentence in `[-1, 1]`.
    pub fn score(&self, tokens: &[String]) -> f64 {
        match self {
            SentimentModel::Lexicon(l) => l.score_tokens(tokens),
            SentimentModel::Regressor(r) => r.predict_tokens(tokens),
        }
    }
}

/// Train a sentence-sentiment regressor on a corpus, using each review's
/// mean planted sentiment as a weak per-sentence label — the standard
/// "supervise from the review's star rating" setup the paper's regression
/// assumes. Deterministic.
pub fn train_regressor(corpus: &Corpus, dim: usize, lambda: f64) -> SentimentRegressor {
    let mut sentences: Vec<Vec<String>> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    for item in &corpus.items {
        for review in &item.reviews {
            if review.planted.is_empty() {
                continue;
            }
            let rating: f64 = review.planted.iter().map(|p| p.sentiment).sum::<f64>()
                / review.planted.len() as f64;
            for s in split_sentences(&review.text) {
                sentences.push(tokenize(&s));
                labels.push(rating);
            }
        }
    }
    SentimentRegressor::train(&sentences, &labels, dim, lambda)
}

/// One extracted sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedSentence {
    /// Original sentence text.
    pub text: String,
    /// Lowercase tokens, as indices into [`ExtractedItem::tokens`] — the
    /// item's token pool — rather than one owned `Vec<String>` per
    /// sentence. Use [`ExtractedItem::sentence_tokens`] to materialize
    /// strings when needed.
    pub tokens: Vec<u32>,
    /// Indices into [`ExtractedItem::pairs`] of the pairs this sentence
    /// produced.
    pub pair_indices: Vec<usize>,
    /// The sentence's computed sentiment.
    pub sentiment: f64,
}

/// All pairs of an item plus the sentence/review grouping the coverage
/// problems need.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedItem {
    /// Every concept-sentiment pair of the item (the paper's `P`).
    pub pairs: Vec<Pair>,
    /// The item's sentences in order.
    pub sentences: Vec<ExtractedSentence>,
    /// Sentence indices per review (the k-Reviews grouping).
    pub reviews: Vec<Vec<usize>>,
    /// The item's distinct token strings, in first-occurrence order over
    /// the item's token stream; sentence tokens index into this pool.
    pub tokens: Vec<String>,
}

impl ExtractedItem {
    /// Pair-index groups per sentence (the k-Sentences candidates).
    pub fn sentence_groups(&self) -> Vec<Vec<usize>> {
        self.sentences
            .iter()
            .map(|s| s.pair_indices.clone())
            .collect()
    }

    /// Pair-index groups per review (the k-Reviews candidates).
    pub fn review_groups(&self) -> Vec<Vec<usize>> {
        self.reviews
            .iter()
            .map(|sents| {
                sents
                    .iter()
                    .flat_map(|&si| self.sentences[si].pair_indices.iter().copied())
                    .collect()
            })
            .collect()
    }

    /// The text behind a pooled token ID.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Materialize sentence `si`'s tokens as owned strings.
    pub fn sentence_tokens(&self, si: usize) -> Vec<String> {
        self.sentences[si]
            .tokens
            .iter()
            .map(|&id| self.tokens[id as usize].clone())
            .collect()
    }
}

/// Run the pipeline over one item's reviews with the lexicon scorer.
///
/// This is the naive reference implementation (per-token `String`
/// allocation, trie walks, per-occurrence stemming); the production path
/// is [`Extractor::extract`] with [`ExtractImpl::Interned`], which is
/// byte-identical but index-backed.
pub fn extract_item(
    item: &Item,
    matcher: &ConceptMatcher,
    lexicon: &SentimentLexicon,
) -> ExtractedItem {
    extract_item_with(item, matcher, &SentimentModel::Lexicon(lexicon.clone()))
}

/// Run the pipeline over one item's reviews with an explicit sentiment
/// model (lexicon or learned regressor). Naive reference implementation —
/// see [`extract_item`].
pub fn extract_item_with(
    item: &Item,
    matcher: &ConceptMatcher,
    model: &SentimentModel,
) -> ExtractedItem {
    let mut pairs = Vec::new();
    let mut sentences = Vec::new();
    let mut reviews = Vec::with_capacity(item.reviews.len());
    let mut pool: Vec<String> = Vec::new();
    let mut pool_map: HashMap<String, u32> = HashMap::new();

    for review in &item.reviews {
        let mut sentence_ids = Vec::new();
        for text in split_sentences(&review.text) {
            let tokens = tokenize(&text);
            let sentiment = model.score(&tokens);
            let mentions = matcher.find(&tokens);
            let mut pair_indices = Vec::with_capacity(mentions.len());
            for m in mentions {
                pair_indices.push(pairs.len());
                pairs.push(Pair::new(m.concept, sentiment));
            }
            let mut token_ids = Vec::with_capacity(tokens.len());
            for t in tokens {
                let id = match pool_map.entry(t) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let id = pool.len() as u32;
                        pool.push(e.key().clone());
                        e.insert(id);
                        id
                    }
                };
                token_ids.push(id);
            }
            sentence_ids.push(sentences.len());
            sentences.push(ExtractedSentence {
                text,
                tokens: token_ids,
                pair_indices,
                sentiment,
            });
        }
        reviews.push(sentence_ids);
    }

    ExtractedItem {
        pairs,
        sentences,
        reviews,
        tokens: pool,
    }
}

/// Incrementally extend a previous extraction of `item` after reviews
/// were **appended**: only `item.reviews[prev_reviews..]` are tokenized,
/// scored, and matched; their sentences, pairs, and pooled tokens are
/// merged onto `prev`.
///
/// Full extraction is a pure left-to-right fold over the review stream
/// (pair/sentence indices grow monotonically, the token pool is in
/// first-occurrence order), so extending a prefix extraction with the
/// suffix reviews is **byte-identical** to re-extracting the whole item —
/// under either [`ExtractImpl`], which are themselves byte-identical.
pub fn extract_append(
    extractor: &Extractor,
    prev: &ExtractedItem,
    item: &Item,
    prev_reviews: usize,
) -> ExtractedItem {
    assert_eq!(prev.reviews.len(), prev_reviews, "prev covers a prefix");
    assert!(item.reviews.len() >= prev_reviews, "reviews were appended");
    let model = SentimentModel::Lexicon(extractor.lexicon().clone());
    let matcher = extractor.matcher();
    let mut out = prev.clone();
    let mut pool_map: HashMap<String, u32> = out
        .tokens
        .iter()
        .enumerate()
        .map(|(i, t)| (t.clone(), i as u32))
        .collect();
    for review in &item.reviews[prev_reviews..] {
        let mut sentence_ids = Vec::new();
        for text in split_sentences(&review.text) {
            let tokens = tokenize(&text);
            let sentiment = model.score(&tokens);
            let mentions = matcher.find(&tokens);
            let mut pair_indices = Vec::with_capacity(mentions.len());
            for m in mentions {
                pair_indices.push(out.pairs.len());
                out.pairs.push(Pair::new(m.concept, sentiment));
            }
            let mut token_ids = Vec::with_capacity(tokens.len());
            for t in tokens {
                let id = match pool_map.entry(t) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let id = out.tokens.len() as u32;
                        out.tokens.push(e.key().clone());
                        e.insert(id);
                        id
                    }
                };
                token_ids.push(id);
            }
            sentence_ids.push(out.sentences.len());
            out.sentences.push(ExtractedSentence {
                text,
                tokens: token_ids,
                pair_indices,
                sentiment,
            });
        }
        out.reviews.push(sentence_ids);
    }
    out
}

/// Truncate an extraction back to its first `keep_reviews` reviews — the
/// inverse of [`extract_append`] for retracting trailing reviews.
///
/// Because extraction appends monotonically, the kept sentences and pairs
/// are exact prefixes, and the token pool's first-occurrence order means
/// every token first seen in a retracted review occupies a pool suffix —
/// so truncation is byte-identical to re-extracting the shortened item.
pub fn extract_truncate(prev: &ExtractedItem, keep_reviews: usize) -> ExtractedItem {
    assert!(
        keep_reviews <= prev.reviews.len(),
        "cannot keep more than exists"
    );
    let reviews: Vec<Vec<usize>> = prev.reviews[..keep_reviews].to_vec();
    let n_sentences = reviews
        .iter()
        .rev()
        .find_map(|s| s.last().map(|&si| si + 1))
        .unwrap_or(0);
    let sentences: Vec<ExtractedSentence> = prev.sentences[..n_sentences].to_vec();
    let n_pairs = sentences
        .iter()
        .rev()
        .find_map(|s| s.pair_indices.last().map(|&pi| pi + 1))
        .unwrap_or(0);
    let n_tokens = sentences
        .iter()
        .flat_map(|s| s.tokens.iter().copied())
        .max()
        .map_or(0, |id| id as usize + 1);
    ExtractedItem {
        pairs: prev.pairs[..n_pairs].to_vec(),
        sentences,
        reviews,
        tokens: prev.tokens[..n_tokens].to_vec(),
    }
}

/// Which extraction implementation to run. Both produce byte-identical
/// [`ExtractedItem`]s; `Naive` exists as the auditable oracle, mirroring
/// the graph builder's `--graph-impl indexed|naive` switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractImpl {
    /// Interned token IDs, Aho-Corasick concept automatons, memoized
    /// stemming and dense lexicon tables (the default).
    #[default]
    Interned,
    /// The original per-token `String` / trie-walk / HashMap pipeline.
    Naive,
}

impl ExtractImpl {
    /// Parse a CLI name (`"interned"` or `"naive"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "interned" => Some(ExtractImpl::Interned),
            "naive" => Some(ExtractImpl::Naive),
            _ => None,
        }
    }

    /// The CLI name of this implementation.
    pub fn name(self) -> &'static str {
        match self {
            ExtractImpl::Interned => "interned",
            ExtractImpl::Naive => "naive",
        }
    }
}

/// The extraction engine: owns the naive matcher/lexicon oracle and the
/// precompiled interned engine, built once per hierarchy and shared
/// read-only across workers.
#[derive(Debug, Clone)]
pub struct Extractor {
    matcher: ConceptMatcher,
    lexicon: SentimentLexicon,
    interned: InternedExtractor,
}

impl Extractor {
    /// Build both implementations from a hierarchy, with the default
    /// sentiment lexicon.
    pub fn from_hierarchy(h: &Hierarchy) -> Self {
        let lexicon = SentimentLexicon::default();
        Extractor {
            matcher: ConceptMatcher::from_hierarchy(h),
            interned: InternedExtractor::new(h, &lexicon),
            lexicon,
        }
    }

    /// The naive dictionary matcher.
    pub fn matcher(&self) -> &ConceptMatcher {
        &self.matcher
    }

    /// The sentiment lexicon both implementations score with.
    pub fn lexicon(&self) -> &SentimentLexicon {
        &self.lexicon
    }

    /// The precompiled interned engine.
    pub fn interned(&self) -> &InternedExtractor {
        &self.interned
    }

    /// Extract one item with the lexicon scorer, using the selected
    /// implementation. `scratch` is reused across calls (per worker).
    pub fn extract(
        &self,
        item: &Item,
        which: ExtractImpl,
        scratch: &mut ExtractScratch,
    ) -> ExtractedItem {
        match which {
            ExtractImpl::Interned => self.extract_interned(item, None, scratch),
            ExtractImpl::Naive => extract_item(item, &self.matcher, &self.lexicon),
        }
    }

    /// Extract one item with an explicit sentiment model.
    ///
    /// The interned path scores `SentimentModel::Lexicon` through its
    /// precompiled tables, which are built from this extractor's own
    /// (default) lexicon — the only lexicon constructible today.
    pub fn extract_with(
        &self,
        item: &Item,
        model: &SentimentModel,
        which: ExtractImpl,
        scratch: &mut ExtractScratch,
    ) -> ExtractedItem {
        match which {
            ExtractImpl::Interned => self.extract_interned(item, Some(model), scratch),
            ExtractImpl::Naive => extract_item_with(item, &self.matcher, model),
        }
    }

    fn extract_interned(
        &self,
        item: &Item,
        model: Option<&SentimentModel>,
        scratch: &mut ExtractScratch,
    ) -> ExtractedItem {
        let ie = &self.interned;
        scratch.begin_item();
        let mut pairs = Vec::new();
        let mut sentences = Vec::new();
        let mut reviews = Vec::with_capacity(item.reviews.len());
        let mut pool: Vec<String> = Vec::new();

        for review in &item.reviews {
            let mut sentence_ids = Vec::new();
            for text in split_sentences(&review.text) {
                ie.tokenize_sentence(&text, scratch);
                let sentiment = match model {
                    None | Some(SentimentModel::Lexicon(_)) => ie.score(scratch),
                    Some(SentimentModel::Regressor(r)) => {
                        let s = &*scratch;
                        r.predict_with(s.num_tokens(), |i| ie.token_str(s, s.token_id(i)))
                    }
                };
                ie.find(scratch);
                let mut pair_indices = Vec::with_capacity(scratch.mentions().len());
                for m in scratch.mentions() {
                    pair_indices.push(pairs.len());
                    pairs.push(Pair::new(m.concept, sentiment));
                }
                let token_ids = ie.item_token_ids(scratch, &mut pool);
                sentence_ids.push(sentences.len());
                sentences.push(ExtractedSentence {
                    text,
                    tokens: token_ids,
                    pair_indices,
                    sentiment,
                });
            }
            reviews.push(sentence_ids);
        }
        scratch.finish_item();

        ExtractedItem {
            pairs,
            sentences,
            reviews,
            tokens: pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corpus, CorpusConfig};

    fn small() -> CorpusConfig {
        CorpusConfig {
            items: 2,
            min_reviews: 4,
            max_reviews: 8,
            mean_reviews: 6.0,
            mean_sentences: 4.0,
            aspect_sentence_prob: 0.85,
        }
    }

    #[test]
    fn extraction_recovers_planted_concepts() {
        let c = Corpus::phones(&small(), 21);
        let matcher = ConceptMatcher::from_hierarchy(&c.hierarchy);
        let lexicon = SentimentLexicon::default();
        let item = &c.items[0];
        let ex = extract_item(item, &matcher, &lexicon);

        let planted: usize = item.reviews.iter().map(|r| r.planted.len()).sum();
        assert!(planted > 0);
        // Recall: at least 80% of planted mentions are re-extracted (the
        // matcher is longest-match; templates embed exact surface terms).
        assert!(
            ex.pairs.len() as f64 >= 0.8 * planted as f64,
            "extracted {} of {planted}",
            ex.pairs.len()
        );
    }

    #[test]
    fn extracted_sentiments_correlate_with_planted() {
        let c = Corpus::phones(&small(), 22);
        let matcher = ConceptMatcher::from_hierarchy(&c.hierarchy);
        let lexicon = SentimentLexicon::default();
        // Compare per-concept mean planted vs extracted sentiment signs.
        let item = &c.items[0];
        let ex = extract_item(item, &matcher, &lexicon);
        let planted_mean: f64 = item
            .reviews
            .iter()
            .flat_map(|r| r.planted.iter().map(|p| p.sentiment))
            .sum::<f64>()
            / item
                .reviews
                .iter()
                .map(|r| r.planted.len())
                .sum::<usize>()
                .max(1) as f64;
        let extracted_mean: f64 =
            ex.pairs.iter().map(|p| p.sentiment).sum::<f64>() / ex.pairs.len().max(1) as f64;
        assert!(
            (planted_mean - extracted_mean).abs() < 0.35,
            "planted {planted_mean} vs extracted {extracted_mean}"
        );
    }

    #[test]
    fn groups_partition_pairs() {
        let c = Corpus::doctors(&small(), 23);
        let matcher = ConceptMatcher::from_hierarchy(&c.hierarchy);
        let lexicon = SentimentLexicon::default();
        let ex = extract_item(&c.items[0], &matcher, &lexicon);

        let mut seen = vec![false; ex.pairs.len()];
        for g in ex.sentence_groups() {
            for pi in g {
                assert!(!seen[pi], "pair in two sentences");
                seen[pi] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every pair belongs to a sentence");

        // Review groups cover the same pairs.
        let total: usize = ex.review_groups().iter().map(Vec::len).sum();
        assert_eq!(total, ex.pairs.len());
        assert_eq!(ex.reviews.len(), c.items[0].reviews.len());
    }

    #[test]
    fn regressor_path_recovers_polarity() {
        let cfg = CorpusConfig {
            items: 4,
            min_reviews: 10,
            max_reviews: 20,
            mean_reviews: 14.0,
            mean_sentences: 4.0,
            aspect_sentence_prob: 0.85,
        };
        let c = Corpus::phones(&cfg, 41);
        let reg = train_regressor(&c, 256, 1.0);
        let matcher = ConceptMatcher::from_hierarchy(&c.hierarchy);
        let model = SentimentModel::Regressor(reg);
        let ex = extract_item_with(&c.items[0], &matcher, &model);
        assert!(!ex.pairs.is_empty());
        // The learned scores should correlate in sign with the planted
        // item means: compare corpus-level means.
        let planted_mean: f64 = c.items[0]
            .reviews
            .iter()
            .flat_map(|r| r.planted.iter().map(|p| p.sentiment))
            .sum::<f64>()
            / c.items[0]
                .reviews
                .iter()
                .map(|r| r.planted.len())
                .sum::<usize>()
                .max(1) as f64;
        let got_mean: f64 =
            ex.pairs.iter().map(|p| p.sentiment).sum::<f64>() / ex.pairs.len() as f64;
        assert_eq!(
            planted_mean > 0.0,
            got_mean > 0.0,
            "{planted_mean} vs {got_mean}"
        );
    }

    #[test]
    fn interned_extraction_matches_the_naive_oracle() {
        let c = Corpus::phones(&small(), 33);
        let d = Corpus::doctors(&small(), 34);
        for corpus in [&c, &d] {
            let ex = Extractor::from_hierarchy(&corpus.hierarchy);
            let mut scratch = ExtractScratch::default();
            for item in &corpus.items {
                let fast = ex.extract(item, ExtractImpl::Interned, &mut scratch);
                let slow = ex.extract(item, ExtractImpl::Naive, &mut scratch);
                assert_eq!(fast, slow, "item {}", item.name);
                for (a, b) in fast.sentences.iter().zip(&slow.sentences) {
                    assert_eq!(a.sentiment.to_bits(), b.sentiment.to_bits());
                }
            }
        }
    }

    #[test]
    fn interned_regressor_extraction_matches_the_naive_oracle() {
        let c = Corpus::phones(&small(), 35);
        let model = SentimentModel::Regressor(train_regressor(&c, 64, 1.0));
        let ex = Extractor::from_hierarchy(&c.hierarchy);
        let mut scratch = ExtractScratch::default();
        for item in &c.items {
            let fast = ex.extract_with(item, &model, ExtractImpl::Interned, &mut scratch);
            let slow = ex.extract_with(item, &model, ExtractImpl::Naive, &mut scratch);
            assert_eq!(fast, slow, "item {}", item.name);
            for (a, b) in fast.sentences.iter().zip(&slow.sentences) {
                assert_eq!(a.sentiment.to_bits(), b.sentiment.to_bits());
            }
        }
    }

    #[test]
    fn appending_reviews_matches_full_reextraction() {
        let c = Corpus::phones(&small(), 44);
        let d = Corpus::doctors(&small(), 45);
        for corpus in [&c, &d] {
            let ex = Extractor::from_hierarchy(&corpus.hierarchy);
            let mut scratch = ExtractScratch::default();
            for item in &corpus.items {
                for keep in 0..item.reviews.len() {
                    let mut prefix = item.clone();
                    prefix.reviews.truncate(keep);
                    let prev = ex.extract(&prefix, ExtractImpl::Interned, &mut scratch);
                    let grown = extract_append(&ex, &prev, item, keep);
                    for which in [ExtractImpl::Interned, ExtractImpl::Naive] {
                        let full = ex.extract(item, which, &mut scratch);
                        assert_eq!(grown, full, "item {} keep {keep}", item.name);
                        for (a, b) in grown.sentences.iter().zip(&full.sentences) {
                            assert_eq!(a.sentiment.to_bits(), b.sentiment.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn truncating_reviews_matches_full_reextraction() {
        let c = Corpus::phones(&small(), 46);
        let ex = Extractor::from_hierarchy(&c.hierarchy);
        let mut scratch = ExtractScratch::default();
        for item in &c.items {
            let full = ex.extract(item, ExtractImpl::Interned, &mut scratch);
            for keep in 0..=item.reviews.len() {
                let mut prefix = item.clone();
                prefix.reviews.truncate(keep);
                let expect = ex.extract(&prefix, ExtractImpl::Interned, &mut scratch);
                let got = extract_truncate(&full, keep);
                assert_eq!(got, expect, "item {} keep {keep}", item.name);
                for (a, b) in got.sentences.iter().zip(&expect.sentences) {
                    assert_eq!(a.sentiment.to_bits(), b.sentiment.to_bits());
                }
            }
        }
    }

    #[test]
    fn sentence_tokens_round_trip_through_the_pool() {
        let c = Corpus::phones(&small(), 36);
        let ex = Extractor::from_hierarchy(&c.hierarchy);
        let mut scratch = ExtractScratch::default();
        let item = &c.items[0];
        let got = ex.extract(item, ExtractImpl::Interned, &mut scratch);
        for (si, s) in got.sentences.iter().enumerate() {
            assert_eq!(got.sentence_tokens(si), osa_text::tokenize(&s.text));
        }
    }

    #[test]
    fn lexicon_and_regressor_models_share_the_interface() {
        let lex = SentimentModel::Lexicon(SentimentLexicon::default());
        let toks = osa_text::tokenize("the screen is great");
        assert!(lex.score(&toks) > 0.0);
    }

    #[test]
    fn sentence_sentiment_is_assigned_to_all_its_pairs() {
        let c = Corpus::phones(&small(), 24);
        let matcher = ConceptMatcher::from_hierarchy(&c.hierarchy);
        let lexicon = SentimentLexicon::default();
        let ex = extract_item(&c.items[0], &matcher, &lexicon);
        for s in &ex.sentences {
            for &pi in &s.pair_indices {
                assert_eq!(ex.pairs[pi].sentiment, s.sentiment);
            }
        }
    }
}
