//! # osa-serve — the long-lived summarization daemon
//!
//! The ROADMAP's production target: load a corpus **once** (interned
//! vocabulary, concept automaton, warmed `AncestorIndex`), then answer
//! summary queries over plain HTTP/1.1 on `std::net` — no external
//! dependencies, thread-per-connection, `osa-json` bodies.
//!
//! ## Endpoints
//!
//! * `GET /summary/{item}?k=..&eps=..&algo=..&granularity=..&graph-impl=..&extract-impl=..`
//!   — summarize one item. The JSON body's `"text"` field is
//!   byte-identical to the item's block in `osars summarize --item all`
//!   output for the same parameters (pinned by the differential tests).
//! * `POST /reviews` — `{"item": N, "reviews": ["...", {"text": "..."}]}`
//!   ingests new reviews and bumps the corpus epoch.
//! * `GET /metrics` — the global `osa-obs` registry in Prometheus-style
//!   text exposition.
//! * `GET /healthz` — liveness plus the current epoch.
//! * `GET /debug/traces` — recent flight-recorder trace summaries
//!   (newest first, `?n=` limits the count).
//! * `GET /debug/traces/{id}` — one retained trace's full span tree;
//!   `?format=chrome` exports Chrome `trace_event` JSON instead.
//!
//! ## Tracing
//!
//! Every `/summary/{item}` request carries a request-scoped
//! [`osa_obs::Trace`]: the connection thread opens the `serve.request`
//! root span, the worker records its queue wait and threads the trace
//! through the summarization pipeline (`extract` → `graph.build` →
//! `solve.*` become child spans with their counters attached). Completed
//! traces go to the [`FlightRecorder`] under **tail sampling** — errors
//! and slow requests are always retained, healthy traffic is sampled —
//! and successful responses echo the per-stage durations in a
//! `Server-Timing` header whose totals agree exactly with the stored
//! trace (both are computed from the same span tree).
//!
//! ## Failure containment
//!
//! Requests run on a fixed worker pool behind a **bounded admission
//! queue**: overflow is refused immediately with 503 (backpressure, not
//! collapse), a request older than the configured deadline answers 504
//! without doing the work, and the actual summarization executes under
//! [`std::panic::catch_unwind`] with the per-worker scratch replaced
//! after a panic — one poisoned request answers 500 while the daemon
//! keeps serving (the PR 5 isolation contract, now load-bearing).
//!
//! ## Caching
//!
//! Summaries are cached in an [`lru::LruCache`] keyed by
//! `(item, k, eps, algorithm, granularity, graph impl, extract impl,
//! corpus epoch)`. The epoch is part of the key, so a `POST /reviews`
//! bump makes every older entry unreachable *by construction* — stale
//! summaries cannot be served, they age out of the LRU tail.

pub mod http;
mod loadgen;
pub mod lru;
pub mod recorder;

pub use loadgen::{run_loadgen, LoadgenOptions, LoadgenReport};
pub use recorder::{CompletedTrace, FlightRecorder, KeepReason};

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use http::{read_request, write_response, ParseError, Request};
use lru::LruCache;
use osa_core::{Granularity, GraphImpl};
use osa_datasets::{Corpus, ExtractImpl, Extractor, Review};
use osa_obs::{Trace, TraceTree};
use osa_runtime::{
    effective_jobs, render_item_summary, summarize_one_traced, BatchAlgorithm, BatchOptions, Fault,
    ItemSummary, WorkerScratch,
};

/// Configuration of [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker pool size (`0` = all available cores).
    pub workers: usize,
    /// Bounded admission queue depth; a request arriving while the queue
    /// holds this many waiting jobs is refused with 503.
    pub queue_depth: usize,
    /// Per-request deadline in milliseconds, measured from admission; a
    /// job whose turn comes after the deadline answers 504 without
    /// doing the work. `0` disables deadlines.
    pub deadline_ms: u64,
    /// LRU summary-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Pre-compute every item's summary for the default parameters at
    /// startup, so the cache is hot before the first request.
    pub warm: bool,
    /// Flight-recorder slow threshold in milliseconds: a request whose
    /// root span lasts at least this long is always retained. `0`
    /// disables the slow rule (errors are still always kept).
    pub slow_ms: u64,
    /// Default summarization parameters; `GET /summary` query parameters
    /// override `k`/`eps`/`algorithm`/`granularity`/`graph_impl`/
    /// `extract_impl` per request. `jobs`, `fault_plan` and `retries`
    /// are ignored by the daemon.
    pub defaults: BatchOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            queue_depth: 128,
            deadline_ms: 10_000,
            cache_capacity: 4096,
            warm: false,
            slow_ms: 500,
            defaults: BatchOptions::default(),
        }
    }
}

/// One immutable corpus snapshot. `POST /reviews` builds a new state and
/// swaps the shared `Arc`, so in-flight requests keep the snapshot they
/// started with and never observe a half-updated corpus.
struct EpochState {
    corpus: Corpus,
    extractor: Extractor,
    epoch: u64,
}

impl EpochState {
    fn new(corpus: Corpus, extractor: Extractor, epoch: u64) -> Self {
        // Warm the ancestor closure before the state becomes visible, so
        // no request pays the one-off index build.
        let _ = corpus.hierarchy.ancestor_index();
        EpochState {
            corpus,
            extractor,
            epoch,
        }
    }
}

/// Cache key: every parameter that affects the response body, including
/// the corpus epoch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    epoch: u64,
    item: usize,
    k: usize,
    eps_bits: u64,
    algo: &'static str,
    granularity: u8,
    graph: u8,
    extract: u8,
}

fn cache_key(p: &SummaryParams, epoch: u64) -> CacheKey {
    CacheKey {
        epoch,
        item: p.item,
        k: p.opts.k,
        eps_bits: p.opts.eps.to_bits(),
        algo: p.opts.algorithm.name(),
        granularity: p.opts.granularity as u8,
        graph: p.opts.graph_impl as u8,
        extract: p.opts.extract_impl as u8,
    }
}

/// Test/benchmark fault injection requested via the `inject` query
/// parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inject {
    None,
    /// Panic inside the worker (exercises the 500 isolation path).
    Panic,
    /// Sleep before computing (exercises queue backpressure/deadlines).
    DelayMs(u64),
}

/// A validated `GET /summary` request.
#[derive(Debug, Clone)]
struct SummaryParams {
    item: usize,
    opts: BatchOptions,
    inject: Inject,
}

/// A request the connection thread could not turn into work.
#[derive(Debug)]
struct HttpError {
    status: u16,
    message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

struct SummaryOk {
    body: String,
    key: CacheKey,
}

type WorkerReply = Result<SummaryOk, HttpError>;

struct Job {
    params: SummaryParams,
    admitted: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<WorkerReply>,
    /// The request's trace; the connection thread holds the root span
    /// open while the worker adds child spans, and the two never run
    /// concurrently (the connection blocks on the reply channel), so the
    /// open-span stack stays well-nested.
    trace: Arc<Trace>,
}

struct Shared {
    state: RwLock<Arc<EpochState>>,
    cache: Mutex<LruCache<CacheKey, String>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    opts: ServeOptions,
    shutdown: AtomicBool,
    /// Open sockets, for the `serve.connections` gauge.
    connections: AtomicU64,
    /// Completed-trace ring with tail sampling.
    recorder: FlightRecorder,
    /// Monotonic trace-id source (one id per `/summary` request).
    trace_seq: AtomicU64,
    /// Workers currently inside `compute`, for the background sampler.
    workers_busy: AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> Arc<EpochState> {
        self.state.read().expect("state lock").clone()
    }
}

/// A running daemon. Keep the handle alive for as long as the server
/// should accept connections; [`shutdown`](Self::shutdown) stops it and
/// joins every pool thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current corpus epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.snapshot().epoch
    }

    /// Stop accepting, drain the queue, and join every pool thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.sampler.take() {
            let _ = t.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        // Wake the blocking accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort: initiate shutdown but do not join (joining in
        // drop could deadlock if dropped from a pool thread).
        self.begin_shutdown();
    }
}

/// Start the daemon on `addr` (e.g. `127.0.0.1:7878`; port 0 binds an
/// ephemeral port — read it back from [`ServerHandle::addr`]).
///
/// Enables the global `osa-obs` registry so `GET /metrics` has data.
pub fn serve(corpus: Corpus, addr: &str, opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    osa_obs::global().set_enabled(true);

    let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
    let state = Arc::new(EpochState::new(corpus, extractor, 0));
    let workers = effective_jobs(opts.workers);
    let mut cache = LruCache::new(opts.cache_capacity);
    if opts.warm && opts.cache_capacity > 0 {
        warm_cache(&state, &opts, workers, &mut cache);
    }
    // Fixed recorder seed: the retained healthy-traffic sample is a
    // deterministic function of the request sequence, which keeps the
    // smoke tests reproducible.
    let recorder = FlightRecorder::new(
        recorder::DEFAULT_CAPACITY,
        opts.slow_ms.saturating_mul(1000),
        0xA11CE,
    );
    let shared = Arc::new(Shared {
        state: RwLock::new(state),
        cache: Mutex::new(cache),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        opts,
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        recorder,
        trace_seq: AtomicU64::new(0),
        workers_busy: AtomicU64::new(0),
    });

    let worker_handles: Vec<_> = (0..workers)
        .map(|_| {
            let shared = shared.clone();
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    // Background sampler: periodically publish queue depth and busy
    // workers as gauges, so `/metrics` shows saturation even when no
    // request happens to be scraping-adjacent.
    let sampler_shared = shared.clone();
    let sampler = std::thread::spawn(move || {
        let obs = osa_obs::global();
        while !sampler_shared.shutdown.load(Ordering::SeqCst) {
            let depth = sampler_shared
                .queue
                .lock()
                .map(|q| q.len())
                .unwrap_or_default();
            obs.set_gauge("serve.queue_depth", depth as i64);
            obs.set_gauge(
                "serve.workers_busy",
                sampler_shared.workers_busy.load(Ordering::Relaxed) as i64,
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    });

    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_shared = accept_shared.clone();
            // Thread-per-connection: each socket gets its own detached
            // thread; the worker pool (not the connection count) bounds
            // concurrent compute.
            std::thread::spawn(move || {
                conn_shared.connections.fetch_add(1, Ordering::Relaxed);
                handle_connection(stream, &conn_shared);
                conn_shared.connections.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });

    Ok(ServerHandle {
        addr: bound,
        shared,
        accept: Some(accept),
        workers: worker_handles,
        sampler: Some(sampler),
    })
}

/// Pre-fill the cache with every item's default-parameter summary (one
/// parallel batch over the loaded corpus).
fn warm_cache(
    state: &EpochState,
    opts: &ServeOptions,
    workers: usize,
    cache: &mut LruCache<CacheKey, String>,
) {
    let mut batch_opts = opts.defaults.clone();
    batch_opts.jobs = workers;
    batch_opts.fault_plan = None;
    let report = osa_runtime::summarize_corpus(&state.corpus, &batch_opts);
    let params = SummaryParams {
        item: 0,
        opts: batch_opts,
        inject: Inject::None,
    };
    for summary in &report.results {
        let mut p = params.clone();
        p.item = summary.item;
        let key = cache_key(&p, state.epoch);
        cache.insert(key, summary_body(summary, &p, state.epoch));
    }
}

/// Install a process-wide panic hook that silences panics whose payload
/// marks them as injected (`inject=panic` requests, fault-plan panics) —
/// the daemon answers 500 for those by design, and a backtrace per
/// poisoned request would drown the log. All other panics still print.
pub fn quiet_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_injected = |m: &str| m.contains("injected") || m.contains("NaN sentiments");
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| is_injected(m))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| is_injected(m));
            if !injected {
                prev(info);
            }
        }));
    });
}

// --- worker pool -----------------------------------------------------------

fn worker_loop(shared: &Shared) {
    let obs = osa_obs::global();
    let mut scratch = WorkerScratch::new();
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue condvar");
            }
        };
        let picked_up = Instant::now();
        obs.observe(
            "serve.queue.wait.us",
            picked_up.duration_since(job.admitted).as_secs_f64() * 1e6,
        );
        job.trace
            .record_span_between("serve.queue.wait", job.admitted, picked_up);
        if job.deadline.is_some_and(|d| picked_up > d) {
            obs.add("serve.deadline.expired", 1);
            let _ = job.reply.send(Err(HttpError::new(
                504,
                "deadline exceeded before the request was scheduled",
            )));
            continue;
        }
        shared.workers_busy.fetch_add(1, Ordering::Relaxed);
        let reply = compute(shared, &job.params, &mut scratch, Some(&job.trace));
        shared.workers_busy.fetch_sub(1, Ordering::Relaxed);
        let _ = job.reply.send(reply);
    }
}

/// Compute one summary under panic isolation. A panic — injected or
/// genuine — answers 500 and replaces the worker's scratch; the worker
/// thread itself never dies.
fn compute(
    shared: &Shared,
    params: &SummaryParams,
    scratch: &mut WorkerScratch,
    trace: Option<&Trace>,
) -> WorkerReply {
    let obs = osa_obs::global();
    let state = shared.snapshot();
    if params.item >= state.corpus.items.len() {
        return Err(HttpError::new(
            404,
            format!(
                "item {} out of range (corpus has {} items)",
                params.item,
                state.corpus.items.len()
            ),
        ));
    }
    if let Inject::DelayMs(ms) = params.inject {
        let delay_start = Instant::now();
        std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        if let Some(t) = trace {
            t.record_span_between("serve.inject.delay", delay_start, Instant::now());
        }
    }
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if params.inject == Inject::Panic {
            panic!("injected panic (serve, item {})", params.item);
        }
        summarize_one_traced(
            &state.corpus,
            &state.extractor,
            &params.opts,
            scratch,
            params.item,
            Fault::None,
            trace,
        )
    }));
    match caught {
        Ok(Some(summary)) => Ok(SummaryOk {
            body: summary_body(&summary, params, state.epoch),
            key: cache_key(params, state.epoch),
        }),
        Ok(None) => Err(HttpError::new(404, "item out of range")),
        Err(payload) => {
            // The panic may have left the scratch mid-update; replace it
            // before the next request reuses this worker.
            *scratch = WorkerScratch::new();
            obs.add("serve.panics", 1);
            Err(HttpError::new(
                500,
                format!("summarization panicked: {}", panic_text(payload.as_ref())),
            ))
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// The `GET /summary` response body. The `"text"` field is the exact
/// CLI rendering ([`render_item_summary`]), which the differential tests
/// byte-compare against `osars summarize` stdout.
fn summary_body(summary: &ItemSummary, params: &SummaryParams, epoch: u64) -> String {
    use osa_json::Value;
    let params_obj = Value::Object(vec![
        ("k".to_owned(), Value::Number(params.opts.k as f64)),
        ("eps".to_owned(), Value::Number(params.opts.eps)),
        (
            "algo".to_owned(),
            Value::String(params.opts.algorithm.name().to_owned()),
        ),
        (
            "granularity".to_owned(),
            Value::String(granularity_name(params.opts.granularity).to_owned()),
        ),
        (
            "graph-impl".to_owned(),
            Value::String(params.opts.graph_impl.name().to_owned()),
        ),
        (
            "extract-impl".to_owned(),
            Value::String(params.opts.extract_impl.name().to_owned()),
        ),
    ]);
    let obj = Value::Object(vec![
        ("item".to_owned(), Value::Number(summary.item as f64)),
        ("name".to_owned(), Value::String(summary.name.clone())),
        ("epoch".to_owned(), Value::Number(epoch as f64)),
        ("params".to_owned(), params_obj),
        (
            "cost".to_owned(),
            Value::Number(summary.summary.cost as f64),
        ),
        (
            "root_cost".to_owned(),
            Value::Number(summary.root_cost as f64),
        ),
        (
            "candidates".to_owned(),
            Value::Number(summary.num_candidates as f64),
        ),
        ("pairs".to_owned(), Value::Number(summary.num_pairs as f64)),
        (
            "selected".to_owned(),
            Value::Array(
                summary
                    .summary
                    .selected
                    .iter()
                    .map(|&s| Value::Number(s as f64))
                    .collect(),
            ),
        ),
        (
            "lines".to_owned(),
            Value::Array(
                summary
                    .rendered
                    .iter()
                    .map(|l| Value::String(l.clone()))
                    .collect(),
            ),
        ),
        (
            "text".to_owned(),
            Value::String(render_item_summary(summary)),
        ),
    ]);
    osa_json::to_string(&obj)
}

fn granularity_name(g: Granularity) -> &'static str {
    match g {
        Granularity::Pairs => "pairs",
        Granularity::Sentences => "sentences",
        Granularity::Reviews => "reviews",
    }
}

// --- connection handling ---------------------------------------------------

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Bound idle keep-alive reads so connection threads cannot pile up
    // forever after clients vanish without closing. Disable Nagle: each
    // response is a single complete write, so there is nothing for the
    // kernel to usefully coalesce — only latency to add.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(ParseError::Malformed(what)) => {
                let _ = respond_error(
                    &mut writer,
                    400,
                    &format!("malformed request: {what}"),
                    true,
                );
                break;
            }
            Err(ParseError::TooLarge(what)) => {
                let _ = respond_error(
                    &mut writer,
                    413,
                    &format!("request too large: {what}"),
                    true,
                );
                break;
            }
            Err(ParseError::Io(_)) => break,
        };
        let close = req.wants_close();
        let start = Instant::now();
        let obs = osa_obs::global();
        obs.add("serve.requests", 1);
        let (status, served) = route(&req, shared, &mut writer, close);
        obs.add(&format!("serve.responses.{status}"), 1);
        obs.observe("serve.request.us", start.elapsed().as_secs_f64() * 1e6);
        if close || !served {
            break;
        }
    }
}

/// Dispatch one request; returns `(status, connection still usable)`.
fn route(req: &Request, shared: &Shared, w: &mut TcpStream, close: bool) -> (u16, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond_healthz(shared, w, close),
        ("GET", "/metrics") => {
            let text = osa_obs::global().snapshot().render_prometheus();
            let ok = write_response(
                w,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                &[],
                close,
            )
            .is_ok();
            (200, ok)
        }
        ("GET", path) if path.starts_with("/summary/") => respond_summary(req, shared, w, close),
        ("GET", "/debug/traces") => respond_traces_list(req, shared, w, close),
        ("GET", path) if path.starts_with("/debug/traces/") => {
            respond_trace_detail(req, shared, w, close)
        }
        ("POST", "/reviews") => respond_ingest(req, shared, w, close),
        (_, "/healthz" | "/metrics" | "/reviews" | "/debug/traces") => {
            let ok = respond_error(w, 405, "method not allowed", close).is_ok();
            (405, ok)
        }
        (_, path) if path.starts_with("/summary/") || path.starts_with("/debug/traces/") => {
            let ok = respond_error(w, 405, "method not allowed", close).is_ok();
            (405, ok)
        }
        _ => {
            let ok = respond_error(w, 404, "no such endpoint", close).is_ok();
            (404, ok)
        }
    }
}

fn respond_error(
    w: &mut impl Write,
    status: u16,
    message: &str,
    close: bool,
) -> std::io::Result<()> {
    use osa_json::Value;
    let obj = Value::Object(vec![
        ("error".to_owned(), Value::String(message.to_owned())),
        ("status".to_owned(), Value::Number(status as f64)),
    ]);
    write_response(
        w,
        status,
        "application/json",
        osa_json::to_string(&obj).as_bytes(),
        &[],
        close,
    )
}

fn respond_healthz(shared: &Shared, w: &mut TcpStream, close: bool) -> (u16, bool) {
    use osa_json::Value;
    let state = shared.snapshot();
    let obj = Value::Object(vec![
        ("ok".to_owned(), Value::Bool(true)),
        ("epoch".to_owned(), Value::Number(state.epoch as f64)),
        (
            "items".to_owned(),
            Value::Number(state.corpus.items.len() as f64),
        ),
        (
            "corpus".to_owned(),
            Value::String(state.corpus.name.clone()),
        ),
        (
            "workers".to_owned(),
            Value::Number(effective_jobs(shared.opts.workers) as f64),
        ),
    ]);
    let ok = write_response(
        w,
        200,
        "application/json",
        osa_json::to_string(&obj).as_bytes(),
        &[],
        close,
    )
    .is_ok();
    (200, ok)
}

/// Parse and validate `GET /summary/{item}` query parameters against the
/// daemon defaults.
fn parse_summary_params(
    req: &Request,
    defaults: &BatchOptions,
) -> Result<SummaryParams, HttpError> {
    let item_str = req
        .path
        .strip_prefix("/summary/")
        .expect("routed by prefix");
    let item: usize = item_str
        .parse()
        .map_err(|_| HttpError::new(400, format!("bad item index '{item_str}'")))?;
    let mut opts = defaults.clone();
    opts.jobs = 1;
    opts.fault_plan = None;
    if let Some(k) = req.query_param("k") {
        opts.k = k
            .parse()
            .map_err(|_| HttpError::new(400, format!("bad k '{k}'")))?;
    }
    if let Some(eps) = req.query_param("eps") {
        let parsed: f64 = eps
            .parse()
            .map_err(|_| HttpError::new(400, format!("bad eps '{eps}'")))?;
        if !parsed.is_finite() || parsed < 0.0 {
            return Err(HttpError::new(
                400,
                format!("eps must be finite and non-negative, got '{eps}'"),
            ));
        }
        opts.eps = parsed;
    }
    if let Some(algo) = req.query_param("algo") {
        opts.algorithm = BatchAlgorithm::from_name(algo)
            .ok_or_else(|| HttpError::new(400, format!("unknown algorithm '{algo}'")))?;
    }
    if let Some(g) = req.query_param("granularity") {
        opts.granularity = match g {
            "pairs" => Granularity::Pairs,
            "sentences" => Granularity::Sentences,
            "reviews" => Granularity::Reviews,
            other => {
                return Err(HttpError::new(
                    400,
                    format!("unknown granularity '{other}'"),
                ))
            }
        };
    }
    if let Some(gi) = req.query_param("graph-impl") {
        opts.graph_impl = GraphImpl::from_name(gi)
            .ok_or_else(|| HttpError::new(400, format!("unknown graph impl '{gi}'")))?;
    }
    if let Some(ei) = req.query_param("extract-impl") {
        opts.extract_impl = ExtractImpl::from_name(ei)
            .ok_or_else(|| HttpError::new(400, format!("unknown extract impl '{ei}'")))?;
    }
    let inject = match req.query_param("inject") {
        None => Inject::None,
        Some("panic") => Inject::Panic,
        Some(spec) if spec.starts_with("delay:") => {
            let ms = spec["delay:".len()..]
                .parse()
                .map_err(|_| HttpError::new(400, format!("bad inject spec '{spec}'")))?;
            Inject::DelayMs(ms)
        }
        Some(other) => return Err(HttpError::new(400, format!("unknown inject '{other}'"))),
    };
    Ok(SummaryParams { item, opts, inject })
}

/// The `Server-Timing` header value for a finished request: the root
/// total plus one entry per direct child stage, all in milliseconds.
/// Computed from the same span tree the flight recorder stores, so the
/// header and `/debug/traces/{id}` agree exactly.
fn server_timing_value(tree: &TraceTree) -> String {
    let ms = |us: u64| us as f64 / 1000.0;
    let mut parts = vec![format!("total;dur={:.3}", ms(tree.total_us()))];
    for (name, us) in tree.stage_totals() {
        parts.push(format!("{name};dur={:.3}", ms(us)));
    }
    parts.join(", ")
}

/// Close out a request trace: offer it to the flight recorder and count
/// the outcome. Call after the root span guard has been dropped.
fn finish_trace(shared: &Shared, trace: &Trace, path: String, status: u16, tree: TraceTree) {
    let obs = osa_obs::global();
    obs.add("serve.traces.offered", 1);
    let total_us = tree.total_us();
    if let Some(reason) = shared
        .recorder
        .offer(trace.id(), path, status, total_us, tree)
    {
        obs.add(&format!("serve.traces.kept.{}", reason.name()), 1);
    }
}

/// The request path plus query string, as stored in trace summaries.
fn display_target(req: &Request) -> String {
    if req.query.is_empty() {
        return req.path.clone();
    }
    let q: Vec<String> = req
        .query
        .iter()
        .map(|(k, v)| {
            if v.is_empty() {
                k.clone()
            } else {
                format!("{k}={v}")
            }
        })
        .collect();
    format!("{}?{}", req.path, q.join("&"))
}

fn respond_summary(req: &Request, shared: &Shared, w: &mut TcpStream, close: bool) -> (u16, bool) {
    let obs = osa_obs::global();
    let params = match parse_summary_params(req, &shared.opts.defaults) {
        Ok(p) => p,
        Err(e) => {
            let ok = respond_error(w, e.status, &e.message, close).is_ok();
            return (e.status, ok);
        }
    };

    // Every valid summary request is traced; the root span covers
    // everything from admission to the reply being ready.
    let trace = Arc::new(Trace::new(shared.trace_seq.fetch_add(1, Ordering::Relaxed)));
    let target = display_target(req);
    let root = trace.span("serve.request");

    // Cache lookup against the *current* epoch. Injected requests bypass
    // the cache entirely: a panic has no body and a delay must actually
    // delay.
    let cacheable = params.inject == Inject::None && shared.opts.cache_capacity > 0;
    if cacheable {
        let epoch = shared.snapshot().epoch;
        let key = cache_key(&params, epoch);
        let hit = shared.cache.lock().expect("cache lock").get(&key).cloned();
        if let Some(body) = hit {
            obs.add("serve.cache.hits", 1);
            trace.count("cache.hits", 1);
            drop(root);
            let tree = trace.tree();
            let timing = server_timing_value(&tree);
            let ok = write_response(
                w,
                200,
                "application/json",
                body.as_bytes(),
                &[("X-Osars-Cache", "hit"), ("Server-Timing", &timing)],
                close,
            )
            .is_ok();
            finish_trace(shared, &trace, target, 200, tree);
            return (200, ok);
        }
        obs.add("serve.cache.misses", 1);
    }

    // Admission: refuse instead of queueing unboundedly.
    let (tx, rx) = mpsc::channel();
    let deadline = (shared.opts.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(shared.opts.deadline_ms));
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.opts.queue_depth {
            drop(queue);
            obs.add("serve.queue.rejected", 1);
            drop(root);
            let ok = respond_error(w, 503, "admission queue full, retry later", close).is_ok();
            finish_trace(shared, &trace, target, 503, trace.tree());
            return (503, ok);
        }
        queue.push_back(Job {
            params: params.clone(),
            admitted: Instant::now(),
            deadline,
            reply: tx,
            trace: trace.clone(),
        });
    }
    shared.queue_cv.notify_one();

    match rx.recv() {
        Ok(Ok(done)) => {
            if cacheable {
                shared
                    .cache
                    .lock()
                    .expect("cache lock")
                    .insert(done.key, done.body.clone());
            }
            drop(root);
            let tree = trace.tree();
            let timing = server_timing_value(&tree);
            let ok = write_response(
                w,
                200,
                "application/json",
                done.body.as_bytes(),
                &[("X-Osars-Cache", "miss"), ("Server-Timing", &timing)],
                close,
            )
            .is_ok();
            finish_trace(shared, &trace, target, 200, tree);
            (200, ok)
        }
        Ok(Err(e)) => {
            drop(root);
            let ok = respond_error(w, e.status, &e.message, close).is_ok();
            finish_trace(shared, &trace, target, e.status, trace.tree());
            (e.status, ok)
        }
        // Worker pool gone (shutdown mid-request).
        Err(_) => {
            drop(root);
            let ok = respond_error(w, 503, "server shutting down", close).is_ok();
            finish_trace(shared, &trace, target, 503, trace.tree());
            (503, ok)
        }
    }
}

// --- debug endpoints -------------------------------------------------------

/// `GET /debug/traces` — newest-first summaries of the retained traces.
fn respond_traces_list(
    req: &Request,
    shared: &Shared,
    w: &mut TcpStream,
    close: bool,
) -> (u16, bool) {
    use osa_json::Value;
    let n = req
        .query_param("n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50usize);
    let recent = shared.recorder.recent(n);
    let (offered, kept) = shared.recorder.stats();
    let traces: Vec<Value> = recent
        .iter()
        .map(|t| {
            Value::Object(vec![
                ("id".to_owned(), Value::Number(t.id as f64)),
                ("path".to_owned(), Value::String(t.path.clone())),
                ("status".to_owned(), Value::Number(f64::from(t.status))),
                ("total_us".to_owned(), Value::Number(t.total_us as f64)),
                (
                    "reason".to_owned(),
                    Value::String(t.reason.name().to_owned()),
                ),
                ("spans".to_owned(), Value::Number(t.tree.spans.len() as f64)),
            ])
        })
        .collect();
    let obj = Value::Object(vec![
        ("offered".to_owned(), Value::Number(offered as f64)),
        ("kept".to_owned(), Value::Number(kept as f64)),
        ("traces".to_owned(), Value::Array(traces)),
    ]);
    let ok = write_response(
        w,
        200,
        "application/json",
        osa_json::to_string(&obj).as_bytes(),
        &[],
        close,
    )
    .is_ok();
    (200, ok)
}

/// `GET /debug/traces/{id}` — one retained trace's full span tree, or
/// Chrome `trace_event` JSON with `?format=chrome`.
fn respond_trace_detail(
    req: &Request,
    shared: &Shared,
    w: &mut TcpStream,
    close: bool,
) -> (u16, bool) {
    use osa_json::Value;
    let id_str = req
        .path
        .strip_prefix("/debug/traces/")
        .expect("routed by prefix");
    let Ok(id) = id_str.parse::<u64>() else {
        let ok = respond_error(w, 400, &format!("bad trace id '{id_str}'"), close).is_ok();
        return (400, ok);
    };
    let Some(t) = shared.recorder.find(id) else {
        let ok = respond_error(
            w,
            404,
            &format!("trace {id} not retained (sampled out or evicted)"),
            close,
        )
        .is_ok();
        return (404, ok);
    };
    let body = match req.query_param("format") {
        Some("chrome") => t.tree.to_chrome_json(),
        Some(other) => {
            let ok = respond_error(w, 400, &format!("unknown format '{other}'"), close).is_ok();
            return (400, ok);
        }
        None => {
            let obj = Value::Object(vec![
                ("id".to_owned(), Value::Number(t.id as f64)),
                ("path".to_owned(), Value::String(t.path.clone())),
                ("status".to_owned(), Value::Number(f64::from(t.status))),
                (
                    "reason".to_owned(),
                    Value::String(t.reason.name().to_owned()),
                ),
                ("trace".to_owned(), t.tree.to_json()),
            ]);
            osa_json::to_string(&obj)
        }
    };
    let ok = write_response(w, 200, "application/json", body.as_bytes(), &[], close).is_ok();
    (200, ok)
}

/// `POST /reviews`: append reviews to one item and publish a new epoch.
fn respond_ingest(req: &Request, shared: &Shared, w: &mut TcpStream, close: bool) -> (u16, bool) {
    match ingest(req, shared) {
        Ok((item, added, epoch)) => {
            use osa_json::Value;
            let obj = Value::Object(vec![
                ("ok".to_owned(), Value::Bool(true)),
                ("item".to_owned(), Value::Number(item as f64)),
                ("added".to_owned(), Value::Number(added as f64)),
                ("epoch".to_owned(), Value::Number(epoch as f64)),
            ]);
            let ok = write_response(
                w,
                200,
                "application/json",
                osa_json::to_string(&obj).as_bytes(),
                &[],
                close,
            )
            .is_ok();
            (200, ok)
        }
        Err(e) => {
            let ok = respond_error(w, e.status, &e.message, close).is_ok();
            (e.status, ok)
        }
    }
}

fn ingest(req: &Request, shared: &Shared) -> Result<(usize, usize, u64), HttpError> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| HttpError::new(400, "body is not UTF-8"))?;
    let value =
        osa_json::parse(text).map_err(|e| HttpError::new(400, format!("bad JSON body: {e}")))?;
    let item = value
        .get("item")
        .and_then(osa_json::Value::as_u64)
        .ok_or_else(|| HttpError::new(400, "missing numeric 'item' field"))?
        as usize;
    let reviews = value
        .get("reviews")
        .and_then(osa_json::Value::as_array)
        .ok_or_else(|| HttpError::new(400, "missing 'reviews' array"))?;
    if reviews.is_empty() {
        return Err(HttpError::new(400, "'reviews' must not be empty"));
    }
    let mut texts = Vec::with_capacity(reviews.len());
    for (i, r) in reviews.iter().enumerate() {
        let t = r
            .as_str()
            .or_else(|| r.get("text").and_then(osa_json::Value::as_str))
            .ok_or_else(|| {
                HttpError::new(
                    400,
                    format!("reviews[{i}] must be a string or an object with 'text'"),
                )
            })?;
        texts.push(t.to_owned());
    }

    // Build the successor state outside the write lock's critical
    // section as far as possible; the clone is the expensive part.
    let mut state_guard = shared.state.write().expect("state lock");
    let current = state_guard.clone();
    if item >= current.corpus.items.len() {
        return Err(HttpError::new(
            404,
            format!(
                "item {item} out of range (corpus has {} items)",
                current.corpus.items.len()
            ),
        ));
    }
    let mut corpus = current.corpus.clone();
    let added = texts.len();
    for t in texts {
        corpus.items[item].reviews.push(Review {
            text: t,
            planted: Vec::new(),
        });
    }
    let next = Arc::new(EpochState::new(
        corpus,
        current.extractor.clone(),
        current.epoch + 1,
    ));
    let epoch = next.epoch;
    *state_guard = next;
    drop(state_guard);
    osa_obs::global().add("serve.ingest.reviews", added as u64);
    osa_obs::global().add("serve.epoch.bumps", 1);
    Ok((item, added, epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_distinguishes_every_parameter() {
        let base = SummaryParams {
            item: 1,
            opts: BatchOptions::default(),
            inject: Inject::None,
        };
        let k0 = cache_key(&base, 0);
        assert_eq!(k0, cache_key(&base.clone(), 0));
        assert_ne!(k0, cache_key(&base, 1), "epoch must be in the key");
        let mut other = base.clone();
        other.opts.k = 7;
        assert_ne!(k0, cache_key(&other, 0));
        let mut other = base.clone();
        other.opts.eps = 0.75;
        assert_ne!(k0, cache_key(&other, 0));
        let mut other = base.clone();
        other.opts.algorithm = BatchAlgorithm::LazyGreedy;
        assert_ne!(k0, cache_key(&other, 0));
        let mut other = base.clone();
        other.opts.graph_impl = GraphImpl::Naive;
        assert_ne!(k0, cache_key(&other, 0));
        let mut other = base;
        other.opts.extract_impl = ExtractImpl::Naive;
        assert_ne!(k0, cache_key(&other, 0));
    }

    #[test]
    fn summary_params_reject_bad_input() {
        let req = |target: &str| Request {
            method: "GET".to_owned(),
            path: target.split('?').next().unwrap().to_owned(),
            query: target
                .split_once('?')
                .map(|(_, q)| {
                    q.split('&')
                        .map(|kv| {
                            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                            (k.to_owned(), v.to_owned())
                        })
                        .collect()
                })
                .unwrap_or_default(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let d = BatchOptions::default();
        assert!(parse_summary_params(&req("/summary/3?k=4&eps=0.25"), &d).is_ok());
        for bad in [
            "/summary/abc",
            "/summary/3?k=x",
            "/summary/3?eps=nan",
            "/summary/3?eps=inf",
            "/summary/3?eps=-1",
            "/summary/3?algo=quantum",
            "/summary/3?granularity=words",
            "/summary/3?graph-impl=magic",
            "/summary/3?extract-impl=magic",
            "/summary/3?inject=fire",
            "/summary/3?inject=delay:x",
        ] {
            assert!(parse_summary_params(&req(bad), &d).is_err(), "{bad}");
        }
    }
}
