//! Ridge regression and the learned sentence-sentiment model.
//!
//! The paper formulates sentence sentiment estimation as "sentence vector
//! → standard regression" (doc2vec + regressor). [`SentimentRegressor`]
//! mirrors that architecture with [`HashedBow`](crate::HashedBow)
//! features and an L2-regularized least-squares fit solved exactly via
//! the normal equations (Cholesky in `osa-linalg`).

use osa_linalg::{cholesky_solve, Mat};

use crate::embed::HashedBow;

/// L2-regularized linear regression with an intercept.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// Learned weights (one per feature).
    pub weights: Vec<f64>,
    /// Learned intercept.
    pub intercept: f64,
}

impl RidgeRegression {
    /// Fit `y ≈ Xw + b` minimizing `‖y - Xw - b‖² + λ‖w‖²`.
    ///
    /// `rows` are the feature vectors (all the same length); `lambda > 0`
    /// guarantees a unique solution regardless of rank.
    ///
    /// # Panics
    /// On empty input, ragged rows, a row/label length mismatch, or a
    /// non-positive `lambda`.
    pub fn fit(rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Self {
        assert!(!rows.is_empty(), "no training rows");
        assert_eq!(rows.len(), y.len(), "rows/labels mismatch");
        assert!(lambda > 0.0, "lambda must be positive");
        let d = rows[0].len();

        // Center both X and y so the (unpenalized) intercept is exact:
        // w solves the ridge problem on centered data, and
        // b = ȳ - x̄ᵀw.
        let n = rows.len() as f64;
        let y_mean = y.iter().sum::<f64>() / n;
        let mut x_mean = vec![0.0; d];
        for row in rows {
            assert_eq!(row.len(), d, "ragged feature rows");
            for (m, &v) in x_mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n;
        }

        // Normal equations on centered data: (X̃ᵀX̃ + λI) w = X̃ᵀ(y - ȳ).
        let mut xtx = Mat::zeros(d, d);
        let mut xty = vec![0.0; d];
        let mut centered_row = vec![0.0; d];
        for (row, &label) in rows.iter().zip(y) {
            for ((c, &v), &m) in centered_row.iter_mut().zip(row).zip(&x_mean) {
                *c = v - m;
            }
            let cy = label - y_mean;
            for i in 0..d {
                let ri = centered_row[i];
                if ri == 0.0 {
                    continue;
                }
                xty[i] += ri * cy;
                for j in i..d {
                    xtx[(i, j)] += ri * centered_row[j];
                }
            }
        }
        // Mirror the upper triangle and add the ridge.
        for i in 0..d {
            for j in (i + 1)..d {
                xtx[(j, i)] = xtx[(i, j)];
            }
            xtx[(i, i)] += lambda;
        }
        let weights = cholesky_solve(&xtx, &xty).expect("XtX + lambda*I is SPD for lambda > 0");
        let intercept = y_mean - osa_linalg::dot(&x_mean, &weights);
        RidgeRegression { weights, intercept }
    }

    /// Predict the target for one feature vector.
    pub fn predict(&self, row: &[f64]) -> f64 {
        osa_linalg::dot(&self.weights, row) + self.intercept
    }
}

/// The learned sentence-sentiment model: feature hashing + ridge.
#[derive(Debug, Clone)]
pub struct SentimentRegressor {
    embedder: HashedBow,
    model: RidgeRegression,
}

impl SentimentRegressor {
    /// Train on `(tokenized sentence, sentiment label)` pairs. Labels are
    /// expected in `[-1, 1]`; predictions are clamped to that range.
    pub fn train(sentences: &[Vec<String>], labels: &[f64], dim: usize, lambda: f64) -> Self {
        let embedder = HashedBow::new(dim);
        let rows: Vec<Vec<f64>> = sentences.iter().map(|s| embedder.embed(s)).collect();
        let model = RidgeRegression::fit(&rows, labels, lambda);
        SentimentRegressor { embedder, model }
    }

    /// Predict the sentiment of a tokenized sentence, in `[-1, 1]`.
    pub fn predict_tokens(&self, tokens: &[String]) -> f64 {
        self.predict_with(tokens.len(), |i| tokens[i].as_str())
    }

    /// Predict from `n` tokens behind an accessor — the interned
    /// extraction path resolves token IDs to `&str` on the fly instead of
    /// materializing a `Vec<String>`. Bit-identical to
    /// [`predict_tokens`](Self::predict_tokens) on the same token text.
    pub fn predict_with<'a>(&self, n: usize, token: impl Fn(usize) -> &'a str) -> f64 {
        self.model
            .predict(&self.embedder.embed_with(n, token))
            .clamp(-1.0, 1.0)
    }

    /// Predict the sentiment of a raw sentence.
    pub fn predict_sentence(&self, sentence: &str) -> f64 {
        self.predict_tokens(&crate::tokenize(sentence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_recovers_linear_function() {
        // y = 2x₀ - x₁ + 0.5, tiny lambda.
        let rows: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![-1.0, 2.0],
        ];
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 0.5).collect();
        let m = RidgeRegression::fit(&rows, &y, 1e-8);
        for (r, &target) in rows.iter().zip(&y) {
            assert!((m.predict(r) - target).abs() < 1e-4);
        }
    }

    #[test]
    fn larger_lambda_shrinks_weights() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 / 10.0, (i as f64 / 10.0).powi(2)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let small = RidgeRegression::fit(&rows, &y, 1e-6);
        let big = RidgeRegression::fit(&rows, &y, 100.0);
        let n = |w: &[f64]| w.iter().map(|x| x * x).sum::<f64>();
        assert!(n(&big.weights) < n(&small.weights));
    }

    #[test]
    fn sentiment_regressor_separates_polarity() {
        let pos = [
            "the screen is great",
            "great battery life",
            "amazing camera quality",
            "i love this phone",
            "excellent sound and great display",
        ];
        let neg = [
            "the screen is terrible",
            "terrible battery life",
            "awful camera quality",
            "i hate this phone",
            "horrible sound and bad display",
        ];
        let mut sentences = Vec::new();
        let mut labels = Vec::new();
        for s in pos {
            sentences.push(crate::tokenize(s));
            labels.push(0.8);
        }
        for s in neg {
            sentences.push(crate::tokenize(s));
            labels.push(-0.8);
        }
        let m = SentimentRegressor::train(&sentences, &labels, 128, 0.1);
        assert!(m.predict_sentence("great display") > 0.0);
        assert!(m.predict_sentence("terrible display") < 0.0);
        // Training points are fit closely.
        assert!(m.predict_sentence("the screen is great") > 0.3);
    }

    #[test]
    fn predictions_clamped() {
        let sentences = vec![crate::tokenize("good"), crate::tokenize("bad")];
        let labels = vec![1.0, -1.0];
        let m = SentimentRegressor::train(&sentences, &labels, 16, 1e-6);
        let p = m.predict_sentence("good good good good good");
        assert!((-1.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic(expected = "rows/labels mismatch")]
    fn mismatched_labels_panic() {
        let _ = RidgeRegression::fit(&[vec![1.0]], &[1.0, 2.0], 0.1);
    }
}
