//! Figs. 4 & 5 reproduction: average selection time (Fig. 4) and average
//! coverage cost (Fig. 5) of ILP, Randomized Rounding and Greedy on the
//! three problem variants (top pairs / top sentences / top reviews) at
//! sentiment threshold ε = 0.5, as a function of k.
//!
//! The workload is the synthetic SNOMED-like doctor workload (see
//! DESIGN.md §2): per-item pair sets with clustered concepts and Zipf
//! aspect popularity. Environment knobs:
//!
//! * `OSA_ITEMS` (default 20) — number of items averaged over,
//! * `OSA_MEAN_PAIRS` (default 60) — mean pairs per item,
//! * `OSA_KMAX` (default 10) — k sweep upper bound,
//! * `OSA_METRICS` (off) — stream pipeline metrics as JSON lines to
//!   this file (same schema as `osars summarize --metrics`).

use osa_bench::{
    finish_metrics, granularity_label, init_metrics_from_env, jobs_flag, quant_workload, run_timed,
    text_workload, write_csv,
};
use osa_core::{Granularity, GreedySummarizer, IlpSummarizer, RandomizedRounding, Summarizer};
use osa_runtime::BatchJob;

const EPS: f64 = 0.5;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let metrics = init_metrics_from_env();
    let items = env_usize("OSA_ITEMS", 20);
    let mean_pairs = env_usize("OSA_MEAN_PAIRS", 60);
    let kmax = env_usize("OSA_KMAX", 10);
    let jobs = jobs_flag();
    let source = std::env::var("OSA_SOURCE").unwrap_or_else(|_| "synthetic".to_owned());
    let w = match source.as_str() {
        // Full pipeline over generated doctor review text.
        "text" => text_workload(items, 42),
        _ => quant_workload(items, mean_pairs, 42),
    };
    println!(
        "=== Figs. 4 & 5: time/cost vs k (eps = {EPS}, {items} items, source = {source}) ===\n"
    );

    let algorithms: Vec<(&str, Box<dyn Summarizer>)> = vec![
        ("ILP", Box::new(IlpSummarizer)),
        ("RR", Box::new(RandomizedRounding::with_seed(7))),
        // Algorithm 1 with 8 sampling trials (LP solved once): shows how
        // fast the sampled cost concentrates toward the LP optimum.
        ("RR8", Box::new(RandomizedRounding { seed: 7, trials: 8 })),
        ("Greedy", Box::new(GreedySummarizer)),
    ];
    let grans = [
        Granularity::Pairs,
        Granularity::Sentences,
        Granularity::Reviews,
    ];

    let mut csv = Vec::new();
    // speedups[granularity][algorithm pair] etc. accumulated after.
    let mut mean_time = vec![vec![vec![0.0f64; kmax]; algorithms.len()]; grans.len()];
    let mut mean_cost = vec![vec![vec![0.0f64; kmax]; algorithms.len()]; grans.len()];

    for (gi, &g) in grans.iter().enumerate() {
        // Prebuild graphs once per item (shared initialization, §4.1) on
        // the worker pool; the timed algorithm runs below stay sequential
        // so the reported microseconds are uncontended.
        let graphs = BatchJob::new(&w.items)
            .jobs(jobs)
            .run(|_, _, item| item.graph(&w.hierarchy, EPS, g))
            .results;
        for k in 1..=kmax {
            for (ai, (_, alg)) in algorithms.iter().enumerate() {
                let mut tsum = 0.0;
                let mut csum = 0.0;
                for graph in &graphs {
                    let (summary, micros) = run_timed(alg.as_ref(), graph, k);
                    tsum += micros;
                    csum += summary.cost as f64;
                }
                mean_time[gi][ai][k - 1] = tsum / graphs.len() as f64;
                mean_cost[gi][ai][k - 1] = csum / graphs.len() as f64;
            }
        }
    }

    for (gi, &g) in grans.iter().enumerate() {
        println!("--- {} ---", granularity_label(g));
        print!("{:<8}", "k");
        for (name, _) in &algorithms {
            print!(
                "{:>12} {:>12}",
                format!("{name} us"),
                format!("{name} cost")
            );
        }
        println!();
        for k in 1..=kmax {
            print!("{k:<8}");
            for ai in 0..algorithms.len() {
                print!(
                    "{:>12.1} {:>12.2}",
                    mean_time[gi][ai][k - 1],
                    mean_cost[gi][ai][k - 1]
                );
                csv.push(format!(
                    "{},{},{},{:.1},{:.3}",
                    granularity_label(g).replace(' ', "_"),
                    algorithms[ai].0,
                    k,
                    mean_time[gi][ai][k - 1],
                    mean_cost[gi][ai][k - 1]
                ));
            }
            println!();
        }
        println!();
    }

    // §5.2 summary block: the paper's headline ratios.
    let (ilp_i, rr_i, rr8_i, greedy_i) = (0usize, 1usize, 2usize, 3usize);
    println!("--- Section 5.2 ratio summary ---");
    for (gi, &g) in grans.iter().enumerate() {
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ilp_t = avg(&mean_time[gi][ilp_i]);
        let rr_t = avg(&mean_time[gi][rr_i]);
        let greedy_t = avg(&mean_time[gi][greedy_i]);
        let max_speedup_ilp = mean_time[gi][ilp_i]
            .iter()
            .zip(&mean_time[gi][greedy_i])
            .map(|(i, g)| i / g.max(1e-9))
            .fold(0.0f64, f64::max);
        let max_speedup_rr = mean_time[gi][rr_i]
            .iter()
            .zip(&mean_time[gi][greedy_i])
            .map(|(r, g)| r / g.max(1e-9))
            .fold(0.0f64, f64::max);
        // Cost gaps vs optimal, averaged over k with positive OPT.
        let gap = |a: &[f64], b: &[f64]| {
            let mut tot = 0.0;
            let mut n = 0usize;
            for (x, o) in a.iter().zip(b) {
                if *o > 0.0 {
                    tot += (x - o) / o;
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                100.0 * tot / n as f64
            }
        };
        println!(
            "{:<14} greedy vs ILP: {:>6.1}x faster (max {:.0}x); RR vs ILP: {:.1}x of ILP time (greedy vs RR max {:.0}x); cost gap greedy +{:.1}%, RR +{:.1}%, RR8 +{:.1}%",
            granularity_label(g),
            ilp_t / greedy_t.max(1e-9),
            max_speedup_ilp,
            rr_t / ilp_t.max(1e-9),
            max_speedup_rr,
            gap(&mean_cost[gi][greedy_i], &mean_cost[gi][ilp_i]),
            gap(&mean_cost[gi][rr_i], &mean_cost[gi][ilp_i]),
            gap(&mean_cost[gi][rr8_i], &mean_cost[gi][ilp_i]),
        );
    }
    println!("\ncost ordering across variants (paper: pairs > sentences > reviews at same k):");
    for k in [2usize, 5, 10] {
        if k <= kmax {
            println!(
                "  k={k}: pairs {:.1}  sentences {:.1}  reviews {:.1} (ILP)",
                mean_cost[0][ilp_i][k - 1],
                mean_cost[1][ilp_i][k - 1],
                mean_cost[2][ilp_i][k - 1]
            );
        }
    }

    let csv_name = if source == "text" {
        "fig4_5_text.csv"
    } else {
        "fig4_5.csv"
    };
    write_csv(
        csv_name,
        "granularity,algorithm,k,mean_time_us,mean_cost",
        &csv,
    );
    finish_metrics(metrics);
}
