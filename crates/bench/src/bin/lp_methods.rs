//! §5.1 configuration check: primal vs dual simplex on the coverage LP
//! relaxation (the paper picked Gurobi's dual simplex for this model
//! after the same comparison).

use osa_bench::quant_workload;
use osa_core::{__diag_build_model, Granularity};
use osa_eval::Stopwatch;
use osa_solver::LpMethod;

fn main() {
    for mean_pairs in [40usize, 80, 120] {
        let w = quant_workload(3, mean_pairs, 42);
        for (i, item) in w.items.iter().enumerate() {
            let g = item.graph(&w.hierarchy, 0.5, Granularity::Pairs);
            let (model, _, stats) = __diag_build_model(&g, 5, false);
            let (p, pt) = Stopwatch::time(|| model.solve_lp().unwrap());
            let (d, dt) = Stopwatch::time(|| model.solve_lp_with(LpMethod::Dual).unwrap());
            assert!(
                (p.objective - d.objective).abs() < 1e-5,
                "objective mismatch"
            );
            println!(
                "pairs~{mean_pairs} item{i}: vars {:>5} cons {:>5} | primal {:>9.0}us dual {:>9.0}us ({:.2}x)",
                stats.variables, stats.constraints, pt, dt, pt / dt
            );
        }
    }
}
