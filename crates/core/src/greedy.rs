//! Algorithm 2: the greedy summarizer with max-heap key maintenance.

use crate::heap::IndexedMaxHeap;
use crate::{CoverageGraph, Summarizer, Summary};

/// The paper's Algorithm 2.
///
/// Starts from `F = {root}` and repeatedly adds the candidate with the
/// largest marginal cost decrease `δ(p, F) = C(F, P) − C(F ∪ {p}, P)`,
/// maintained in an indexed max-heap. After selecting a candidate, only
/// the keys of candidates sharing a covered pair with it (the two-hop
/// neighborhood in `G`) can change, and — the cost being submodular —
/// they can only *decrease*, so a decrease-key heap suffices.
///
/// Selection stops early once the best marginal gain reaches 0 (coverage
/// saturated): padding the summary with zero-gain candidates would not
/// change the cost but would waste summary slots.
///
/// Wolsey's guarantee (Theorem 4): the returned size-`k` summary costs at
/// most `opt_{k'}(P)` with `k' = ⌈k / H(Δn)⌉`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySummarizer;

impl Summarizer for GreedySummarizer {
    fn summarize(&self, graph: &CoverageGraph, k: usize) -> Summary {
        self.summarize_traced(graph, k, None)
    }

    fn summarize_traced(
        &self,
        graph: &CoverageGraph,
        k: usize,
        trace: Option<&osa_obs::Trace>,
    ) -> Summary {
        let n = graph.num_candidates();
        let k = k.min(n);
        // best[q] = current serving distance of pair q (root to start).
        let mut best: Vec<u32> = (0..graph.num_pairs()).map(|q| graph.root_dist(q)).collect();

        // Initial keys: δ(u, {r}) = Σ_q max(0, best[q] − d(u, q)).
        let keys: Vec<u64> = (0..n)
            .map(|u| {
                graph
                    .covered_by(u)
                    .iter()
                    .map(|&(q, d)| {
                        u64::from(best[q as usize].saturating_sub(d))
                            * graph.pair_weight(q as usize)
                    })
                    .sum()
            })
            .collect();
        let mut heap = IndexedMaxHeap::new(keys);
        // Metric accumulators: counted locally, published once per call so
        // the hot loop never touches the registry.
        let gain_evals = n as u64; // one initial key per candidate
        let mut key_updates = 0u64;

        let mut selected = Vec::with_capacity(k);
        while selected.len() < k {
            let Some((u, gain)) = heap.pop_max() else {
                break;
            };
            if gain == 0 {
                // Eager keys are exact, so a zero top key means coverage
                // is saturated: every further selection would pad the
                // summary with a useless candidate.
                break;
            }
            selected.push(u as usize);
            // Two-hop key updates: for each pair this candidate now serves
            // better, every other candidate covering that pair loses the
            // corresponding share of its marginal gain.
            for &(q, d) in graph.covered_by(u as usize) {
                let old = best[q as usize];
                if d >= old {
                    continue;
                }
                best[q as usize] = d;
                let weight = graph.pair_weight(q as usize);
                for &(v, dv) in graph.coverers_of(q as usize) {
                    if !heap.contains(v) {
                        continue;
                    }
                    let before = u64::from(old.saturating_sub(dv)) * weight;
                    let after = u64::from(d.saturating_sub(dv)) * weight;
                    if before > after {
                        let nk = heap.key(v) - (before - after);
                        heap.decrease_key(v, nk);
                        key_updates += 1;
                    }
                }
            }
        }
        let obs = osa_obs::global();
        obs.add("greedy.gain_evals", gain_evals);
        obs.add("greedy.key_updates", key_updates);
        if let Some(t) = trace {
            t.count("greedy.gain_evals", gain_evals);
            t.count("greedy.key_updates", key_updates);
        }

        let cost = best
            .iter()
            .enumerate()
            .map(|(q, &d)| u64::from(d) * graph.pair_weight(q))
            .sum();
        debug_assert_eq!(cost, graph.cost_of(&selected));
        Summary { selected, cost }
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// CELF-style *lazy* greedy (ablation variant).
///
/// Instead of eagerly updating every affected key, keys are left stale
/// and re-evaluated only when popped: by submodularity a stale key is an
/// upper bound, so if a re-evaluated candidate still beats the next heap
/// top it is safely selected. Heap entries order by `(gain, smallest
/// candidate id)` — the same tie-break as the eager heap — and a popped
/// candidate is selected only if its *fresh* entry still tops the heap
/// under that order, so the selection sequence (and therefore the cost)
/// is byte-identical to [`GreedySummarizer`], ties included. The
/// benchmark suite compares their running times.
#[derive(Debug, Clone, Copy, Default)]
pub struct LazyGreedySummarizer;

impl LazyGreedySummarizer {
    /// The exact initial marginal gain `δ(u, {r})` of every candidate —
    /// the keys both greedy variants seed their heaps with. Cache this
    /// vector (and maintain it across appends with
    /// [`GraphBuildPlan::warm_keys`](crate::GraphBuildPlan::warm_keys))
    /// to warm-start [`summarize_seeded`](Self::summarize_seeded).
    pub fn initial_keys(graph: &CoverageGraph) -> Vec<u64> {
        (0..graph.num_candidates())
            .map(|u| {
                graph
                    .covered_by(u)
                    .iter()
                    .map(|&(q, d)| {
                        u64::from(graph.root_dist(q as usize).saturating_sub(d))
                            * graph.pair_weight(q as usize)
                    })
                    .sum()
            })
            .collect()
    }

    /// CELF with a warm-started heap: `keys` must equal
    /// [`initial_keys`](Self::initial_keys)`(graph)` (debug-asserted).
    /// Because the initial keys are exact — not stale bounds — seeding
    /// the heap from a cached copy reproduces the cold run's selection
    /// sequence byte-for-byte; only the `O(|E|)` key computation is
    /// skipped.
    pub fn summarize_seeded(
        &self,
        graph: &CoverageGraph,
        k: usize,
        keys: &[u64],
        trace: Option<&osa_obs::Trace>,
    ) -> Summary {
        assert_eq!(keys.len(), graph.num_candidates(), "one key per candidate");
        debug_assert_eq!(keys, Self::initial_keys(graph), "seeded keys must be exact");
        osa_obs::global().add("lazy.warm_starts", 1);
        self.summarize_inner(graph, k, Some(keys), trace)
    }
}

impl Summarizer for LazyGreedySummarizer {
    fn summarize(&self, graph: &CoverageGraph, k: usize) -> Summary {
        self.summarize_traced(graph, k, None)
    }

    fn summarize_traced(
        &self,
        graph: &CoverageGraph,
        k: usize,
        trace: Option<&osa_obs::Trace>,
    ) -> Summary {
        self.summarize_inner(graph, k, None, trace)
    }

    fn name(&self) -> &'static str {
        "greedy-lazy"
    }
}

impl LazyGreedySummarizer {
    fn summarize_inner(
        &self,
        graph: &CoverageGraph,
        k: usize,
        seed_keys: Option<&[u64]>,
        trace: Option<&osa_obs::Trace>,
    ) -> Summary {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = graph.num_candidates();
        let k = k.min(n);
        let mut best: Vec<u32> = (0..graph.num_pairs()).map(|q| graph.root_dist(q)).collect();
        let gain = |u: usize, best: &[u32]| -> u64 {
            graph
                .covered_by(u)
                .iter()
                .map(|&(q, d)| {
                    u64::from(best[q as usize].saturating_sub(d)) * graph.pair_weight(q as usize)
                })
                .sum()
        };

        // Entries are (possibly stale) upper bounds on the marginal gain,
        // ordered `(gain, smallest id)` to mirror the eager heap's
        // tie-break exactly. A warm start seeds the very same exact
        // initial keys from a cached vector instead of recomputing them.
        let mut heap: BinaryHeap<(u64, Reverse<u32>)> = match seed_keys {
            Some(keys) => keys
                .iter()
                .enumerate()
                .map(|(u, &g)| (g, Reverse(u as u32)))
                .collect(),
            None => (0..n)
                .map(|u| (gain(u, &best), Reverse(u as u32)))
                .collect(),
        };
        let mut selected = Vec::with_capacity(k);
        let mut reevals = n as u64; // the initial keys
        let mut repops = 0u64;

        while selected.len() < k {
            let Some((stale, Reverse(u))) = heap.pop() else {
                break;
            };
            let fresh = gain(u as usize, &best);
            reevals += 1;
            debug_assert!(fresh <= stale, "gains only shrink (submodularity)");
            let entry = (fresh, Reverse(u));
            // Select only if the *fresh* entry would still top the heap.
            // Every remaining entry is an upper bound on its candidate's
            // fresh entry, so winning here means winning against every
            // fresh gain under the same `(gain, smallest id)` order the
            // eager variant uses — ties picked identically.
            if heap.peek().is_none_or(|top| entry >= *top) {
                if fresh == 0 {
                    // `fresh` dominates every (optimistic) stale key, so
                    // the true maximum marginal gain is 0: stop exactly
                    // where the eager variant does.
                    break;
                }
                selected.push(u as usize);
                for &(q, d) in graph.covered_by(u as usize) {
                    let b = &mut best[q as usize];
                    if d < *b {
                        *b = d;
                    }
                }
            } else {
                heap.push(entry);
                repops += 1;
            }
        }
        let obs = osa_obs::global();
        obs.add("lazy.reevals", reevals);
        obs.add("lazy.repops", repops);
        if let Some(t) = trace {
            t.count("lazy.reevals", reevals);
            t.count("lazy.repops", repops);
        }

        let cost = best
            .iter()
            .enumerate()
            .map(|(q, &d)| u64::from(d) * graph.pair_weight(q))
            .sum();
        Summary { selected, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pair;
    use osa_ontology::{Hierarchy, HierarchyBuilder};

    fn star(children: usize) -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        for i in 0..children {
            let c = b.add_node(&format!("c{i}"));
            b.add_edge(r, c).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn greedy_on_star_picks_distinct_concepts() {
        let h = star(4);
        let pairs: Vec<Pair> = (0..4)
            .map(|i| Pair::new(h.node_by_name(&format!("c{i}")).unwrap(), 0.0))
            .collect();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = GreedySummarizer.summarize(&g, 2);
        assert_eq!(s.selected.len(), 2);
        // Each selection zeroes its own pair: cost = 2 remaining at depth 1.
        assert_eq!(s.cost, 2);
    }

    #[test]
    fn greedy_prefers_high_coverage_candidate() {
        // r -> mid -> {l1, l2, l3}: the `mid` pair covers everything.
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        let mid = b.add_node("mid");
        b.add_edge(r, mid).unwrap();
        let mut leaves = Vec::new();
        for i in 0..3 {
            let l = b.add_node(&format!("l{i}"));
            b.add_edge(mid, l).unwrap();
            leaves.push(l);
        }
        let h = b.build().unwrap();
        let mut pairs = vec![Pair::new(mid, 0.0)];
        pairs.extend(leaves.iter().map(|&l| Pair::new(l, 0.1)));
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = GreedySummarizer.summarize(&g, 1);
        assert_eq!(s.selected, vec![0]);
        assert_eq!(s.cost, 3); // three leaves at distance 1
    }

    #[test]
    fn k_larger_than_candidates_selects_all() {
        let h = star(2);
        let pairs: Vec<Pair> = (0..2)
            .map(|i| Pair::new(h.node_by_name(&format!("c{i}")).unwrap(), 0.0))
            .collect();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = GreedySummarizer.summarize(&g, 10);
        assert_eq!(s.selected.len(), 2);
        assert_eq!(s.cost, 0);
    }

    #[test]
    fn saturated_instance_stops_before_k() {
        // Two concepts, each pair duplicated: after one selection per
        // concept the cost is 0 and every remaining marginal gain is 0.
        let h = star(2);
        let c0 = h.node_by_name("c0").unwrap();
        let c1 = h.node_by_name("c1").unwrap();
        let pairs = vec![
            Pair::new(c0, 0.0),
            Pair::new(c0, 0.0),
            Pair::new(c1, 0.0),
            Pair::new(c1, 0.0),
        ];
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let eager = GreedySummarizer.summarize(&g, 4);
        assert_eq!(eager.cost, 0);
        assert_eq!(
            eager.selected.len(),
            2,
            "zero-gain candidates must not pad the summary"
        );
        let lazy = LazyGreedySummarizer.summarize(&g, 4);
        assert_eq!(lazy.cost, 0);
        assert_eq!(lazy.selected.len(), 2, "lazy stops where eager stops");
    }

    #[test]
    fn lazy_matches_eager_selection_under_ties() {
        // Two candidates on the same concept tie for the top gain; both
        // variants must break the tie the same way (smallest id). The
        // pre-tie-break lazy variant picked the *largest* id here.
        let h = star(3);
        let c0 = h.node_by_name("c0").unwrap();
        let c1 = h.node_by_name("c1").unwrap();
        let pairs = vec![Pair::new(c0, 0.0), Pair::new(c1, 0.0), Pair::new(c1, 0.0)];
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        for k in 0..=3 {
            let eager = GreedySummarizer.summarize(&g, k);
            let lazy = LazyGreedySummarizer.summarize(&g, k);
            assert_eq!(eager.selected, lazy.selected, "k={k}");
            assert_eq!(eager.cost, lazy.cost, "k={k}");
        }
        // And the tie itself resolves to the smaller candidate id.
        assert_eq!(GreedySummarizer.summarize(&g, 1).selected, vec![1]);
    }

    #[test]
    fn lazy_matches_eager_cost() {
        let h = star(6);
        let pairs: Vec<Pair> = (0..6)
            .map(|i| Pair::new(h.node_by_name(&format!("c{i}")).unwrap(), (i as f64) / 10.0))
            .collect();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.3);
        for k in 0..=6 {
            let eager = GreedySummarizer.summarize(&g, k);
            let lazy = LazyGreedySummarizer.summarize(&g, k);
            assert_eq!(eager.cost, lazy.cost, "k={k}");
        }
    }

    #[test]
    fn seeded_lazy_matches_cold_lazy_and_eager() {
        let h = star(6);
        let pairs: Vec<Pair> = (0..6)
            .map(|i| Pair::new(h.node_by_name(&format!("c{i}")).unwrap(), (i as f64) / 10.0))
            .collect();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.3);
        let keys = LazyGreedySummarizer::initial_keys(&g);
        for k in 0..=6 {
            let eager = GreedySummarizer.summarize(&g, k);
            let cold = LazyGreedySummarizer.summarize(&g, k);
            let warm = LazyGreedySummarizer.summarize_seeded(&g, k, &keys, None);
            assert_eq!(cold.selected, warm.selected, "k={k}");
            assert_eq!(cold.cost, warm.cost, "k={k}");
            assert_eq!(eager.selected, warm.selected, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "one key per candidate")]
    fn seeded_lazy_rejects_mismatched_keys() {
        let h = star(2);
        let pairs: Vec<Pair> = (0..2)
            .map(|i| Pair::new(h.node_by_name(&format!("c{i}")).unwrap(), 0.0))
            .collect();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let _ = LazyGreedySummarizer.summarize_seeded(&g, 1, &[1], None);
    }

    #[test]
    fn reported_cost_is_exact() {
        let h = star(5);
        let pairs: Vec<Pair> = (0..5)
            .map(|i| Pair::new(h.node_by_name(&format!("c{i}")).unwrap(), 0.2 * i as f64))
            .collect();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = GreedySummarizer.summarize(&g, 3);
        assert_eq!(s.cost, g.cost_of(&s.selected));
    }
}
