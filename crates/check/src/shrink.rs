//! Scenario shrinking: bisect a failing scenario down to a minimal
//! instance that still fails the same check.
//!
//! Corpus scenarios shrink by dropping whole items, then individual
//! reviews (always keeping at least one of each); synth scenarios shrink
//! ddmin-style over the pair list, with the sentence/review groupings
//! re-derived after every removal. Each candidate mutation is kept only
//! if the check still fails, so the result is guaranteed to reproduce
//! the failure. The trial budget bounds worst-case work; the shrinker is
//! best-effort minimal, not globally minimal.

use crate::differential::Check;
use crate::scenario::{Scenario, ScenarioKind, SynthInstance};

/// Upper bound on shrink attempts (re-runs of the failing check).
pub const MAX_SHRINK_TRIALS: usize = 400;

/// Shrink `scenario` (which currently fails `check`) to a smaller
/// scenario that still fails it. Returns the number of trials used.
pub fn shrink_scenario(scenario: &mut Scenario, check: &Check) -> usize {
    let mut trials = 0usize;
    let obs = osa_obs::global();
    let still_fails = |s: &Scenario| {
        obs.add("check.shrink.trials", 1);
        (check.run)(s).is_err()
    };
    match &scenario.kind {
        ScenarioKind::Corpus(_) => loop {
            let mut progressed = false;
            // Pass 1: drop whole items.
            let mut i = 0;
            loop {
                let len = corpus_items_len(scenario);
                if len <= 1 || i >= len || trials >= MAX_SHRINK_TRIALS {
                    break;
                }
                let removed = corpus_remove_item(scenario, i);
                trials += 1;
                if still_fails(scenario) {
                    progressed = true;
                } else {
                    corpus_insert_item(scenario, i, removed);
                    i += 1;
                }
            }
            // Pass 2: drop individual reviews.
            let mut item = 0;
            while item < corpus_items_len(scenario) && trials < MAX_SHRINK_TRIALS {
                let mut r = 0;
                loop {
                    let n_reviews = corpus_review_count(scenario, item);
                    if n_reviews <= 1 || r >= n_reviews || trials >= MAX_SHRINK_TRIALS {
                        break;
                    }
                    let removed = corpus_remove_review(scenario, item, r);
                    trials += 1;
                    if still_fails(scenario) {
                        progressed = true;
                    } else {
                        corpus_insert_review(scenario, item, r, removed);
                        r += 1;
                    }
                }
                item += 1;
            }
            if !progressed || trials >= MAX_SHRINK_TRIALS {
                break;
            }
        },
        ScenarioKind::Synth(_) => {
            // ddmin over the pair list: try dropping chunks, halving the
            // chunk size as removals stop helping.
            loop {
                let n = synth_of(scenario).pairs.len();
                if n <= 1 || trials >= MAX_SHRINK_TRIALS {
                    break;
                }
                let mut chunk = n.div_ceil(2);
                let mut progressed = false;
                while chunk >= 1 && trials < MAX_SHRINK_TRIALS {
                    let mut start = 0;
                    while start < synth_of(scenario).pairs.len() && trials < MAX_SHRINK_TRIALS {
                        let len = synth_of(scenario).pairs.len();
                        if len <= 1 {
                            break;
                        }
                        let take = chunk.min(len - start).min(len - 1);
                        if take == 0 {
                            break;
                        }
                        let candidate = drop_pair_range(synth_of(scenario), start, take);
                        let saved = replace_synth(scenario, candidate);
                        trials += 1;
                        if still_fails(scenario) {
                            progressed = true;
                        } else {
                            replace_synth(scenario, saved);
                            start += take;
                        }
                    }
                    if chunk == 1 {
                        break;
                    }
                    chunk /= 2;
                }
                if !progressed {
                    break;
                }
            }
        }
    }
    trials
}

fn corpus_items_len(s: &Scenario) -> usize {
    match &s.kind {
        ScenarioKind::Corpus(c) => c.items.len(),
        ScenarioKind::Synth(_) => 0,
    }
}

fn corpus_remove_item(s: &mut Scenario, i: usize) -> osa_datasets::Item {
    match &mut s.kind {
        ScenarioKind::Corpus(c) => c.items.remove(i),
        ScenarioKind::Synth(_) => unreachable!(),
    }
}

fn corpus_insert_item(s: &mut Scenario, i: usize, item: osa_datasets::Item) {
    match &mut s.kind {
        ScenarioKind::Corpus(c) => c.items.insert(i, item),
        ScenarioKind::Synth(_) => unreachable!(),
    }
}

fn corpus_review_count(s: &Scenario, item: usize) -> usize {
    match &s.kind {
        ScenarioKind::Corpus(c) => c.items[item].reviews.len(),
        ScenarioKind::Synth(_) => 0,
    }
}

fn corpus_remove_review(s: &mut Scenario, item: usize, r: usize) -> osa_datasets::Review {
    match &mut s.kind {
        ScenarioKind::Corpus(c) => c.items[item].reviews.remove(r),
        ScenarioKind::Synth(_) => unreachable!(),
    }
}

fn corpus_insert_review(s: &mut Scenario, item: usize, r: usize, review: osa_datasets::Review) {
    match &mut s.kind {
        ScenarioKind::Corpus(c) => c.items[item].reviews.insert(r, review),
        ScenarioKind::Synth(_) => unreachable!(),
    }
}

fn synth_of(s: &Scenario) -> &SynthInstance {
    match &s.kind {
        ScenarioKind::Synth(inst) => inst,
        ScenarioKind::Corpus(_) => unreachable!(),
    }
}

/// The synth payload minus `pairs[start..start + len]`, with both group
/// partitions filtered and re-indexed over the surviving pairs.
struct SynthPayload {
    pairs: Vec<osa_core::Pair>,
    sentence_groups: Vec<Vec<usize>>,
    review_groups: Vec<Vec<usize>>,
}

fn drop_pair_range(inst: &SynthInstance, start: usize, len: usize) -> SynthPayload {
    let keep = |i: usize| i < start || i >= start + len;
    // Old index -> new index over the survivors.
    let mut remap = vec![usize::MAX; inst.pairs.len()];
    let mut pairs = Vec::with_capacity(inst.pairs.len() - len);
    for (i, p) in inst.pairs.iter().enumerate() {
        if keep(i) {
            remap[i] = pairs.len();
            pairs.push(*p);
        }
    }
    let filter_groups = |gs: &[Vec<usize>]| {
        gs.iter()
            .map(|g| {
                g.iter()
                    .filter(|&&i| keep(i))
                    .map(|&i| remap[i])
                    .collect::<Vec<_>>()
            })
            .filter(|g: &Vec<usize>| !g.is_empty())
            .collect()
    };
    SynthPayload {
        pairs,
        sentence_groups: filter_groups(&inst.sentence_groups),
        review_groups: filter_groups(&inst.review_groups),
    }
}

/// Swap the synth payload of `s` for `new`, returning the old payload
/// (so a non-reproducing mutation can be rolled back).
fn replace_synth(s: &mut Scenario, new: SynthPayload) -> SynthPayload {
    match &mut s.kind {
        ScenarioKind::Synth(inst) => SynthPayload {
            pairs: std::mem::replace(&mut inst.pairs, new.pairs),
            sentence_groups: std::mem::replace(&mut inst.sentence_groups, new.sentence_groups),
            review_groups: std::mem::replace(&mut inst.review_groups, new.review_groups),
        },
        ScenarioKind::Corpus(_) => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::CheckKind;
    use crate::scenario::Scenario;

    /// A deliberately failing "check": fails while the corpus still has
    /// more than one review in total.
    fn fails_while_multiple_reviews(s: &Scenario) -> Result<(), String> {
        match &s.kind {
            ScenarioKind::Corpus(c) => {
                if c.total_reviews() > 1 {
                    Err(format!("{} reviews", c.total_reviews()))
                } else {
                    Ok(())
                }
            }
            ScenarioKind::Synth(_) => Ok(()),
        }
    }

    /// Fails while the synth instance still has at least 5 pairs.
    fn fails_while_many_pairs(s: &Scenario) -> Result<(), String> {
        match &s.kind {
            ScenarioKind::Synth(inst) if inst.pairs.len() >= 5 => {
                Err(format!("{} pairs", inst.pairs.len()))
            }
            _ => Ok(()),
        }
    }

    #[test]
    fn corpus_shrinks_to_minimal_failing_size() {
        let mut s = Scenario::generate(11, 0);
        let check = Check {
            name: "test-multi-review",
            kind: CheckKind::Corpus,
            run: fails_while_multiple_reviews,
        };
        assert!((check.run)(&s).is_err(), "scenario must start failing");
        let trials = shrink_scenario(&mut s, &check);
        assert!(trials > 0);
        // Still failing, and minimal for this predicate: one item left
        // and exactly two reviews (dropping either fixes it).
        let ScenarioKind::Corpus(c) = &s.kind else {
            panic!()
        };
        assert!((check.run)(&s).is_err());
        assert_eq!(c.items.len(), 1);
        assert_eq!(c.total_reviews(), 2);
    }

    #[test]
    fn synth_shrinks_pairs_and_keeps_groups_consistent() {
        let mut s = Scenario::generate(11, 2);
        let check = Check {
            name: "test-many-pairs",
            kind: CheckKind::Synth,
            run: fails_while_many_pairs,
        };
        assert!((check.run)(&s).is_err());
        shrink_scenario(&mut s, &check);
        let ScenarioKind::Synth(inst) = &s.kind else {
            panic!()
        };
        assert!((check.run)(&s).is_err());
        // Minimal for this predicate: exactly the failure threshold.
        assert_eq!(inst.pairs.len(), 5);
        // Groups still partition the surviving pairs.
        let mut seen = vec![false; inst.pairs.len()];
        for g in &inst.sentence_groups {
            for &i in g {
                assert!(i < inst.pairs.len());
                assert!(!seen[i], "pair {i} in two sentence groups");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "sentence groups lost a pair");
        let total: usize = inst.review_groups.iter().map(Vec::len).sum();
        assert_eq!(total, inst.pairs.len());
    }

    #[test]
    fn shrink_keeps_a_passing_scenario_minimal_noop() {
        // If the check "fails" unconditionally on synth, the shrinker
        // reduces to a single pair and stops.
        fn always_fails(s: &Scenario) -> Result<(), String> {
            match &s.kind {
                ScenarioKind::Synth(_) => Err("always".into()),
                _ => Ok(()),
            }
        }
        let mut s = Scenario::generate(3, 5);
        let check = Check {
            name: "test-always",
            kind: CheckKind::Synth,
            run: always_fails,
        };
        shrink_scenario(&mut s, &check);
        let ScenarioKind::Synth(inst) = &s.kind else {
            panic!()
        };
        assert_eq!(inst.pairs.len(), 1);
    }
}
