//! # osa-ontology
//!
//! Rooted-DAG concept hierarchies for ontology-aware review summarization.
//!
//! The summarization framework of Le, Young and Hristidis (ICDE 2017 /
//! WISE 2019) maps every opinion in a review onto a node of a *concept
//! hierarchy*: a directed acyclic graph with a single root in which an edge
//! `a -> b` means "`b` is a more specific concept than `a`" (e.g. the
//! part-whole relation of SNOMED CT or WordNet). This crate provides that
//! substrate:
//!
//! * [`Hierarchy`] — an immutable, arena-based rooted DAG with fast
//!   ancestor/descendant queries and shortest directed-path distances,
//! * [`HierarchyBuilder`] — incremental construction with full validation
//!   (single root, acyclicity, reachability),
//! * [`io`] — JSON (de)serialization of hierarchies,
//! * [`tsv`] — a hand-authorable TSV edge-list format for importing
//!   flattened real ontologies,
//! * per-node *surface terms* (a lexicon) used by the concept extractor in
//!   `osa-text` to spot concept mentions in raw review text.
//!
//! ## Example
//!
//! ```
//! use osa_ontology::HierarchyBuilder;
//!
//! let mut b = HierarchyBuilder::new();
//! let phone = b.add_node("phone");
//! let display = b.add_node("display");
//! let color = b.add_node("display color");
//! b.add_edge(phone, display).unwrap();
//! b.add_edge(display, color).unwrap();
//! let h = b.build().unwrap();
//!
//! assert_eq!(h.root(), phone);
//! assert!(h.is_ancestor(display, color));
//! assert_eq!(h.dist_down(phone, color), Some(2));
//! ```

#![warn(missing_docs)]

mod ancestor;
mod builder;
mod error;
mod hierarchy;
pub mod io;
mod segment;
mod stats;
pub mod tsv;

pub use ancestor::{AncestorIndex, AncestorScratch};
pub use builder::HierarchyBuilder;
pub use error::OntologyError;
pub use hierarchy::{Hierarchy, NodeId};
pub use segment::{AncestorImpl, SegmentIndex, SegmentScratch};
pub use stats::HierarchyStats;
