//! Request-scoped tracing: span **trees**, not flat histograms.
//!
//! The registry's named histograms answer "how long does `graph.build`
//! take on average?"; they cannot answer "which stage of *this* request
//! burned the time?". A [`Trace`] does: it carries a `u64` trace id and
//! accumulates a tree of [`SpanRecord`]s — name, parent, start/end
//! offsets in monotonic microseconds from the trace origin, and any
//! counters attached while the span was open.
//!
//! Propagation is **explicit**: instrumented code takes an
//! `Option<&Trace>` (no thread-locals), and when `None` is passed the
//! pipeline behaves byte-identically to an untraced run — tracing
//! observes, it never perturbs.
//!
//! Interior mutability is a single [`Mutex`], so one `Arc<Trace>` can be
//! handed from a connection thread to a worker thread (the handoff is
//! sequential, which keeps the open-span stack well-nested). Lock
//! poisoning is ignored (`into_inner`): a panicking traced request must
//! still yield a readable trace — that is exactly when you want it.
//!
//! ```
//! use osa_obs::Trace;
//!
//! let trace = Trace::new(7);
//! {
//!     let _root = trace.span("request");
//!     {
//!         let _child = trace.span("extract");
//!         trace.count("extract.pairs", 12);
//!     }
//! }
//! let tree = trace.tree();
//! assert!(tree.is_well_formed());
//! assert_eq!(tree.spans[1].parent, Some(0));
//! assert_eq!(tree.spans[1].counters, vec![("extract.pairs".to_owned(), 12)]);
//! ```

use std::sync::Mutex;
use std::time::Instant;

/// One node of a trace's span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`"extract"`, `"graph.build"`, `"solve.greedy"`, …).
    pub name: String,
    /// Index of the parent span in [`TraceTree::spans`]; `None` for the
    /// root. Parents always precede children (`parent < own index`).
    pub parent: Option<u32>,
    /// Start offset from the trace origin, monotonic microseconds.
    pub start_us: u64,
    /// End offset from the trace origin; `>= start_us` once closed.
    pub end_us: u64,
    /// Counters attached while this span was open, insertion-ordered,
    /// summed per name.
    pub counters: Vec<(String, u64)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

#[derive(Debug, Default)]
struct TraceInner {
    spans: Vec<SpanRecord>,
    /// Indices of currently-open spans, outermost first.
    stack: Vec<usize>,
}

/// A request-scoped trace: a u64 id plus a growing span tree.
///
/// Thread-safe (`&self` everywhere); see the module docs for the
/// sharing model.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    origin: Instant,
    inner: Mutex<TraceInner>,
}

impl Trace {
    /// A fresh trace with the given id; the origin clock starts now.
    pub fn new(id: u64) -> Self {
        Trace {
            id,
            origin: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Monotonic microseconds since the trace was created.
    pub fn elapsed_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open a child span of the innermost open span (or the root). The
    /// returned guard closes the span on drop — including drops during
    /// panic unwinding, so trees from panicking requests stay
    /// well-formed.
    pub fn span(&self, name: &str) -> TraceSpanGuard<'_> {
        let start = self.elapsed_us();
        let mut inner = self.lock();
        let parent = inner.stack.last().map(|&i| i as u32);
        let idx = inner.spans.len();
        inner.spans.push(SpanRecord {
            name: name.to_owned(),
            parent,
            start_us: start,
            end_us: start,
            counters: Vec::new(),
        });
        inner.stack.push(idx);
        TraceSpanGuard { trace: self, idx }
    }

    fn close(&self, idx: usize) {
        let now = self.elapsed_us();
        let mut inner = self.lock();
        if let Some(pos) = inner.stack.iter().rposition(|&i| i == idx) {
            // Close this span and any still-open descendants above it
            // (possible only if a child guard leaked; keep the tree
            // well-nested regardless).
            for s in pos..inner.stack.len() {
                let open = inner.stack[s];
                inner.spans[open].end_us = now;
            }
            inner.stack.truncate(pos);
        }
    }

    /// Attach `n` to counter `name` on the innermost open span (the root
    /// span if none is open; dropped if the trace has no spans yet).
    /// Repeated counts under one span sum.
    pub fn count(&self, name: &str, n: u64) {
        let mut inner = self.lock();
        let Some(idx) = inner
            .stack
            .last()
            .copied()
            .or((!inner.spans.is_empty()).then_some(0))
        else {
            return;
        };
        let counters = &mut inner.spans[idx].counters;
        match counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = v.saturating_add(n),
            None => counters.push((name.to_owned(), n)),
        }
    }

    /// Record an externally measured interval as a closed child of the
    /// innermost open span — e.g. queue wait measured from an admission
    /// timestamp. `start` is clamped to the trace origin.
    pub fn record_span_between(&self, name: &str, start: Instant, end: Instant) {
        let start_us = start.saturating_duration_since(self.origin).as_micros() as u64;
        let end_us = end.saturating_duration_since(self.origin).as_micros() as u64;
        let mut inner = self.lock();
        let parent = inner.stack.last().map(|&i| i as u32);
        inner.spans.push(SpanRecord {
            name: name.to_owned(),
            parent,
            start_us,
            end_us: end_us.max(start_us),
            counters: Vec::new(),
        });
    }

    /// Snapshot the span tree built so far (open spans appear with
    /// `end_us == start_us` of their opening time).
    pub fn tree(&self) -> TraceTree {
        TraceTree {
            trace_id: self.id,
            spans: self.lock().spans.clone(),
        }
    }
}

/// RAII guard from [`Trace::span`]: closes the span on drop.
#[derive(Debug)]
pub struct TraceSpanGuard<'t> {
    trace: &'t Trace,
    idx: usize,
}

impl Drop for TraceSpanGuard<'_> {
    fn drop(&mut self) {
        self.trace.close(self.idx);
    }
}

/// An immutable snapshot of a [`Trace`]'s span tree — what the flight
/// recorder stores and the `/debug/traces/{id}` endpoint serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The owning trace's id.
    pub trace_id: u64,
    /// Spans in creation order; parents precede children, index 0 (when
    /// present) is the root.
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// Duration of the root span in microseconds (0 for an empty tree).
    /// This is the number a `Server-Timing: total` entry must quote so
    /// header and trace agree exactly.
    pub fn total_us(&self) -> u64 {
        self.spans.first().map_or(0, SpanRecord::dur_us)
    }

    /// Structural validity: parents precede their children, every
    /// interval is non-negative, and every child's interval nests within
    /// its parent's.
    pub fn is_well_formed(&self) -> bool {
        self.spans.iter().enumerate().all(|(i, s)| {
            if s.end_us < s.start_us {
                return false;
            }
            match s.parent {
                None => true,
                Some(p) => {
                    let p = p as usize;
                    p < i
                        && self.spans[p].start_us <= s.start_us
                        && s.end_us <= self.spans[p].end_us
                }
            }
        })
    }

    /// `(name, total µs)` over the root's *direct* children, summed per
    /// name in first-appearance order — the per-stage breakdown a
    /// `Server-Timing` header carries.
    pub fn stage_totals(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for s in self.spans.iter().filter(|s| s.parent == Some(0)) {
            match out.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, d)) => *d += s.dur_us(),
                None => out.push((s.name.clone(), s.dur_us())),
            }
        }
        out
    }

    /// The full tree as an osa-json value:
    ///
    /// ```text
    /// {"trace_id":7,"total_us":1234,"spans":[
    ///   {"name":"request","parent":null,"start_us":0,"end_us":1234,
    ///    "counters":{"greedy.gain_evals":81}}, ...]}
    /// ```
    pub fn to_json(&self) -> osa_json::Value {
        use osa_json::Value;
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".to_owned(), Value::String(s.name.clone())),
                    (
                        "parent".to_owned(),
                        s.parent.map_or(Value::Null, |p| Value::Number(p as f64)),
                    ),
                    ("start_us".to_owned(), Value::Number(s.start_us as f64)),
                    ("end_us".to_owned(), Value::Number(s.end_us as f64)),
                    ("dur_us".to_owned(), Value::Number(s.dur_us() as f64)),
                ];
                if !s.counters.is_empty() {
                    fields.push((
                        "counters".to_owned(),
                        Value::Object(
                            s.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                                .collect(),
                        ),
                    ));
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("trace_id".to_owned(), Value::Number(self.trace_id as f64)),
            ("total_us".to_owned(), Value::Number(self.total_us() as f64)),
            ("spans".to_owned(), Value::Array(spans)),
        ])
    }

    /// Chrome `trace_event` JSON for this tree alone (opens directly in
    /// `chrome://tracing` / Perfetto). See [`chrome_trace_json`] to
    /// merge several trees — e.g. one per corpus item — into one file.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(std::slice::from_ref(self))
    }

    fn chrome_events(&self, out: &mut Vec<osa_json::Value>) {
        use osa_json::Value;
        for s in &self.spans {
            let mut fields = vec![
                ("name".to_owned(), Value::String(s.name.clone())),
                ("ph".to_owned(), Value::String("X".to_owned())),
                ("ts".to_owned(), Value::Number(s.start_us as f64)),
                ("dur".to_owned(), Value::Number(s.dur_us() as f64)),
                ("pid".to_owned(), Value::Number(1.0)),
                ("tid".to_owned(), Value::Number(self.trace_id as f64)),
            ];
            if !s.counters.is_empty() {
                fields.push((
                    "args".to_owned(),
                    Value::Object(
                        s.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                            .collect(),
                    ),
                ));
            }
            out.push(Value::Object(fields));
        }
    }
}

/// Merge several trace trees into one Chrome `trace_event` JSON array
/// (`ph:"X"` complete events; each tree renders as its own `tid`, so
/// `osars summarize --item all --trace-out` shows one track per item).
pub fn chrome_trace_json(trees: &[TraceTree]) -> String {
    let mut events = Vec::new();
    for t in trees {
        t.chrome_events(&mut events);
    }
    osa_json::to_string(&osa_json::Value::Array(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_counters_attach_to_the_open_span() {
        let trace = Trace::new(42);
        {
            let _root = trace.span("request");
            {
                let _a = trace.span("extract");
                trace.count("extract.pairs", 3);
                trace.count("extract.pairs", 2);
            }
            {
                let _b = trace.span("solve.greedy");
                trace.count("greedy.gain_evals", 7);
            }
            trace.count("on.root", 1);
        }
        let tree = trace.tree();
        assert_eq!(tree.trace_id, 42);
        assert!(tree.is_well_formed(), "{tree:?}");
        let names: Vec<&str> = tree.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["request", "extract", "solve.greedy"]);
        assert_eq!(tree.spans[0].parent, None);
        assert_eq!(tree.spans[1].parent, Some(0));
        assert_eq!(tree.spans[2].parent, Some(0));
        assert_eq!(
            tree.spans[1].counters,
            vec![("extract.pairs".to_owned(), 5)]
        );
        assert_eq!(tree.spans[0].counters, vec![("on.root".to_owned(), 1)]);
        // Stage totals cover the two direct children.
        let stage_totals = tree.stage_totals();
        let stages: Vec<&str> = stage_totals.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(stages, ["extract", "solve.greedy"]);
    }

    #[test]
    fn guards_dropped_during_unwinding_close_their_spans() {
        let trace = Trace::new(1);
        let root = trace.span("request");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _inner = trace.span("compute");
            panic!("boom");
        }));
        assert!(result.is_err());
        drop(root);
        let tree = trace.tree();
        assert!(tree.is_well_formed(), "{tree:?}");
        assert_eq!(tree.spans.len(), 2);
        assert!(tree.spans[1].end_us <= tree.spans[0].end_us);
    }

    #[test]
    fn externally_measured_intervals_are_clamped_children() {
        let trace = Trace::new(9);
        let admitted = Instant::now();
        let _root = trace.span("request");
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.record_span_between("queue.wait", admitted, Instant::now());
        drop(_root);
        let tree = trace.tree();
        assert!(tree.is_well_formed(), "{tree:?}");
        assert_eq!(tree.spans[1].name, "queue.wait");
        assert_eq!(tree.spans[1].parent, Some(0));
        assert!(tree.spans[1].dur_us() >= 1_000);
    }

    #[test]
    fn json_and_chrome_exports_parse() {
        let trace = Trace::new(3);
        {
            let _root = trace.span("request");
            let _c = trace.span("extract");
            trace.count("extract.pairs", 4);
        }
        let tree = trace.tree();
        let v = tree.to_json();
        assert_eq!(v.get("trace_id").and_then(osa_json::Value::as_u64), Some(3));
        let reparsed = osa_json::parse(&osa_json::to_string(&v)).expect("tree JSON parses");
        assert_eq!(reparsed, v);

        let chrome = osa_json::parse(&tree.to_chrome_json()).expect("chrome JSON parses");
        let osa_json::Value::Array(events) = &chrome else {
            panic!("chrome export must be an array: {chrome:?}");
        };
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert_eq!(e.get("tid").and_then(osa_json::Value::as_u64), Some(3));
        }
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("extract.pairs"))
                .and_then(osa_json::Value::as_u64),
            Some(4)
        );
    }

    #[test]
    fn well_formedness_rejects_broken_trees() {
        let ok = SpanRecord {
            name: "root".into(),
            parent: None,
            start_us: 0,
            end_us: 100,
            counters: Vec::new(),
        };
        // Child overrunning its parent.
        let bad_child = TraceTree {
            trace_id: 0,
            spans: vec![
                ok.clone(),
                SpanRecord {
                    name: "late".into(),
                    parent: Some(0),
                    start_us: 50,
                    end_us: 150,
                    counters: Vec::new(),
                },
            ],
        };
        assert!(!bad_child.is_well_formed());
        // Negative interval.
        let bad_interval = TraceTree {
            trace_id: 0,
            spans: vec![SpanRecord {
                end_us: 0,
                start_us: 10,
                ..ok.clone()
            }],
        };
        assert!(!bad_interval.is_well_formed());
        // Parent pointing forward.
        let bad_parent = TraceTree {
            trace_id: 0,
            spans: vec![SpanRecord {
                parent: Some(5),
                ..ok
            }],
        };
        assert!(!bad_parent.is_well_formed());
    }
}
