//! The Section 4.1 initialization: the edge-weighted bipartite coverage
//! graph shared by every algorithm and every problem variant.

use std::collections::HashMap;

use osa_ontology::Hierarchy;

use crate::Pair;

/// Which problem variant a [`CoverageGraph`] was built for (informational;
/// the algorithms are granularity-agnostic, exactly as in Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// k-Pairs Coverage: each candidate is a single pair.
    Pairs,
    /// k-Sentences Coverage: each candidate is a sentence's pair set.
    Sentences,
    /// k-Reviews Coverage: each candidate is a review's pair set.
    Reviews,
}

/// The bipartite graph `G = (U, W, E)` of Section 4.1: `U` are the
/// selection candidates (pairs, sentences, or reviews), `W` the
/// concept-sentiment pairs to cover, and an edge `(u, q)` with weight `d`
/// means candidate `u` covers pair `q` at distance `d` (the minimum over
/// the candidate's member pairs, per Section 4.5).
///
/// The virtual root is *not* a candidate; its coverage of every pair is
/// recorded in [`root_dist`](CoverageGraph::root_dist), so the cost of any
/// selection is always finite (Definition 2 takes the min over `F ∪ {r}`).
#[derive(Debug, Clone)]
pub struct CoverageGraph {
    granularity: Granularity,
    /// `cand_edges[u]` = sorted `(pair, dist)` covered by candidate `u`.
    cand_edges: Vec<Vec<(u32, u32)>>,
    /// Reverse adjacency: `pair_edges[q]` = `(candidate, dist)`.
    pair_edges: Vec<Vec<(u32, u32)>>,
    /// Distance from the virtual root to each pair (= concept depth).
    root_dist: Vec<u32>,
    /// Multiplicity of each pair (1 unless built from compressed pairs).
    pair_weight: Vec<u64>,
}

impl CoverageGraph {
    /// Build the graph for **k-Pairs Coverage**: every pair is both a
    /// candidate and a coverage target.
    pub fn for_pairs(h: &Hierarchy, pairs: &[Pair], eps: f64) -> Self {
        let groups: Vec<Vec<usize>> = (0..pairs.len()).map(|i| vec![i]).collect();
        Self::build(h, pairs, &groups, eps, Granularity::Pairs, None)
    }

    /// Build the k-Pairs graph over *compressed* pairs: `weights[q]` is
    /// the multiplicity of `pairs[q]` (see [`compress_pairs`]). Costs are
    /// identical to the uncompressed instance, but the graph is as small
    /// as the number of distinct pairs.
    pub fn for_weighted_pairs(h: &Hierarchy, pairs: &[Pair], weights: &[u64], eps: f64) -> Self {
        assert_eq!(pairs.len(), weights.len(), "one weight per pair");
        let groups: Vec<Vec<usize>> = (0..pairs.len()).map(|i| vec![i]).collect();
        Self::build(h, pairs, &groups, eps, Granularity::Pairs, Some(weights))
    }

    /// Build the graph for **k-Reviews/Sentences Coverage**: candidate `u`
    /// is the set of pairs `groups[u]` (indices into `pairs`).
    pub fn for_groups(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: &[Vec<usize>],
        eps: f64,
        granularity: Granularity,
    ) -> Self {
        Self::build(h, pairs, groups, eps, granularity, None)
    }

    /// The two-pass construction of Section 4.1: bucket candidate pairs by
    /// concept, then for each target pair walk its concept's ancestors and
    /// connect every bucketed candidate within the sentiment threshold
    /// (no threshold for candidates sitting on the root concept).
    fn build(
        h: &Hierarchy,
        pairs: &[Pair],
        groups: &[Vec<usize>],
        eps: f64,
        granularity: Granularity,
        weights: Option<&[u64]>,
    ) -> Self {
        assert!(eps >= 0.0, "sentiment threshold must be non-negative");
        let n_pairs = pairs.len();
        let n_cands = groups.len();

        // Pass 1: bucket (candidate, sentiment) by member-pair concept.
        let mut buckets: Vec<Vec<(u32, f64)>> = vec![Vec::new(); h.node_count()];
        for (u, members) in groups.iter().enumerate() {
            for &pi in members {
                let p = pairs[pi];
                buckets[p.concept.index()].push((u as u32, p.sentiment));
            }
        }

        // Pass 2: for each target pair, DFS/BFS up the ancestors.
        let root = h.root();
        let mut cand_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_cands];
        let mut root_dist = Vec::with_capacity(n_pairs);
        // Reused scratch: candidate -> best distance for the current pair.
        let mut best: HashMap<u32, u32> = HashMap::new();
        for (qi, q) in pairs.iter().enumerate() {
            root_dist.push(h.depth(q.concept));
            best.clear();
            for (anc, dist) in h.ancestors_with_dist(q.concept) {
                let is_root = anc == root;
                for &(u, s) in &buckets[anc.index()] {
                    if is_root || (s - q.sentiment).abs() <= eps {
                        best.entry(u)
                            .and_modify(|d| *d = (*d).min(dist))
                            .or_insert(dist);
                    }
                }
            }
            for (&u, &d) in &best {
                cand_edges[u as usize].push((qi as u32, d));
            }
        }
        for e in &mut cand_edges {
            e.sort_unstable();
        }
        let mut pair_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_pairs];
        for (u, edges) in cand_edges.iter().enumerate() {
            for &(q, d) in edges {
                pair_edges[q as usize].push((u as u32, d));
            }
        }

        let pair_weight = match weights {
            Some(w) => w.to_vec(),
            None => vec![1; n_pairs],
        };
        let obs = osa_obs::global();
        obs.add("graph.builds", 1);
        obs.add(
            "graph.edges",
            cand_edges.iter().map(|e| e.len() as u64).sum(),
        );
        CoverageGraph {
            granularity,
            cand_edges,
            pair_edges,
            root_dist,
            pair_weight,
        }
    }

    /// Problem variant this graph was built for.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Number of selection candidates `|U|`.
    pub fn num_candidates(&self) -> usize {
        self.cand_edges.len()
    }

    /// Number of coverage targets `|W|`.
    pub fn num_pairs(&self) -> usize {
        self.root_dist.len()
    }

    /// Number of coverage edges `|E|` (excluding the implicit root edges).
    pub fn num_edges(&self) -> usize {
        self.cand_edges.iter().map(Vec::len).sum()
    }

    /// Pairs covered by candidate `u`, with distances.
    pub fn covered_by(&self, u: usize) -> &[(u32, u32)] {
        &self.cand_edges[u]
    }

    /// Candidates covering pair `q`, with distances.
    pub fn coverers_of(&self, q: usize) -> &[(u32, u32)] {
        &self.pair_edges[q]
    }

    /// Distance from the virtual root to pair `q`.
    pub fn root_dist(&self, q: usize) -> u32 {
        self.root_dist[q]
    }

    /// Multiplicity of pair `q` (1 unless built from compressed pairs).
    pub fn pair_weight(&self, q: usize) -> u64 {
        self.pair_weight[q]
    }

    /// Cost of the empty summary: every pair served by the root.
    pub fn root_cost(&self) -> u64 {
        self.root_dist
            .iter()
            .zip(&self.pair_weight)
            .map(|(&d, &w)| u64::from(d) * w)
            .sum()
    }

    /// The Definition 2 cost `C(F, P)` of selecting candidates `selected`.
    pub fn cost_of(&self, selected: &[usize]) -> u64 {
        let mut best = self.root_dist.clone();
        for &u in selected {
            for &(q, d) in &self.cand_edges[u] {
                let b = &mut best[q as usize];
                if d < *b {
                    *b = d;
                }
            }
        }
        best.iter()
            .zip(&self.pair_weight)
            .map(|(&d, &w)| u64::from(d) * w)
            .sum()
    }

    /// Per-pair serving distances for a selection (used by metrics).
    pub fn serving_distances(&self, selected: &[usize]) -> Vec<u32> {
        let mut best = self.root_dist.clone();
        for &u in selected {
            for &(q, d) in &self.cand_edges[u] {
                let b = &mut best[q as usize];
                if d < *b {
                    *b = d;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_ontology::{Hierarchy, HierarchyBuilder, NodeId};

    /// r -> a -> c ; r -> b   (a tiny tree)
    fn tree() -> (Hierarchy, NodeId, NodeId, NodeId, NodeId) {
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a = bl.add_node("a");
        let b = bl.add_node("b");
        let c = bl.add_node("c");
        bl.add_edge(r, a).unwrap();
        bl.add_edge(r, b).unwrap();
        bl.add_edge(a, c).unwrap();
        (bl.build().unwrap(), r, a, b, c)
    }

    #[test]
    fn pairs_graph_edges_match_definition() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![
            Pair::new(a, 0.5), // 0
            Pair::new(c, 0.4), // 1: covered by 0 (dist 1) and itself
            Pair::new(b, 0.9), // 2: only itself
        ];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        assert_eq!(g.num_candidates(), 3);
        assert_eq!(g.num_pairs(), 3);
        assert_eq!(g.covered_by(0), &[(0, 0), (1, 1)]);
        assert_eq!(g.covered_by(1), &[(1, 0)]);
        assert_eq!(g.covered_by(2), &[(2, 0)]);
        assert_eq!(g.root_dist(1), 2);
        assert_eq!(g.coverers_of(1), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn eps_controls_density() {
        let (h, _r, a, _b, c) = tree();
        let pairs = vec![Pair::new(a, 0.9), Pair::new(c, 0.0)];
        let tight = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let loose = CoverageGraph::for_pairs(&h, &pairs, 1.0);
        // Self-edges always exist; the cross edge only at eps >= 0.9.
        assert_eq!(tight.num_edges(), 2);
        assert_eq!(loose.num_edges(), 3);
    }

    #[test]
    fn root_concept_pair_covers_everything() {
        let (h, r, a, _b, c) = tree();
        let pairs = vec![Pair::new(r, 0.0), Pair::new(a, 1.0), Pair::new(c, -1.0)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.1);
        // Candidate 0 sits on the root: covers all three pairs despite the
        // sentiment gaps, at depth distances.
        assert_eq!(g.covered_by(0), &[(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn cost_of_empty_selection_is_root_cost() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![Pair::new(a, 0.0), Pair::new(b, 0.0), Pair::new(c, 0.0)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        assert_eq!(g.root_cost(), 1 + 1 + 2);
        assert_eq!(g.cost_of(&[]), g.root_cost());
    }

    #[test]
    fn cost_decreases_monotonically() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![Pair::new(a, 0.0), Pair::new(b, 0.0), Pair::new(c, 0.1)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let c0 = g.cost_of(&[]);
        let c1 = g.cost_of(&[0]);
        let c2 = g.cost_of(&[0, 1]);
        assert!(c1 <= c0 && c2 <= c1);
        // Selecting pair on `a` serves itself (0) and c (1); b stays at root (1).
        assert_eq!(c1, 1 + 1);
    }

    #[test]
    fn group_candidates_take_min_over_members() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![
            Pair::new(a, 0.0), // 0
            Pair::new(b, 0.0), // 1
            Pair::new(c, 0.0), // 2
        ];
        // One "sentence" containing pairs on a and b.
        let groups = vec![vec![0, 1], vec![2]];
        let g = CoverageGraph::for_groups(&h, &pairs, &groups, 0.5, Granularity::Sentences);
        assert_eq!(g.granularity(), Granularity::Sentences);
        assert_eq!(g.num_candidates(), 2);
        // Sentence 0 covers pair 0 (d 0), pair 1 (d 0), pair 2 (d 1 via a).
        assert_eq!(g.covered_by(0), &[(0, 0), (1, 0), (2, 1)]);
        // Selecting just that sentence zeroes everything except c at 1.
        assert_eq!(g.cost_of(&[0]), 1);
    }

    #[test]
    fn duplicate_member_concepts_keep_min_distance() {
        let (h, _r, a, _b, c) = tree();
        let pairs = vec![Pair::new(a, 0.0), Pair::new(c, 0.0), Pair::new(c, 0.05)];
        // A review mentioning a and c: covers pair 2 at distance 0 (via its
        // own c member), not 1 (via a).
        let groups = vec![vec![0, 1]];
        let g = CoverageGraph::for_groups(&h, &pairs, &groups, 0.5, Granularity::Reviews);
        let edge = g.covered_by(0).iter().find(|&&(q, _)| q == 2).copied();
        assert_eq!(edge, Some((2, 0)));
    }

    #[test]
    fn serving_distances_match_cost() {
        let (h, _r, a, b, c) = tree();
        let pairs = vec![Pair::new(a, 0.2), Pair::new(b, -0.3), Pair::new(c, 0.2)];
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        for sel in [vec![], vec![0], vec![1, 2], vec![0, 1, 2]] {
            let dists = g.serving_distances(&sel);
            let total: u64 = dists.iter().map(|&d| u64::from(d)).sum();
            assert_eq!(total, g.cost_of(&sel));
        }
    }
}
