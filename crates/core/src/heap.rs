//! An indexed binary max-heap with decrease-key, backing Algorithm 2.

/// Max-heap over items `0..n` keyed by `u64` gains, supporting
/// `decrease_key` in `O(log n)` — exactly what the greedy algorithm's
/// two-hop updates need (submodularity means keys only ever decrease).
///
/// Ties are broken deterministically by the *smallest* item id, so
/// `pop_max` defines a total order. The lazy (CELF) summarizer uses the
/// same tie-break, which is what makes eager and lazy greedy select
/// byte-identical summaries instead of agreeing only "up to ties".
#[derive(Debug, Clone)]
pub struct IndexedMaxHeap {
    /// Heap array of item ids.
    heap: Vec<u32>,
    /// `pos[item]` = index in `heap`, or `usize::MAX` when removed.
    pos: Vec<usize>,
    /// Current key per item (valid while the item is in the heap).
    keys: Vec<u64>,
}

const REMOVED: usize = usize::MAX;

impl IndexedMaxHeap {
    /// Build a heap over items `0..keys.len()` in `O(n)`.
    pub fn new(keys: Vec<u64>) -> Self {
        let n = keys.len();
        let mut h = IndexedMaxHeap {
            heap: (0..n as u32).collect(),
            pos: (0..n).collect(),
            keys,
        };
        for i in (0..n / 2).rev() {
            h.sift_down(i);
        }
        h
    }

    /// Number of items still in the heap.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the heap empty?
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Is `item` still in the heap?
    pub fn contains(&self, item: u32) -> bool {
        self.pos[item as usize] != REMOVED
    }

    /// Current key of `item` (meaningful only while it is in the heap).
    pub fn key(&self, item: u32) -> u64 {
        self.keys[item as usize]
    }

    /// Does `a` order before `b`? Larger key first, smaller id on ties.
    fn beats(&self, a: u32, b: u32) -> bool {
        let (ka, kb) = (self.keys[a as usize], self.keys[b as usize]);
        ka > kb || (ka == kb && a < b)
    }

    /// Remove and return the item with the largest key (smallest id on
    /// ties).
    pub fn pop_max(&mut self) -> Option<(u32, u64)> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let key = self.keys[top as usize];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = REMOVED;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some((top, key))
    }

    /// Lower `item`'s key to `new_key`. No-op if the item was removed or
    /// the key is not actually lower.
    pub fn decrease_key(&mut self, item: u32, new_key: u64) {
        let p = self.pos[item as usize];
        if p == REMOVED || new_key >= self.keys[item as usize] {
            return;
        }
        self.keys[item as usize] = new_key;
        self.sift_down(p);
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n && self.beats(self.heap[l], self.heap[largest]) {
                largest = l;
            }
            if r < n && self.beats(self.heap[r], self.heap[largest]) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            self.pos[self.heap[i] as usize] = i;
            self.pos[self.heap[largest] as usize] = largest;
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_descending_order() {
        let mut h = IndexedMaxHeap::new(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop_max() {
            out.push(k);
        }
        assert_eq!(out, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedMaxHeap::new(vec![10, 20, 30]);
        h.decrease_key(2, 5);
        assert_eq!(h.pop_max(), Some((1, 20)));
        assert_eq!(h.pop_max(), Some((0, 10)));
        assert_eq!(h.pop_max(), Some((2, 5)));
        assert!(h.pop_max().is_none());
    }

    #[test]
    fn decrease_on_removed_item_is_noop() {
        let mut h = IndexedMaxHeap::new(vec![1, 2]);
        let (top, _) = h.pop_max().unwrap();
        assert_eq!(top, 1);
        assert!(!h.contains(1));
        h.decrease_key(1, 0); // must not panic or corrupt
        assert_eq!(h.pop_max(), Some((0, 1)));
    }

    #[test]
    fn increase_attempt_is_ignored() {
        let mut h = IndexedMaxHeap::new(vec![5, 7]);
        h.decrease_key(0, 100); // not a decrease → ignored
        assert_eq!(h.pop_max(), Some((1, 7)));
        assert_eq!(h.pop_max(), Some((0, 5)));
    }

    #[test]
    fn contains_and_len_track_state() {
        let mut h = IndexedMaxHeap::new(vec![1, 2, 3]);
        assert_eq!(h.len(), 3);
        assert!(h.contains(0) && h.contains(1) && h.contains(2));
        h.pop_max();
        assert_eq!(h.len(), 2);
        assert!(!h.contains(2));
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_heap_pops_nothing() {
        let mut h = IndexedMaxHeap::new(Vec::new());
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.pop_max(), None);
        // Popping an already-empty heap stays a no-op forever.
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn pop_after_exhaustion_keeps_returning_none() {
        let mut h = IndexedMaxHeap::new(vec![4, 2]);
        assert!(h.pop_max().is_some());
        assert!(h.pop_max().is_some());
        for _ in 0..3 {
            assert_eq!(h.pop_max(), None);
        }
        assert!(!h.contains(0) && !h.contains(1));
    }

    #[test]
    fn equal_keys_pop_in_ascending_id_order() {
        let mut h = IndexedMaxHeap::new(vec![7; 5]);
        let mut items: Vec<u32> = Vec::new();
        while let Some((item, key)) = h.pop_max() {
            assert_eq!(key, 7);
            items.push(item);
        }
        // The id tie-break makes the pop order total, not just the set.
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ties_after_decrease_key_still_pop_smallest_id_first() {
        // 1 and 3 end tied at 8; the smaller id must surface first.
        let mut h = IndexedMaxHeap::new(vec![2, 9, 5, 8]);
        h.decrease_key(1, 8);
        assert_eq!(h.pop_max(), Some((1, 8)));
        assert_eq!(h.pop_max(), Some((3, 8)));
        assert_eq!(h.pop_max(), Some((2, 5)));
        assert_eq!(h.pop_max(), Some((0, 2)));
    }

    #[test]
    fn decrease_to_zero_sinks_to_the_bottom() {
        let mut h = IndexedMaxHeap::new(vec![9, 5, 3]);
        h.decrease_key(0, 0);
        assert_eq!(h.key(0), 0);
        assert_eq!(h.pop_max(), Some((1, 5)));
        assert_eq!(h.pop_max(), Some((2, 3)));
        // The zeroed item comes out last but is never lost.
        assert_eq!(h.pop_max(), Some((0, 0)));
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn many_random_like_operations_stay_consistent() {
        // Deterministic pseudo-random workload cross-checked against a
        // naive reference.
        let n = 64u32;
        let mut keys: Vec<u64> = (0..n).map(|i| u64::from((i * 37) % 101)).collect();
        let mut h = IndexedMaxHeap::new(keys.clone());
        let mut alive: Vec<bool> = vec![true; n as usize];
        let mut state = 12345u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..200 {
            if rand() % 3 == 0 {
                // Reference max.
                let expect = alive
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a)
                    .map(|(i, _)| keys[i])
                    .max();
                match (h.pop_max(), expect) {
                    (Some((item, k)), Some(mk)) => {
                        assert_eq!(k, mk);
                        alive[item as usize] = false;
                    }
                    (None, None) => {}
                    other => panic!("mismatch: {other:?}"),
                }
            } else {
                let item = (rand() % u64::from(n)) as u32;
                if alive[item as usize] {
                    let nk = keys[item as usize].saturating_sub(rand() % 10);
                    h.decrease_key(item, nk);
                    if nk < keys[item as usize] {
                        keys[item as usize] = nk;
                    }
                }
            }
        }
    }
}
