//! Minimal self-contained JSON support for the OSA workspace.
//!
//! The build environment has no access to crates.io, so the snapshot
//! formats (`osa-ontology::io`, `osa-datasets::io`) are built on this
//! hand-rolled tree model instead of serde: a [`Value`] enum, a strict
//! recursive-descent parser ([`parse`]) and compact / pretty writers
//! ([`to_string`], [`to_string_pretty`]).
//!
//! Design points that matter for snapshot fidelity:
//!
//! - Object member order is **preserved** (members live in a `Vec`, not
//!   a map), so written documents are deterministic and diff-able.
//! - Numbers are `f64`; integral values in the `i64` range are written
//!   without a fractional part, everything else through Rust's
//!   shortest-roundtrip float formatting, so `parse(to_string(v)) == v`
//!   bit-for-bit for every finite double.
//! - The parser is strict UTF-8 JSON: it rejects trailing garbage,
//!   unterminated strings, bad escapes (including unpaired surrogates)
//!   and malformed numbers, with byte offsets in every error.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; member order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(n) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut out: u16 = 0;
        for _ in 0..4 {
            let b = self.bytes[self.pos];
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            out = out << 4 | u16::from(digit);
            self.pos += 1;
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 and we only stopped on ASCII
                // boundaries, so this slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..=0xDBFF).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(cp).expect("valid supplementary scalar")
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..=0xDFFF).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi)).expect("BMP scalar")
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; snapshots never contain them, but the
        // writer must still emit *valid* JSON if one sneaks in.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest-roundtrip formatting: parses back bit-equal.
        let _ = write!(out, "{n}");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, pretty.map(|d| d + 1));
            }
            if let Some(indent) = pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(out, item, pretty.map(|d| d + 1));
            }
            if let Some(indent) = pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serialize compactly (no whitespace).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None);
    out
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-0.5e2").unwrap(), Value::Number(-50.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_structures_preserving_order() {
        let v = parse(r#"{"b": [1, 2, {"x": null}], "a": "z"}"#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_str(), Some("z"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote \" slash \\ nl \n tab \t unicode 𝑨 é ß";
        let json = to_string(&Value::String(original.into()));
        assert_eq!(parse(&json).unwrap().as_str(), Some(original));
    }

    #[test]
    fn u_escapes_and_surrogate_pairs() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        // 𝑨 = U+1D468 = surrogate pair D835 DC68
        assert_eq!(parse(r#""𝑨""#).unwrap().as_str(), Some("𝑨"));
        assert!(parse(r#""\ud835""#).is_err());
        assert!(parse(r#""\udc68""#).is_err());
        assert!(parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn numbers_roundtrip_bit_exact() {
        for &n in &[
            0.0,
            -0.0,
            1.5,
            -2.25,
            0.1,
            1e-8,
            123456789.0,
            -7.0,
            0.3333333333333333,
        ] {
            let json = to_string(&Value::Number(n));
            let back = parse(&json).unwrap().as_f64().unwrap();
            assert_eq!(n.to_bits(), back.to_bits(), "{n} via {json}");
        }
    }

    #[test]
    fn integral_numbers_write_without_fraction() {
        assert_eq!(to_string(&Value::Number(3.0)), "3");
        assert_eq!(to_string(&Value::Number(-41.0)), "-41");
        assert_eq!(to_string(&Value::Number(2.5)), "2.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "[1 2]",
            "01",
            "1.",
            "-",
            "{\"a\":1} x",
            "\u{0007}",
            "\"ctl \u{0001}\"",
            "1e",
            "[,]",
            "{,}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn pretty_output_parses_back_identically() {
        let v =
            parse(r#"{"nodes":[{"name":"phone","terms":["phone","cellphone"]}],"edges":[[0,1]]}"#)
                .unwrap();
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }
}
