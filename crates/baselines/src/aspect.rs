//! The two sentiment-aware opinion-summarization baselines.

use std::collections::{HashMap, HashSet};

use osa_ontology::NodeId;

use crate::{SentenceRecord, SentenceSelector};

/// Boolean polarity of a continuous sentiment (the baselines' world view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Polarity {
    Positive,
    Negative,
}

fn polarity(s: f64) -> Option<Polarity> {
    if s > 0.0 {
        Some(Polarity::Positive)
    } else if s < 0.0 {
        Some(Polarity::Negative)
    } else {
        None // strictly neutral mentions carry no polarity signal
    }
}

type Key = (NodeId, Polarity);
/// Per-key mention list: `(sentence index, sentiment)` occurrences.
type Occurrences = HashMap<Key, Vec<(usize, f64)>>;

/// Count `(concept, polarity)` occurrences per sentence; returns the
/// counts and, per key, the sentence indices containing it (in order).
fn index_pairs(sentences: &[SentenceRecord]) -> (HashMap<Key, usize>, Occurrences) {
    let mut counts: HashMap<Key, usize> = HashMap::new();
    let mut occurrences: Occurrences = HashMap::new();
    for (si, s) in sentences.iter().enumerate() {
        for p in &s.pairs {
            if let Some(pol) = polarity(p.sentiment) {
                let key = (p.concept, pol);
                *counts.entry(key).or_default() += 1;
                occurrences.entry(key).or_default().push((si, p.sentiment));
            }
        }
    }
    (counts, occurrences)
}

/// Counts ranked descending, ties broken by concept id then polarity for
/// determinism.
fn ranked_keys(counts: &HashMap<Key, usize>) -> Vec<(Key, usize)> {
    let mut v: Vec<(Key, usize)> = counts.iter().map(|(&k, &c)| (k, c)).collect();
    v.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| a.0 .0.cmp(&b.0 .0))
            .then_with(|| (a.0 .1 == Polarity::Negative).cmp(&(b.0 .1 == Polarity::Negative)))
    });
    v
}

/// The "most popular" baseline (Hu & Liu adaptation, Section 5.3): rank
/// `(aspect, polarity)` pairs by the number of sentences mentioning them,
/// then emit one fresh representative sentence per pair until `k`
/// sentences are collected.
#[derive(Debug, Clone, Copy, Default)]
pub struct MostPopular;

impl SentenceSelector for MostPopular {
    fn select(&self, sentences: &[SentenceRecord], k: usize) -> Vec<usize> {
        let (counts, occ) = index_pairs(sentences);
        let ranked = ranked_keys(&counts);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut used: HashSet<usize> = HashSet::new();
        // Round-robin down the popularity ranking until k filled (a key
        // may contribute its 2nd, 3rd… sentence on later rounds).
        let mut round = 0usize;
        while chosen.len() < k && round < sentences.len().max(1) {
            let mut progressed = false;
            for (key, _) in &ranked {
                if chosen.len() >= k {
                    break;
                }
                if let Some((si, _)) = occ[key].iter().filter(|(si, _)| !used.contains(si)).nth(0) {
                    if round == 0 || occ[key].len() > round {
                        used.insert(*si);
                        chosen.push(*si);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
            round += 1;
        }
        chosen
    }

    fn name(&self) -> &'static str {
        "most-popular"
    }
}

/// The "proportional" baseline (Blair-Goldensohn et al. adaptation):
/// apportion the `k` summary slots among `(aspect, polarity)` pairs
/// proportionally to their frequency (largest-remainder method), then
/// represent each selected pair by its *most extremely polarized* fresh
/// sentence.
#[derive(Debug, Clone, Copy, Default)]
pub struct Proportional;

impl SentenceSelector for Proportional {
    fn select(&self, sentences: &[SentenceRecord], k: usize) -> Vec<usize> {
        let (counts, occ) = index_pairs(sentences);
        if counts.is_empty() || k == 0 {
            return Vec::new();
        }
        let ranked = ranked_keys(&counts);
        let total: usize = counts.values().sum();

        // Largest-remainder apportionment of k slots.
        let mut slots: Vec<(Key, usize, f64)> = ranked
            .iter()
            .map(|&(key, c)| {
                let exact = k as f64 * c as f64 / total as f64;
                (key, exact.floor() as usize, exact - exact.floor())
            })
            .collect();
        let assigned: usize = slots.iter().map(|&(_, s, _)| s).sum();
        let mut remaining = k.saturating_sub(assigned);
        slots.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("finite remainders")
                .then_with(|| a.0 .0.cmp(&b.0 .0))
        });
        for slot in slots.iter_mut() {
            if remaining == 0 {
                break;
            }
            slot.1 += 1;
            remaining -= 1;
        }

        // Pick the most polarized fresh sentence per slot.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut used: HashSet<usize> = HashSet::new();
        // Restore popularity order for stable output.
        slots.sort_by(|a, b| {
            counts[&b.0]
                .cmp(&counts[&a.0])
                .then_with(|| a.0 .0.cmp(&b.0 .0))
        });
        for (key, want, _) in &slots {
            let mut cands: Vec<(usize, f64)> = occ[key].clone();
            cands.sort_by(|a, b| {
                b.1.abs()
                    .partial_cmp(&a.1.abs())
                    .expect("finite sentiments")
                    .then_with(|| a.0.cmp(&b.0))
            });
            let mut taken = 0usize;
            for (si, _) in cands {
                if taken >= *want || chosen.len() >= k {
                    break;
                }
                if used.insert(si) {
                    chosen.push(si);
                    taken += 1;
                }
            }
        }
        // Backfill from the overall popularity ranking if apportionment
        // starved us (duplicate sentences across keys).
        if chosen.len() < k {
            for (key, _) in &ranked {
                for &(si, _) in &occ[key] {
                    if chosen.len() >= k {
                        break;
                    }
                    if used.insert(si) {
                        chosen.push(si);
                    }
                }
            }
        }
        chosen
    }

    fn name(&self) -> &'static str {
        "proportional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_core::Pair;
    use osa_ontology::{HierarchyBuilder, NodeId};

    fn nodes() -> (NodeId, NodeId) {
        // Build a real hierarchy just to mint NodeIds consistently.
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        let screen = b.add_node("screen");
        let battery = b.add_node("battery");
        b.add_edge(r, screen).unwrap();
        b.add_edge(r, battery).unwrap();
        let h = b.build().unwrap();
        (
            h.node_by_name("screen").unwrap(),
            h.node_by_name("battery").unwrap(),
        )
    }

    fn sent(text: &str, pairs: Vec<Pair>) -> SentenceRecord {
        SentenceRecord::new(text, pairs)
    }

    #[test]
    fn most_popular_picks_frequent_aspect_first() {
        let (screen, battery) = nodes();
        let sents = vec![
            sent("screen is great", vec![Pair::new(screen, 0.8)]),
            sent("screen rocks", vec![Pair::new(screen, 0.7)]),
            sent("screen shines", vec![Pair::new(screen, 0.6)]),
            sent("battery is bad", vec![Pair::new(battery, -0.5)]),
        ];
        let top = MostPopular.select(&sents, 1);
        assert_eq!(top, vec![0], "first sentence of the most popular pair");
        let top2 = MostPopular.select(&sents, 2);
        assert!(top2.contains(&3), "second slot goes to (battery, neg)");
    }

    #[test]
    fn most_popular_returns_distinct_sentences() {
        let (screen, battery) = nodes();
        let sents = vec![
            sent(
                "screen great battery bad",
                vec![Pair::new(screen, 0.8), Pair::new(battery, -0.6)],
            ),
            sent("screen fine", vec![Pair::new(screen, 0.4)]),
        ];
        let sel = MostPopular.select(&sents, 2);
        assert_eq!(sel.len(), 2);
        assert_ne!(sel[0], sel[1]);
    }

    #[test]
    fn proportional_allocates_by_frequency() {
        let (screen, battery) = nodes();
        // 4 screen-positive mentions vs 2 battery-negative: k=3 → 2 + 1.
        let sents = vec![
            sent("s1", vec![Pair::new(screen, 0.9)]),
            sent("s2", vec![Pair::new(screen, 0.3)]),
            sent("s3", vec![Pair::new(screen, 0.5)]),
            sent("s4", vec![Pair::new(screen, 0.2)]),
            sent("b1", vec![Pair::new(battery, -0.9)]),
            sent("b2", vec![Pair::new(battery, -0.2)]),
        ];
        let sel = Proportional.select(&sents, 3);
        assert_eq!(sel.len(), 3);
        let screen_count = sel.iter().filter(|&&i| i < 4).count();
        let battery_count = sel.iter().filter(|&&i| i >= 4).count();
        assert_eq!((screen_count, battery_count), (2, 1));
        // Most polarized representatives: s1 (0.9) and b1 (-0.9) included.
        assert!(sel.contains(&0));
        assert!(sel.contains(&4));
    }

    #[test]
    fn neutral_pairs_are_ignored() {
        let (screen, _) = nodes();
        let sents = vec![sent("meh", vec![Pair::new(screen, 0.0)])];
        assert!(MostPopular.select(&sents, 2).is_empty());
        assert!(Proportional.select(&sents, 2).is_empty());
    }

    #[test]
    fn k_zero_and_empty_input() {
        let sents: Vec<SentenceRecord> = Vec::new();
        assert!(MostPopular.select(&sents, 3).is_empty());
        assert!(Proportional.select(&sents, 0).is_empty());
    }

    #[test]
    fn positive_and_negative_are_distinct_keys() {
        let (screen, _) = nodes();
        let sents = vec![
            sent("screen great", vec![Pair::new(screen, 0.9)]),
            sent("screen awful", vec![Pair::new(screen, -0.9)]),
        ];
        let sel = MostPopular.select(&sents, 2);
        assert_eq!(sel.len(), 2, "both polarities represented");
    }
}
