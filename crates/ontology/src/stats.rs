//! Summary statistics over a hierarchy (used by experiment reports).

use crate::Hierarchy;

/// Structural statistics of a hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyStats {
    /// Number of concept nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Maximum depth (the paper's `Δ`).
    pub max_depth: u32,
    /// Mean depth over all nodes.
    pub mean_depth: f64,
    /// Mean number of ancestors per node (including the node itself);
    /// the paper's Section 4.1 argues initialization is near-linear
    /// because this is small.
    pub mean_ancestors: f64,
    /// Number of leaves (nodes without children).
    pub leaves: usize,
    /// Number of nodes with more than one parent (DAG-ness measure).
    pub multi_parent_nodes: usize,
    /// Mean branching factor over internal nodes.
    pub mean_branching: f64,
}

impl HierarchyStats {
    /// Compute statistics for `h`.
    pub fn compute(h: &Hierarchy) -> Self {
        let n = h.node_count();
        let mut total_anc = 0usize;
        let mut leaves = 0usize;
        let mut multi = 0usize;
        let mut internal = 0usize;
        let mut child_sum = 0usize;
        let mut depth_sum = 0u64;
        let index = h.ancestor_index();
        for node in h.nodes() {
            total_anc += index.ancestors(node).len();
            depth_sum += u64::from(h.depth(node));
            let kids = h.children(node).len();
            if kids == 0 {
                leaves += 1;
            } else {
                internal += 1;
                child_sum += kids;
            }
            if h.parents(node).len() > 1 {
                multi += 1;
            }
        }
        HierarchyStats {
            nodes: n,
            edges: h.edge_count(),
            max_depth: h.max_depth(),
            mean_depth: depth_sum as f64 / n as f64,
            mean_ancestors: total_anc as f64 / n as f64,
            leaves,
            multi_parent_nodes: multi,
            mean_branching: if internal == 0 {
                0.0
            } else {
                child_sum as f64 / internal as f64
            },
        }
    }
}

impl std::fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes:              {}", self.nodes)?;
        writeln!(f, "edges:              {}", self.edges)?;
        writeln!(f, "max depth:          {}", self.max_depth)?;
        writeln!(f, "mean depth:         {:.2}", self.mean_depth)?;
        writeln!(f, "mean ancestors:     {:.2}", self.mean_ancestors)?;
        writeln!(f, "leaves:             {}", self.leaves)?;
        writeln!(f, "multi-parent nodes: {}", self.multi_parent_nodes)?;
        write!(f, "mean branching:     {:.2}", self.mean_branching)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchyBuilder;

    #[test]
    fn stats_on_small_tree() {
        let mut b = HierarchyBuilder::new();
        b.add_edge_by_name("r", "a").unwrap();
        b.add_edge_by_name("r", "b").unwrap();
        b.add_edge_by_name("a", "c").unwrap();
        let h = b.build().unwrap();
        let s = HierarchyStats::compute(&h);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.leaves, 2);
        assert_eq!(s.multi_parent_nodes, 0);
        // ancestors: r:1, a:2, b:2, c:3 => mean 2.0
        assert!((s.mean_ancestors - 2.0).abs() < 1e-12);
        // branching: r has 2, a has 1 => mean 1.5
        assert!((s.mean_branching - 1.5).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("max depth"));
    }
}
