//! # osa-bench
//!
//! Shared harness code for the reproduction binaries (one per table /
//! figure of the paper) and the Criterion micro-benchmarks.
//!
//! Binaries (run with `cargo run -p osa-bench --release --bin <name>`):
//!
//! | bin | reproduces |
//! |---|---|
//! | `table1` | Table 1 — dataset characteristics |
//! | `fig3` | Fig. 3 — the cell-phone aspect hierarchy |
//! | `fig4_5` | Figs. 4 & 5 — time and cost of ILP/RR/Greedy × {pairs, sentences, reviews} |
//! | `fig6` | Fig. 6a/6b — sent-err(-penalized) of Greedy vs the 5 baselines |
//! | `elbow` | §5.3 — ε selection by the elbow method |
//!
//! Each binary prints aligned text to stdout and writes CSV rows under
//! `target/repro/`.

use std::io::Write as _;
use std::path::PathBuf;

use osa_core::{CoverageGraph, Granularity, Summarizer, Summary};
use osa_datasets::{
    extract_item, sample_grouped_pairs, synthetic_ontology, Corpus, CorpusConfig,
    SyntheticOntologyConfig,
};
use osa_eval::Stopwatch;
use osa_obs::Sink as _;
use osa_ontology::Hierarchy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Worker count for the reproduction binaries: `--jobs N` on the command
/// line wins, then the `OSA_JOBS` environment variable, then 1
/// (sequential — the cleanest setting for timing columns). `0` means
/// "all available cores". The raw request is resolved through
/// [`osa_runtime::effective_jobs`] so the 0-means-all-cores and upper
/// clamp rules live in exactly one place.
pub fn jobs_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let requested = args
        .windows(2)
        .find(|pair| pair[0] == "--jobs")
        .and_then(|pair| pair[1].parse().ok())
        .or_else(|| std::env::var("OSA_JOBS").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(1);
    osa_runtime::effective_jobs(requested)
}

/// Enable metrics collection when `OSA_METRICS=FILE` is in the
/// environment: the global [`osa_obs`] registry is switched on with a
/// JSONL sink on `FILE`. Returns the sink so [`finish_metrics`] can
/// append the final snapshot; `None` (and no side effects) when the
/// variable is unset or the file cannot be created.
pub fn init_metrics_from_env() -> Option<std::sync::Arc<osa_obs::JsonlSink>> {
    let path = std::env::var("OSA_METRICS").ok()?;
    let sink = match osa_obs::JsonlSink::create(std::path::Path::new(&path)) {
        Ok(s) => std::sync::Arc::new(s),
        Err(e) => {
            eprintln!("OSA_METRICS: cannot create '{path}': {e}");
            return None;
        }
    };
    let obs = osa_obs::global();
    obs.set_sink(sink.clone());
    obs.set_enabled(true);
    eprintln!("metrics streaming to {path}");
    Some(sink)
}

/// Append the final registry snapshot to the `OSA_METRICS` sink and
/// flush it. A no-op for `None`, so callers can write
/// `finish_metrics(init_metrics_from_env())` bracket-style.
pub fn finish_metrics(sink: Option<std::sync::Arc<osa_obs::JsonlSink>>) {
    if let Some(sink) = sink {
        sink.write_snapshot(&osa_obs::global().snapshot());
        sink.flush();
    }
}

/// Where the harness writes its CSV output.
pub fn repro_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/repro");
    std::fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// Write CSV lines (header + rows) to `target/repro/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = repro_dir().join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv file"));
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    f.flush().expect("flush csv");
    eprintln!("wrote {}", path.display());
}

/// One synthetic "doctor": its pair multiset plus the sentence/review
/// groupings, ready to build all three problem variants.
pub struct BenchItem {
    /// Concept-sentiment pairs of the item.
    pub pairs: Vec<osa_core::Pair>,
    /// Pair-index groups per sentence.
    pub sentence_groups: Vec<Vec<usize>>,
    /// Pair-index groups per review.
    pub review_groups: Vec<Vec<usize>>,
}

/// The quantitative workload of Figs. 4–5: a SNOMED-like synthetic
/// ontology and `items` sampled doctors with `mean_pairs`-sized pair
/// sets (clustered concepts/sentiments).
pub struct QuantWorkload {
    /// The synthetic concept hierarchy.
    pub hierarchy: Hierarchy,
    /// The per-item instances.
    pub items: Vec<BenchItem>,
}

/// Build the Figs. 4–5 workload deterministically.
pub fn quant_workload(items: usize, mean_pairs: usize, seed: u64) -> QuantWorkload {
    let hierarchy = synthetic_ontology(
        &SyntheticOntologyConfig {
            nodes: 3000,
            levels: 7,
            multi_parent_prob: 0.15,
        },
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let items = (0..items)
        .map(|_| {
            let n = rng.gen_range(mean_pairs / 2..=mean_pairs * 3 / 2).max(4);
            let clusters = rng.gen_range(2..=5usize);
            let (pairs, sentence_groups, review_groups) =
                sample_grouped_pairs(&hierarchy, n, clusters, 5, &mut rng);
            BenchItem {
                pairs,
                sentence_groups,
                review_groups,
            }
        })
        .collect();
    QuantWorkload { hierarchy, items }
}

/// The same Figs. 4–5 workload, but produced by the *real* text
/// pipeline: synthetic doctor reviews → sentence splitting → concept
/// matching → lexicon sentiment → pairs. Slower to build but exercises
/// every extraction code path (select with `OSA_SOURCE=text`).
pub fn text_workload(items: usize, seed: u64) -> QuantWorkload {
    // Smaller per-item review counts than doctors_small: the exact ILP
    // (dense tableau simplex) is the bottleneck, and extraction yields
    // several pairs per review.
    let cfg = CorpusConfig {
        items,
        min_reviews: 8,
        max_reviews: 24,
        mean_reviews: 14.0,
        ..CorpusConfig::doctors_small()
    };
    let corpus = Corpus::doctors(&cfg, seed);
    let matcher = osa_text::ConceptMatcher::from_hierarchy(&corpus.hierarchy);
    let lexicon = osa_text::SentimentLexicon::default();
    let items = corpus
        .items
        .iter()
        .map(|item| {
            let ex = extract_item(item, &matcher, &lexicon);
            BenchItem {
                sentence_groups: ex.sentence_groups(),
                review_groups: ex.review_groups(),
                pairs: ex.pairs,
            }
        })
        .collect();
    QuantWorkload {
        hierarchy: corpus.hierarchy,
        items,
    }
}

impl BenchItem {
    /// Build the coverage graph for one granularity.
    pub fn graph(&self, h: &Hierarchy, eps: f64, g: Granularity) -> CoverageGraph {
        match g {
            Granularity::Pairs => CoverageGraph::for_pairs(h, &self.pairs, eps),
            Granularity::Sentences => {
                CoverageGraph::for_groups(h, &self.pairs, &self.sentence_groups, eps, g)
            }
            Granularity::Reviews => {
                CoverageGraph::for_groups(h, &self.pairs, &self.review_groups, eps, g)
            }
        }
    }
}

/// Run one summarizer on a prebuilt graph, returning the summary and the
/// wall-clock microseconds of the selection call (saturating; see
/// [`osa_eval::duration_micros`]).
pub fn run_timed(s: &dyn Summarizer, graph: &CoverageGraph, k: usize) -> (Summary, f64) {
    Stopwatch::time(|| s.summarize(graph, k))
}

/// The heap-free greedy used by the `bench_ablation_heap` benchmark: it
/// recomputes every candidate's marginal gain from scratch at each of the
/// `k` iterations (`O(k · |E|)`), which is exactly what Algorithm 2's
/// max-heap with two-hop updates avoids.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveGreedy;

impl Summarizer for NaiveGreedy {
    fn summarize(&self, graph: &CoverageGraph, k: usize) -> Summary {
        let n = graph.num_candidates();
        let k = k.min(n);
        let mut best: Vec<u32> = (0..graph.num_pairs()).map(|q| graph.root_dist(q)).collect();
        let mut selected = Vec::with_capacity(k);
        let mut taken = vec![false; n];
        for _ in 0..k {
            let mut arg = None;
            let mut top = 0u64;
            for (u, &is_taken) in taken.iter().enumerate() {
                if is_taken {
                    continue;
                }
                let gain: u64 = graph
                    .covered_by(u)
                    .iter()
                    .map(|&(q, d)| {
                        u64::from(best[q as usize].saturating_sub(d))
                            * graph.pair_weight(q as usize)
                    })
                    .sum();
                if arg.is_none() || gain > top {
                    top = gain;
                    arg = Some(u);
                }
            }
            let Some(u) = arg else { break };
            taken[u] = true;
            selected.push(u);
            for &(q, d) in graph.covered_by(u) {
                let b = &mut best[q as usize];
                if d < *b {
                    *b = d;
                }
            }
        }
        let cost = best
            .iter()
            .enumerate()
            .map(|(q, &d)| u64::from(d) * graph.pair_weight(q))
            .sum();
        Summary { selected, cost }
    }

    fn name(&self) -> &'static str {
        "greedy-naive"
    }
}

/// Display label of a granularity, matching the paper's plots.
pub fn granularity_label(g: Granularity) -> &'static str {
    match g {
        Granularity::Pairs => "top pairs",
        Granularity::Sentences => "top sentences",
        Granularity::Reviews => "top reviews",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_flag_is_already_resolved() {
        // `jobs_flag` routes through `effective_jobs`, so the value it
        // hands to `BatchJob::jobs` is never 0 and never above the
        // runtime clamp — the 0-means-all-cores rule lives in one place.
        let j = jobs_flag();
        assert!(j >= 1);
        assert!(j <= osa_runtime::MAX_JOBS);
        assert_eq!(osa_runtime::effective_jobs(j), j);
    }

    #[test]
    fn workload_is_deterministic_and_sized() {
        let a = quant_workload(3, 40, 5);
        let b = quant_workload(3, 40, 5);
        assert_eq!(a.items.len(), 3);
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.pairs.len(), y.pairs.len());
            assert!(x.pairs.len() >= 20 && x.pairs.len() <= 60);
        }
    }

    #[test]
    fn graphs_build_for_all_granularities() {
        let w = quant_workload(1, 30, 7);
        let item = &w.items[0];
        for g in [
            Granularity::Pairs,
            Granularity::Sentences,
            Granularity::Reviews,
        ] {
            let cg = item.graph(&w.hierarchy, 0.5, g);
            assert_eq!(cg.num_pairs(), item.pairs.len());
            assert!(cg.num_candidates() > 0);
        }
    }
}
