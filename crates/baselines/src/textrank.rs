//! TextRank sentence extraction (Mihalcea & Tarau, 2004).

use std::collections::HashSet;

use osa_linalg::{pagerank, PageRankOptions};
use osa_text::{is_stopword, stem};

use crate::{SentenceRecord, SentenceSelector};

/// TextRank: build a sentence graph weighted by normalized content-word
/// overlap
///
/// ```text
/// sim(Si, Sj) = |words(Si) ∩ words(Sj)| / (log|Si| + log|Sj|)
/// ```
///
/// (the paper's original formula), run PageRank, take the top-k.
/// Sentiment-agnostic by design — that is exactly why the paper uses it
/// as a baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextRank;

fn content_words(tokens: &[String]) -> HashSet<String> {
    tokens
        .iter()
        .filter(|t| !is_stopword(t) && t.len() > 2)
        .map(|t| stem(t))
        .collect()
}

impl SentenceSelector for TextRank {
    fn select(&self, sentences: &[SentenceRecord], k: usize) -> Vec<usize> {
        let n = sentences.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let words: Vec<HashSet<String>> =
            sentences.iter().map(|s| content_words(&s.tokens)).collect();
        let mut weights = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let denom =
                    (words[i].len().max(2) as f64).ln() + (words[j].len().max(2) as f64).ln();
                if denom <= 0.0 {
                    continue;
                }
                let overlap = words[i].intersection(&words[j]).count() as f64;
                if overlap > 0.0 {
                    let w = overlap / denom;
                    weights[i * n + j] = w;
                    weights[j * n + i] = w;
                }
            }
        }
        let ranks = pagerank(&weights, n, PageRankOptions::default());
        top_k(&ranks, k)
    }

    fn name(&self) -> &'static str {
        "textrank"
    }
}

/// Indices of the `k` largest scores, descending, ties by lower index.
pub(crate) fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite scores")
            .then_with(|| a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(text: &str) -> SentenceRecord {
        SentenceRecord::new(text, Vec::new())
    }

    #[test]
    fn central_sentence_wins() {
        // Sentence 0 shares two content words with each neighbour, which
        // beats the single-word overlap among the others; 3 is an outlier.
        let sents = vec![
            rec("the camera quality and screen resolution impress"),
            rec("the camera quality impresses everyone"),
            rec("the screen resolution pleases reviewers"),
            rec("shipping box arrived quickly yesterday"),
        ];
        let sel = TextRank.select(&sents, 1);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn returns_k_distinct() {
        let sents = vec![
            rec("alpha beta gamma"),
            rec("alpha beta delta"),
            rec("beta gamma delta"),
        ];
        let sel = TextRank.select(&sents, 2);
        assert_eq!(sel.len(), 2);
        assert_ne!(sel[0], sel[1]);
    }

    #[test]
    fn empty_and_zero_k() {
        assert!(TextRank.select(&[], 3).is_empty());
        assert!(TextRank.select(&[rec("hello world")], 0).is_empty());
    }

    #[test]
    fn disconnected_sentences_get_uniform_rank() {
        let sents = vec![rec("aardvark unique"), rec("zebra distinct")];
        let sel = TextRank.select(&sents, 2);
        assert_eq!(sel, vec![0, 1], "uniform ranks → index order");
    }

    #[test]
    fn top_k_helper_orders_and_breaks_ties() {
        assert_eq!(top_k(&[0.1, 0.5, 0.5, 0.2], 3), vec![1, 2, 3]);
        assert_eq!(top_k(&[1.0], 5), vec![0]);
    }
}
