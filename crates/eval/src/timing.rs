//! Timing helpers for the quantitative experiments (Fig. 4).

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed microseconds (the unit the harness reports).
    pub fn micros(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e6
    }

    /// Time a closure, returning `(result, micros)`.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
        let sw = Stopwatch::start();
        let out = f();
        (out, sw.micros())
    }
}

/// Mean / min / max / count over a sample of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample count.
    pub count: usize,
}

impl SummaryStats {
    /// Compute stats over `samples`; `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        Some(SummaryStats {
            mean: sum / samples.len() as f64,
            min,
            max,
            count: samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_something() {
        let ((), us) = Stopwatch::time(|| std::thread::sleep(Duration::from_millis(2)));
        assert!(us >= 1_000.0, "got {us}µs");
    }

    #[test]
    fn stats_of_samples() {
        let s = SummaryStats::of(&[1.0, 2.0, 3.0, 6.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn stats_of_empty_is_none() {
        assert!(SummaryStats::of(&[]).is_none());
    }
}
