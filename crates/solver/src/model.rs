//! The LP/ILP model builder and solution types.

use crate::branch_bound::{self, IlpOptions};
use crate::SolverError;
use crate::{dual, simplex};

/// Which simplex variant to run for an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpMethod {
    /// Dual simplex when the model qualifies (non-negative shifted
    /// costs), primal otherwise — mirrors how the paper configures
    /// Gurobi, which picked dual simplex for this problem class.
    #[default]
    Auto,
    /// Two-phase primal simplex.
    Primal,
    /// Dual simplex from the all-slack basis (errors with
    /// [`SolverError::DualUnsupported`] on negative shifted costs).
    Dual,
}

/// Identifier of a decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤ rhs`
    Le,
    /// `= rhs`
    Eq,
    /// `≥ rhs`
    Ge,
}

#[derive(Debug, Clone)]
pub(crate) struct Var {
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal (within tolerance).
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// Branch & bound hit its node limit; the incumbent (if any) is
    /// returned but not proven optimal.
    NodeLimit,
}

/// Result of an LP or ILP solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Why the solver stopped.
    pub status: Status,
    /// Objective value at `values` (minimization). Meaningless unless the
    /// status is `Optimal` or `NodeLimit`-with-incumbent.
    pub objective: f64,
    /// One value per variable, in `VarId` order.
    pub values: Vec<f64>,
}

impl Solution {
    /// Read the value of a variable.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }
}

/// A linear (or mixed-integer linear) minimization model.
///
/// Build with [`add_var`](Model::add_var) /
/// [`add_int_var`](Model::add_int_var) /
/// [`add_constraint`](Model::add_constraint), then call
/// [`solve_lp`](Model::solve_lp) (integrality ignored) or
/// [`solve_ilp`](Model::solve_ilp).
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Var>,
    pub(crate) cons: Vec<Constraint>,
}

impl Model {
    /// New empty minimization model.
    pub fn minimize() -> Self {
        Model::default()
    }

    /// Add a continuous variable with bounds `lb ≤ x ≤ ub` (use
    /// `f64::INFINITY` for an unbounded `ub`) and objective coefficient
    /// `obj`.
    ///
    /// # Panics
    /// If `lb` is not finite, `lb > ub`, or `obj` is not finite — the
    /// solver requires finite lower bounds (all OSARS models have them).
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(lb.is_finite(), "lower bound must be finite");
        assert!(obj.is_finite(), "objective coefficient must be finite");
        assert!(lb <= ub, "lb must not exceed ub");
        self.vars.push(Var {
            lb,
            ub,
            obj,
            integer: false,
        });
        VarId(self.vars.len() - 1)
    }

    /// Add an integer variable (same contract as [`add_var`](Model::add_var)).
    pub fn add_int_var(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        let id = self.add_var(lb, ub, obj);
        self.vars[id.0].integer = true;
        id
    }

    /// Add a binary (0/1 integer) variable.
    pub fn add_bin_var(&mut self, obj: f64) -> VarId {
        self.add_int_var(0.0, 1.0, obj)
    }

    /// Add a linear constraint `Σ coefᵢ·xᵢ  cmp  rhs`. Terms on the same
    /// variable are summed.
    ///
    /// # Panics
    /// If any referenced variable does not exist or a coefficient/rhs is
    /// not finite.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        let mut combined: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        let mut sorted: Vec<(usize, f64)> = terms
            .iter()
            .map(|&(v, c)| {
                assert!(v.0 < self.vars.len(), "unknown variable in constraint");
                assert!(c.is_finite(), "coefficient must be finite");
                (v.0, c)
            })
            .collect();
        sorted.sort_unstable_by_key(|&(v, _)| v);
        for (v, c) in sorted {
            match combined.last_mut() {
                Some(last) if last.0 == v => last.1 += c,
                _ => combined.push((v, c)),
            }
        }
        combined.retain(|&(_, c)| c != 0.0);
        self.cons.push(Constraint {
            terms: combined,
            cmp,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Is any variable marked integer?
    pub fn has_integers(&self) -> bool {
        self.vars.iter().any(|v| v.integer)
    }

    /// Solve the LP relaxation (integrality is ignored) with the two-phase
    /// primal simplex (after presolve).
    pub fn solve_lp(&self) -> Result<Solution, SolverError> {
        self.solve_lp_with(LpMethod::Primal)
    }

    /// Solve the LP relaxation with an explicit simplex method. A light
    /// presolve (empty-row elimination, singleton-row bound tightening)
    /// runs first and can prove infeasibility outright.
    pub fn solve_lp_with(&self, method: LpMethod) -> Result<Solution, SolverError> {
        let reduced = match crate::presolve::presolve(self) {
            crate::presolve::Presolved::Model(m) => m,
            crate::presolve::Presolved::Infeasible => {
                return Ok(Solution {
                    status: Status::Infeasible,
                    objective: f64::INFINITY,
                    values: vec![0.0; self.num_vars()],
                })
            }
        };
        match method {
            LpMethod::Primal => simplex::solve(&reduced),
            LpMethod::Dual => dual::solve(&reduced),
            LpMethod::Auto => match dual::solve(&reduced) {
                // Not dual-applicable, or the (rarely) cycling-prone
                // dual ran out of iterations: use the primal.
                Err(SolverError::DualUnsupported | SolverError::IterationLimit) => {
                    simplex::solve(&reduced)
                }
                other => other,
            },
        }
    }

    /// Solve the mixed-integer model by branch & bound with default
    /// options.
    pub fn solve_ilp(&self) -> Result<Solution, SolverError> {
        self.solve_ilp_with(&IlpOptions::default())
    }

    /// Solve the mixed-integer model with explicit options.
    pub fn solve_ilp_with(&self, opts: &IlpOptions) -> Result<Solution, SolverError> {
        branch_bound::solve(self, opts, None)
    }

    /// Like [`Model::solve_ilp_with`], but also attaches the search's
    /// node/prune counters to `trace` (when one is provided). Passing
    /// `None` is exactly `solve_ilp_with`.
    pub fn solve_ilp_traced(
        &self,
        opts: &IlpOptions,
        trace: Option<&osa_obs::Trace>,
    ) -> Result<Solution, SolverError> {
        branch_bound::solve(self, opts, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_terms_are_combined_and_cleaned() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, 1.0, 1.0);
        let y = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 2.0), (x, 2.0), (y, -2.0)], Cmp::Le, 1.0);
        assert_eq!(m.cons[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn rejects_infinite_lb() {
        Model::minimize().add_var(f64::NEG_INFINITY, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_foreign_var() {
        let mut m = Model::minimize();
        m.add_constraint(&[(VarId(3), 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    fn flags_integrality() {
        let mut m = Model::minimize();
        m.add_var(0.0, 1.0, 0.0);
        assert!(!m.has_integers());
        m.add_bin_var(0.0);
        assert!(m.has_integers());
    }
}
