//! The shared interface of the baseline sentence selectors.

use osa_core::Pair;

/// One sentence of an item's reviews, as the baselines see it.
#[derive(Debug, Clone)]
pub struct SentenceRecord {
    /// Lowercase word tokens.
    pub tokens: Vec<String>,
    /// Concept-sentiment pairs extracted from the sentence (empty when
    /// the sentence mentions no known concept).
    pub pairs: Vec<Pair>,
}

impl SentenceRecord {
    /// Build a record from raw text and its extracted pairs.
    pub fn new(text: &str, pairs: Vec<Pair>) -> Self {
        SentenceRecord {
            tokens: osa_text::tokenize(text),
            pairs,
        }
    }
}

/// A top-k sentence selection strategy.
pub trait SentenceSelector {
    /// Select (up to) `k` distinct sentence indices.
    fn select(&self, sentences: &[SentenceRecord], k: usize) -> Vec<usize>;

    /// Display name (used by the Fig. 6 harness legend).
    fn name(&self) -> &'static str;
}
