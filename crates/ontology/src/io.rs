//! JSON (de)serialization of hierarchies.
//!
//! The on-disk representation is a flat node/edge list (not the internal
//! arena), which keeps the format stable, diff-able and independent of the
//! in-memory layout:
//!
//! ```json
//! {
//!   "nodes": [ { "name": "phone", "terms": ["phone", "cellphone"] }, ... ],
//!   "edges": [ [0, 1], [0, 2], ... ]
//! }
//! ```

use serde::{Deserialize, Serialize};

use crate::{Hierarchy, HierarchyBuilder, NodeId, OntologyError};

/// Serializable node record.
#[derive(Serialize, Deserialize)]
struct NodeRecord {
    name: String,
    terms: Vec<String>,
}

/// Serializable hierarchy document.
#[derive(Serialize, Deserialize)]
struct Document {
    nodes: Vec<NodeRecord>,
    /// `(parent_index, child_index)` pairs into `nodes`.
    edges: Vec<(u32, u32)>,
}

/// Serialize a hierarchy to a pretty-printed JSON string.
pub fn to_json(h: &Hierarchy) -> String {
    let doc = Document {
        nodes: h
            .nodes()
            .map(|n| NodeRecord {
                name: h.name(n).to_owned(),
                terms: h.terms(n).to_vec(),
            })
            .collect(),
        edges: h
            .nodes()
            .flat_map(|p| h.children(p).iter().map(move |c| (p.0, c.0)))
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("hierarchy document serializes")
}

/// Parse a hierarchy from its JSON representation, re-validating every
/// rooted-DAG invariant.
pub fn from_json(json: &str) -> Result<Hierarchy, OntologyError> {
    let doc: Document = serde_json::from_str(json).map_err(|e| OntologyError::Serde(e.to_string()))?;
    let mut b = HierarchyBuilder::new();
    for node in &doc.nodes {
        b.add_node_with_terms(&node.name, &node.terms);
    }
    let n = doc.nodes.len() as u32;
    for &(p, c) in &doc.edges {
        if p >= n || c >= n {
            return Err(OntologyError::UnknownNode);
        }
        b.add_edge(NodeId(p), NodeId(c))?;
    }
    b.build()
}

/// Write a hierarchy to a file as JSON.
pub fn save(h: &Hierarchy, path: &std::path::Path) -> Result<(), OntologyError> {
    std::fs::write(path, to_json(h))?;
    Ok(())
}

/// Load a hierarchy from a JSON file.
pub fn load(path: &std::path::Path) -> Result<Hierarchy, OntologyError> {
    from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node_with_terms("phone", &["phone", "cellphone"]);
        let s = b.add_node("screen");
        let bat = b.add_node_with_terms("battery", &["battery life"]);
        let res = b.add_node("resolution");
        b.add_edge(r, s).unwrap();
        b.add_edge(r, bat).unwrap();
        b.add_edge(s, res).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let h = sample();
        let h2 = from_json(&to_json(&h)).unwrap();
        assert_eq!(h.node_count(), h2.node_count());
        assert_eq!(h.edge_count(), h2.edge_count());
        assert_eq!(h.name(h.root()), h2.name(h2.root()));
        for n in h.nodes() {
            let m = h2.node_by_name(h.name(n)).unwrap();
            assert_eq!(h.terms(n), h2.terms(m));
            assert_eq!(h.depth(n), h2.depth(m));
        }
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let json = r#"{ "nodes": [{"name":"r","terms":["r"]}], "edges": [[0, 7]] }"#;
        assert!(matches!(from_json(json), Err(OntologyError::UnknownNode)));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(from_json("{"), Err(OntologyError::Serde(_))));
    }

    #[test]
    fn file_roundtrip() {
        let h = sample();
        let dir = std::env::temp_dir().join("osa_ontology_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.json");
        save(&h, &path).unwrap();
        let h2 = load(&path).unwrap();
        assert_eq!(h.node_count(), h2.node_count());
        std::fs::remove_file(&path).ok();
    }
}
