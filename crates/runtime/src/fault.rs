//! Deterministic, seeded fault injection for batch runs.
//!
//! A [`FaultPlan`] maps every item index to at most one [`Fault`] as a
//! pure function of `(plan seed, item index)` — the same SplitMix64 mix
//! as [`item_seed`](crate::item_seed) — so a plan assigns identical
//! faults no matter how many workers run the batch or in which order
//! items are claimed. That determinism is what lets the `osa-check`
//! harness assert that failed/retried sets are jobs-invariant and that
//! the surviving items' output is byte-identical to a fault-free run.

use crate::item_seed;

/// Uniform draw in `[0, 1)` from the 53 high bits of a mixed word.
fn unit(r: u64) -> f64 {
    (r >> 11) as f64 / (1u64 << 53) as f64
}

/// Seeded per-item fault assignment. Rates are cumulative-checked in
/// field order, so they should sum to at most 1.0; the remainder is the
/// probability of no fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream — independent of the corpus seed, so
    /// faults can be re-rolled without changing the workload.
    pub seed: u64,
    /// Probability an item panics on its first attempt only (a retry
    /// succeeds — models a transient glitch).
    pub transient_panic_rate: f64,
    /// Probability an item panics on every attempt (permanent failure).
    pub sticky_panic_rate: f64,
    /// Probability one extracted pair's sentiment is corrupted to NaN.
    /// The corruption bypasses [`osa_core::Pair::new`]'s sanitization;
    /// the pipeline detects the poisoned pair right after extraction
    /// and raises a typed [`InjectedPanic`] — a permanent, detected
    /// failure (the graph builder's own NaN guard remains as
    /// defense-in-depth, unit-tested in `osa-core`).
    pub nan_rate: f64,
    /// Probability the item's work is delayed before running. Delays
    /// perturb scheduling only; results must not change.
    pub delay_rate: f64,
    /// Exclusive upper bound of an injected delay, in microseconds.
    pub max_delay_micros: u64,
}

impl FaultPlan {
    /// The default fault mix used by `osars check --faults`: roughly a
    /// third of items faulted, split across every fault class.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_panic_rate: 0.12,
            sticky_panic_rate: 0.08,
            nan_rate: 0.08,
            delay_rate: 0.10,
            max_delay_micros: 400,
        }
    }

    /// A plan that injects nothing (useful as a control).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_panic_rate: 0.0,
            sticky_panic_rate: 0.0,
            nan_rate: 0.0,
            delay_rate: 0.0,
            max_delay_micros: 0,
        }
    }

    /// The fault assigned to `item` — a pure function of
    /// `(self.seed, item)`, independent of scheduling.
    pub fn fault_for(&self, item: usize) -> Fault {
        let r = item_seed(self.seed, item as u64);
        let u = unit(r);
        // A second, independent draw parameterizes the chosen fault.
        let param = item_seed(r, 0xFA);
        let mut edge = self.transient_panic_rate;
        if u < edge {
            return Fault::Panic {
                failing_attempts: 1,
            };
        }
        edge += self.sticky_panic_rate;
        if u < edge {
            return Fault::Panic {
                failing_attempts: u32::MAX,
            };
        }
        edge += self.nan_rate;
        if u < edge {
            return Fault::NanSentiment { slot: param };
        }
        edge += self.delay_rate;
        if u < edge {
            return Fault::Delay {
                micros: param % self.max_delay_micros.max(1),
            };
        }
        Fault::None
    }
}

impl Fault {
    /// Apply the sentiment-corruption part of this fault to an item's
    /// extracted pairs: [`Fault::NanSentiment`] poisons exactly one
    /// pair's sentiment (field-level write, deliberately bypassing
    /// [`osa_core::Pair::new`]'s sanitization so the graph builder's NaN
    /// guard is what catches it); every other variant is a no-op here.
    ///
    /// This is the single slot-mapping implementation shared by the
    /// batch and serve paths, total over all pair counts:
    /// zero pairs → untouched (no modulo-by-zero), one pair → that pair,
    /// `n` pairs → pair `slot % n`.
    pub fn apply_to_pairs(&self, pairs: &mut [osa_core::Pair]) {
        if let Fault::NanSentiment { slot } = *self {
            let n = pairs.len() as u64;
            if n > 0 {
                pairs[(slot % n) as usize].sentiment = f64::NAN;
            }
        }
    }
}

/// One item's injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the item runs normally.
    None,
    /// Panic while the attempt counter is below `failing_attempts`
    /// (`u32::MAX` = panic on every attempt, i.e. a sticky failure).
    Panic {
        /// Number of leading attempts that panic.
        failing_attempts: u32,
    },
    /// Corrupt the sentiment of extracted pair `slot % num_pairs` to
    /// NaN after extraction (no-op on items with no pairs).
    NanSentiment {
        /// Raw slot selector, reduced modulo the item's pair count.
        slot: u64,
    },
    /// Sleep for `micros` before doing the work.
    Delay {
        /// Injected delay in microseconds.
        micros: u64,
    },
}

/// Marker payload carried by every panic this codebase raises **on
/// purpose** — the fault plan's `Panic` and `NanSentiment` faults and
/// the daemon's `?inject=panic` hook. Raised via [`injected_panic`]
/// (`std::panic::panic_any`), so handlers recognize injection by
/// **payload type** (`downcast_ref::<InjectedPanic>`) instead of
/// substring-matching the message: a genuine bug whose panic text
/// happens to contain "injected" is no longer silenced.
#[derive(Debug)]
pub struct InjectedPanic(pub String);

/// Raise a deliberately injected panic carrying the typed
/// [`InjectedPanic`] marker payload.
pub fn injected_panic(message: String) -> ! {
    std::panic::panic_any(InjectedPanic(message))
}

/// Install a process-wide panic hook that suppresses the default
/// backtrace spam for [`InjectedPanic`] payloads only — injected
/// panics are provoked on purpose (fault plans, `?inject=panic`) and
/// answered by design, so a backtrace per poisoned item would drown
/// the log. Every other panic still prints through the previous hook.
/// Idempotent; shared by the serve daemon, the `osa-check` harness,
/// and their test binaries.
pub fn quiet_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// A permanently failed item in a [`BatchReport`](crate::BatchReport):
/// every attempt panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemFailure {
    /// Item index in the batch.
    pub item: usize,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// Panic message of the final attempt.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_assignment_is_deterministic() {
        let plan = FaultPlan::with_seed(7);
        for item in 0..200 {
            assert_eq!(plan.fault_for(item), plan.fault_for(item), "item {item}");
        }
        // Different seeds reshuffle the assignment.
        let other = FaultPlan::with_seed(8);
        assert!((0..200).any(|i| plan.fault_for(i) != other.fault_for(i)));
    }

    #[test]
    fn default_mix_hits_every_fault_class() {
        let plan = FaultPlan::with_seed(42);
        let faults: Vec<Fault> = (0..2000).map(|i| plan.fault_for(i)).collect();
        assert!(faults.contains(&Fault::None));
        assert!(faults.iter().any(|f| matches!(
            f,
            Fault::Panic {
                failing_attempts: 1
            }
        )));
        assert!(faults.iter().any(|f| matches!(
            f,
            Fault::Panic {
                failing_attempts: u32::MAX
            }
        )));
        assert!(faults
            .iter()
            .any(|f| matches!(f, Fault::NanSentiment { .. })));
        assert!(faults.iter().any(|f| matches!(f, Fault::Delay { .. })));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::none(3);
        assert!((0..500).all(|i| plan.fault_for(i) == Fault::None));
    }

    #[test]
    fn nan_slot_mapping_is_total_over_pair_counts() {
        use osa_core::Pair;
        use osa_ontology::NodeId;
        let fault = Fault::NanSentiment { slot: u64::MAX };
        // Zero pairs: must be a no-op, not a modulo-by-zero.
        let mut none: Vec<Pair> = Vec::new();
        fault.apply_to_pairs(&mut none);
        assert!(none.is_empty());
        // One pair: the only slot is poisoned whatever the selector is.
        let mut one = vec![Pair::new(NodeId::from_index(0), 0.5)];
        fault.apply_to_pairs(&mut one);
        assert!(one[0].sentiment.is_nan());
        // Many pairs: exactly `slot % n` is poisoned, the rest untouched.
        for slot in [0u64, 1, 2, 7, u64::MAX] {
            let mut many: Vec<Pair> = (0..5)
                .map(|i| Pair::new(NodeId::from_index(i), 0.25))
                .collect();
            Fault::NanSentiment { slot }.apply_to_pairs(&mut many);
            let hit = (slot % 5) as usize;
            for (i, p) in many.iter().enumerate() {
                assert_eq!(p.sentiment.is_nan(), i == hit, "slot {slot} pair {i}");
            }
        }
        // Non-NaN faults leave pairs alone.
        let mut pairs = vec![Pair::new(NodeId::from_index(0), 0.5)];
        for f in [
            Fault::None,
            Fault::Panic {
                failing_attempts: 1,
            },
            Fault::Delay { micros: 10 },
        ] {
            f.apply_to_pairs(&mut pairs);
        }
        assert_eq!(pairs[0].sentiment, 0.5);
    }

    #[test]
    fn delays_respect_the_bound() {
        let plan = FaultPlan {
            delay_rate: 1.0,
            ..FaultPlan::none(11)
        };
        for i in 0..500 {
            match plan.fault_for(i) {
                Fault::Delay { micros } => assert!(micros < plan.max_delay_micros.max(1)),
                f => panic!("expected a delay, got {f:?}"),
            }
        }
    }
}
