//! Phone-review scenario: the full qualitative comparison on one item —
//! our greedy ontology/sentiment-aware summarizer against all five
//! baselines, scored with the paper's sentiment-error measures (a
//! single-item version of Fig. 6).
//!
//! Run with: `cargo run --release --example phone_reviews`

use osars::baselines::{
    LexRank, LsaSummarizer, MostPopular, Proportional, SentenceRecord, SentenceSelector, TextRank,
};
use osars::core::{CoverageGraph, Granularity, GreedySummarizer, Pair, Summarizer};
use osars::datasets::{extract_item, Corpus, CorpusConfig};
use osars::eval::{sent_err, sent_err_penalized};
use osars::text::{ConceptMatcher, SentimentLexicon};

const EPS: f64 = 0.5;
const K: usize = 6;

fn main() {
    let corpus = Corpus::phones(&CorpusConfig::phones_small(), 4);
    let matcher = ConceptMatcher::from_hierarchy(&corpus.hierarchy);
    let lexicon = SentimentLexicon::default();
    let item = &corpus.items[0];
    let ex = extract_item(item, &matcher, &lexicon);

    println!(
        "item '{}': {} reviews, {} sentences, {} pairs; selecting k={K} sentences\n",
        item.name,
        item.reviews.len(),
        ex.sentences.len(),
        ex.pairs.len()
    );

    let records: Vec<SentenceRecord> = ex
        .sentences
        .iter()
        .enumerate()
        .map(|(si, s)| SentenceRecord {
            tokens: ex.sentence_tokens(si),
            pairs: s.pair_indices.iter().map(|&pi| ex.pairs[pi]).collect(),
        })
        .collect();
    let graph = CoverageGraph::for_groups(
        &corpus.hierarchy,
        &ex.pairs,
        &ex.sentence_groups(),
        EPS,
        Granularity::Sentences,
    );

    let pairs_of = |selected: &[usize]| -> Vec<Pair> {
        selected
            .iter()
            .flat_map(|&si| ex.sentences[si].pair_indices.iter())
            .map(|&pi| ex.pairs[pi])
            .collect()
    };

    let report = |name: &str, selected: Vec<usize>| {
        let f = pairs_of(&selected);
        println!(
            "{name:<16} sent-err {:.4}   penalized {:.4}",
            sent_err(&corpus.hierarchy, &ex.pairs, &f),
            sent_err_penalized(&corpus.hierarchy, &ex.pairs, &f)
        );
        selected
    };

    let ours = report(
        "greedy (ours)",
        GreedySummarizer.summarize(&graph, K).selected,
    );
    report("most-popular", MostPopular.select(&records, K));
    report("proportional", Proportional.select(&records, K));
    report("textrank", TextRank.select(&records, K));
    report("lexrank", LexRank::default().select(&records, K));
    report("lsa", LsaSummarizer::default().select(&records, K));

    println!("\nour k={K} summary:");
    for &si in &ours {
        println!("  • {}", ex.sentences[si].text);
    }
}
