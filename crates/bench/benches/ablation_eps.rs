//! ε ablation (`bench_ablation_eps`): how the sentiment threshold drives
//! coverage-graph density and greedy cost/time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osa_bench::quant_workload;
use osa_core::{CoverageGraph, GreedySummarizer, Summarizer};

fn bench_eps(c: &mut Criterion) {
    let w = quant_workload(1, 150, 29);
    let item = &w.items[0];
    let mut group = c.benchmark_group("ablation/eps");
    for &eps in &[0.1f64, 0.25, 0.5, 1.0] {
        let graph = CoverageGraph::for_pairs(&w.hierarchy, &item.pairs, eps);
        eprintln!(
            "eps={eps}: |E|={} greedy cost(k=8)={}",
            graph.num_edges(),
            GreedySummarizer.summarize(&graph, 8).cost
        );
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| GreedySummarizer.summarize(&graph, 8));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eps);
criterion_main!(benches);
