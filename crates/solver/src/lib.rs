//! # osa-solver
//!
//! A from-scratch linear and integer-linear programming solver — the
//! workspace's stand-in for the Gurobi dependency of the paper (Section
//! 4.2 solves the k-medians ILP, Section 4.3 its LP relaxation).
//!
//! * [`Model`] — a builder for `minimize cᵀx  s.t.  Ax {≤,=,≥} b, l ≤ x ≤ u`
//!   with optional per-variable integrality,
//! * [`Model::solve_lp`] — two-phase dense-tableau primal simplex with a
//!   Dantzig/Bland hybrid pivot rule (anti-cycling),
//! * [`Model::solve_ilp`] — best-first branch & bound on LP relaxations
//!   with most-fractional branching and incumbent pruning.
//!
//! The solver is deterministic, exact up to floating tolerance, and sized
//! for the per-item instances the summarization benchmarks produce
//! (hundreds of variables and constraints). It is a teaching-grade dense
//! implementation: do not point it at million-variable models.
//!
//! ## Example
//!
//! ```
//! use osa_solver::{Cmp, Model};
//!
//! // minimize -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 2, x,y >= 0
//! let mut m = Model::minimize();
//! let x = m.add_var(0.0, 3.0, -1.0);
//! let y = m.add_var(0.0, 2.0, -2.0);
//! m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! let sol = m.solve_lp().unwrap();
//! assert!((sol.objective - (-6.0)).abs() < 1e-9); // x=2, y=2
//! ```

#![warn(missing_docs)]

mod branch_bound;
mod dual;
mod error;
mod model;
mod presolve;
mod simplex;

pub use branch_bound::IlpOptions;
pub use error::SolverError;
pub use model::{Cmp, LpMethod, Model, Solution, Status, VarId};
