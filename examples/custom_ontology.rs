//! Bring-your-own ontology: build a custom hierarchy with the builder
//! API, feed hand-made concept-sentiment pairs, select the sentiment
//! threshold ε with the elbow method (Section 5.3), and compare the
//! greedy and exact summaries.
//!
//! Run with: `cargo run --release --example custom_ontology`

use osars::core::{CoverageGraph, GreedySummarizer, IlpSummarizer, Pair, Summarizer};
use osars::eval::{covered_fraction, elbow};
use osars::ontology::{io, HierarchyBuilder};

fn main() {
    // A small restaurant ontology.
    let mut b = HierarchyBuilder::new();
    b.add_edge_by_name("restaurant", "food").unwrap();
    b.add_edge_by_name("restaurant", "service").unwrap();
    b.add_edge_by_name("restaurant", "ambience").unwrap();
    b.add_edge_by_name("food", "pasta").unwrap();
    b.add_edge_by_name("food", "dessert").unwrap();
    b.add_edge_by_name("service", "waiter").unwrap();
    b.add_edge_by_name("service", "wait time").unwrap();
    let h = b.build().expect("valid hierarchy");

    println!("custom hierarchy:\n{}", h.render_ascii());

    // Opinions gathered from "reviews".
    let p = |name: &str, s: f64| Pair::new(h.node_by_name(name).unwrap(), s);
    let pairs = vec![
        p("food", 0.8),
        p("pasta", 0.9),
        p("pasta", 0.7),
        p("dessert", -0.2),
        p("service", -0.6),
        p("waiter", -0.7),
        p("wait time", -0.9),
        p("ambience", 0.3),
    ];

    // ε selection by the elbow of the covered-fraction curve.
    let sweep: Vec<(f64, f64)> = (1..=20)
        .map(|i| {
            let eps = i as f64 * 0.05;
            (eps, covered_fraction(&h, &pairs, eps))
        })
        .collect();
    let eps = elbow(&sweep).map_or(0.5, |i| sweep[i].0);
    println!("elbow-selected eps = {eps:.2}\n");

    let graph = CoverageGraph::for_pairs(&h, &pairs, eps);
    for k in 1..=3 {
        let g = GreedySummarizer.summarize(&graph, k);
        let o = IlpSummarizer.summarize(&graph, k);
        let names = |sel: &[usize]| {
            sel.iter()
                .map(|&i| format!("({}, {:+.1})", h.name(pairs[i].concept), pairs[i].sentiment))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("k={k}: greedy cost {} [{}]", g.cost, names(&g.selected));
        println!("      optimal cost {} [{}]", o.cost, names(&o.selected));
    }

    // Hierarchies serialize to JSON for reuse across runs.
    let json = io::to_json(&h);
    let restored = io::from_json(&json).expect("roundtrip");
    println!(
        "\nserialized hierarchy: {} bytes of JSON, {} nodes on reload",
        json.len(),
        restored.node_count()
    );
}
