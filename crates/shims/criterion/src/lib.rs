//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion it uses: `Criterion`,
//! `benchmark_group` with `bench_function` / `bench_with_input` /
//! `sample_size` / `finish`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — warm-up, then a fixed batch of
//! timed iterations reported as mean/min/max per iteration. That is
//! enough for the repo's ablation harnesses to print comparable
//! numbers; it makes no attempt at criterion's bootstrap analysis,
//! HTML reports, or baseline persistence.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: u64,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        self.elapsed.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's default is
    /// 100; the shim keeps runs quick with 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Vec::new(),
        };
        f(&mut b);
        let (mean, min, max) = if b.elapsed.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            let total: Duration = b.elapsed.iter().sum();
            (
                total / b.elapsed.len() as u32,
                *b.elapsed.iter().min().unwrap(),
                *b.elapsed.iter().max().unwrap(),
            )
        };
        println!(
            "{}/{}: mean {:?} min {:?} max {:?} ({} samples)",
            self.name,
            id,
            mean,
            min,
            max,
            b.elapsed.len()
        );
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            _parent: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut calls = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        // one warm-up + five timed samples
        assert_eq!(calls, 6);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut sum = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| {
                sum = d.iter().sum();
            })
        });
        assert_eq!(sum, 6);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
