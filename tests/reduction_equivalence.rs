//! The Theorem 1 reduction verified end to end on random Set-Cover
//! instances: a cover of size k exists iff the reduced k-Pairs Coverage
//! instance has a summary of cost ≤ t = 3m + n − 2k.

use osars::core::reduction::{reduce, set_cover_exists, SetCoverInstance};
use osars::core::{ExactBruteForce, IlpSummarizer};
use proptest::prelude::*;

fn arb_set_cover() -> impl Strategy<Value = SetCoverInstance> {
    (2usize..=5, 2usize..=5)
        .prop_flat_map(|(universe, m)| {
            let sets = proptest::collection::vec(
                proptest::collection::btree_set(0..universe, 1..=universe),
                m..=m,
            );
            (Just(universe), sets, 1usize..=m)
        })
        .prop_map(|(universe, sets, k)| {
            let mut sets: Vec<Vec<usize>> =
                sets.into_iter().map(|s| s.into_iter().collect()).collect();
            // Guarantee every element appears somewhere (the reduction
            // requires it): append a patch set for missed elements.
            let mut covered = vec![false; universe];
            for s in &sets {
                for &u in s {
                    covered[u] = true;
                }
            }
            let missing: Vec<usize> = (0..universe).filter(|&u| !covered[u]).collect();
            if !missing.is_empty() {
                sets.push(missing);
            }
            SetCoverInstance { universe, sets, k }
        })
        .no_shrink()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reduction_preserves_decision(sc in arb_set_cover()) {
        let expect = set_cover_exists(&sc);
        let red = reduce(&sc);
        prop_assert_eq!(red.has_cheap_summary(&ExactBruteForce), expect);
    }

    #[test]
    fn reduction_agrees_under_ilp(sc in arb_set_cover()) {
        let expect = set_cover_exists(&sc);
        let red = reduce(&sc);
        prop_assert_eq!(red.has_cheap_summary(&IlpSummarizer), expect);
    }

    #[test]
    fn choosing_cover_sets_costs_exactly_t(sc in arb_set_cover()) {
        // Whenever a size-k cover exists, the summary consisting of the
        // covering c_i pairs costs exactly t (the forward direction of
        // the Theorem 1 proof).
        prop_assume!(sc.sets.len() <= 6);
        let m = sc.sets.len();
        if let Some(mask) = (0u32..(1 << m)).find(|mask| {
            mask.count_ones() as usize == sc.k && {
                let mut covered = vec![false; sc.universe];
                for (i, s) in sc.sets.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        for &u in s {
                            covered[u] = true;
                        }
                    }
                }
                covered.iter().all(|&c| c)
            }
        }) {
            let red = reduce(&sc);
            let g = red.coverage_graph();
            let selected: Vec<usize> = (0..m)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| red.set_pair_indices[i])
                .collect();
            prop_assert_eq!(g.cost_of(&selected), red.target);
        }
    }
}
