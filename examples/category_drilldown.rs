//! Per-category drill-down: summarize each top-level aspect category of
//! a phone separately by extracting its sub-hierarchy (the `--focus`
//! workflow of the CLI, done programmatically).
//!
//! Run with: `cargo run --release --example category_drilldown`

use osars::core::{explain, CoverageGraph, GreedySummarizer, Pair, Summarizer};
use osars::datasets::{extract_item, Corpus, CorpusConfig};
use osars::text::{ConceptMatcher, SentimentLexicon};

fn main() {
    let corpus = Corpus::phones(&CorpusConfig::phones_small(), 12);
    let matcher = ConceptMatcher::from_hierarchy(&corpus.hierarchy);
    let lexicon = SentimentLexicon::default();
    let item = &corpus.items[0];
    let ex = extract_item(item, &matcher, &lexicon);
    println!(
        "item '{}': {} extracted pairs across the whole hierarchy\n",
        item.name,
        ex.pairs.len()
    );

    // One focused summary per top-level category.
    let root = corpus.hierarchy.root();
    let mut categories: Vec<_> = corpus.hierarchy.children(root).to_vec();
    categories.sort_by_key(|&c| corpus.hierarchy.name(c).to_owned());

    for &category in &categories {
        let sub = corpus.hierarchy.subgraph(category);
        // Keep only pairs whose concept lives in this category's subtree,
        // remapped into the sub-hierarchy by name.
        let pairs: Vec<Pair> = ex
            .pairs
            .iter()
            .filter_map(|p| {
                sub.node_by_name(corpus.hierarchy.name(p.concept))
                    .map(|c| Pair::new(c, p.sentiment))
            })
            .collect();
        if pairs.len() < 3 {
            continue;
        }
        let graph = CoverageGraph::for_pairs(&sub, &pairs, 0.5);
        let summary = GreedySummarizer.summarize(&graph, 2);
        let report = explain::explain(&graph, &summary);
        let mean: f64 = pairs.iter().map(|p| p.sentiment).sum::<f64>() / pairs.len() as f64;
        println!(
            "{:<14} {:>3} opinions, mean {:+.2} → summary:",
            corpus.hierarchy.name(category),
            pairs.len(),
            mean
        );
        for (c, candidate) in report.candidates.iter().enumerate() {
            let p = pairs[summary.selected[c]];
            println!(
                "    {} = {:+.2}  (represents {} opinions)",
                sub.name(p.concept),
                p.sentiment,
                candidate.serves.len()
            );
        }
    }
}
