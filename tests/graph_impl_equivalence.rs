//! Property tests: the indexed (and sharded-parallel) §4.1 builders are
//! *identical* — not just cost-equivalent — to the naive oracle builder
//! on random multi-parent DAGs, and raw vs compressed-weighted instances
//! agree on cost even with signed-zero / NaN-sanitized sentiments.

use osars::core::{compress_pairs, CoverageGraph, Granularity, Pair};
use osars::ontology::{Hierarchy, HierarchyBuilder, NodeId};
use osars::runtime::{par_for_groups, par_for_pairs, par_for_weighted_pairs};
use proptest::prelude::*;

/// Random rooted DAG: node i > 0 gets a parent among nodes 0..i, plus an
/// optional second parent (multi-parent closures are the hard case for
/// the topological closure merge).
fn arb_hierarchy(max_nodes: usize) -> impl Strategy<Value = Hierarchy> {
    (2..=max_nodes)
        .prop_flat_map(|n| {
            let parents = (1..n)
                .map(|i| (0..i, proptest::option::of(0..i)))
                .collect::<Vec<_>>();
            parents.prop_map(move |ps| {
                let mut b = HierarchyBuilder::new();
                for i in 0..n {
                    b.add_node(&format!("n{i}"));
                }
                for (i, (p1, p2)) in ps.into_iter().enumerate() {
                    let child = NodeId::from_index(i + 1);
                    b.add_edge(NodeId::from_index(p1), child).unwrap();
                    if let Some(p2) = p2 {
                        if p2 != p1 {
                            b.add_edge(NodeId::from_index(p2), child).unwrap();
                        }
                    }
                }
                b.build()
                    .expect("random construction is a valid rooted DAG")
            })
        })
        .no_shrink()
}

/// Pairs through `Pair::new` with boundary-rich sentiments: a 0.1 grid
/// plus `-0.0` (sentiment code 21) and NaN (code 22), both of which the
/// constructor sanitizes to `0.0`.
fn arb_pairs(h: &Hierarchy, max_pairs: usize) -> impl Strategy<Value = Vec<Pair>> {
    let n = h.node_count();
    proptest::collection::vec(
        (0..n, 0u8..=22).prop_map(|(c, code)| {
            let s = match code {
                21 => -0.0,
                22 => f64::NAN,
                lv => (f64::from(lv) - 10.0) / 10.0,
            };
            Pair::new(NodeId::from_index(c), s)
        }),
        1..=max_pairs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_and_parallel_pairs_graphs_equal_naive(
        (h, pairs, eps) in arb_hierarchy(14).prop_flat_map(|h| {
            let pairs = arb_pairs(&h, 24);
            (Just(h), pairs, (0u8..=10).prop_map(|e| f64::from(e) / 10.0))
        })
    ) {
        let naive = CoverageGraph::for_pairs_naive(&h, &pairs, eps);
        prop_assert_eq!(&CoverageGraph::for_pairs(&h, &pairs, eps), &naive);
        // jobs=3 exercises uneven chunking (the small instance stays
        // sequential inside par_build, which is itself part of the
        // contract: the threshold must not change the result).
        prop_assert_eq!(&par_for_pairs(&h, &pairs, eps, 3), &naive);
    }

    #[test]
    fn indexed_and_parallel_group_graphs_equal_naive(
        (h, pairs) in arb_hierarchy(12).prop_flat_map(|h| {
            let pairs = arb_pairs(&h, 18);
            (Just(h), pairs)
        })
    ) {
        let eps = 0.3;
        let groups: Vec<Vec<usize>> = (0..pairs.len())
            .collect::<Vec<_>>()
            .chunks(4)
            .map(<[usize]>::to_vec)
            .collect();
        for gran in [Granularity::Sentences, Granularity::Reviews] {
            let naive = CoverageGraph::for_groups_naive(&h, &pairs, &groups, eps, gran);
            prop_assert_eq!(
                &CoverageGraph::for_groups(&h, &pairs, &groups, eps, gran),
                &naive
            );
            prop_assert_eq!(&par_for_groups(&h, &pairs, &groups, eps, gran, 3), &naive);
        }
    }

    #[test]
    fn weighted_builders_agree_and_match_raw_costs(
        (h, pairs) in arb_hierarchy(12).prop_flat_map(|h| {
            let pairs = arb_pairs(&h, 20);
            (Just(h), pairs)
        })
    ) {
        let eps = 0.5;
        let (unique, weights) = compress_pairs(&pairs);
        let naive = CoverageGraph::for_weighted_pairs_naive(&h, &unique, &weights, eps);
        prop_assert_eq!(
            &CoverageGraph::for_weighted_pairs(&h, &unique, &weights, eps),
            &naive
        );
        prop_assert_eq!(&par_for_weighted_pairs(&h, &unique, &weights, eps, 3), &naive);

        // Raw-vs-weighted cost agreement: any selection of distinct pairs
        // costs the same as selecting all their duplicates in the raw
        // instance — incl. pairs whose sentiment was sanitized from -0.0
        // or NaN by `Pair::new` (equal bits → one compressed pair).
        let raw = CoverageGraph::for_pairs(&h, &pairs, eps);
        let to_raw: Vec<Vec<usize>> = unique
            .iter()
            .map(|u| {
                (0..pairs.len())
                    .filter(|&i| {
                        pairs[i].concept == u.concept
                            && pairs[i].sentiment.to_bits() == u.sentiment.to_bits()
                    })
                    .collect()
            })
            .collect();
        for sel_w in [vec![], vec![0], (0..unique.len()).collect::<Vec<_>>()] {
            let sel_raw: Vec<usize> =
                sel_w.iter().flat_map(|&u| to_raw[u].iter().copied()).collect();
            prop_assert_eq!(naive.cost_of(&sel_w), raw.cost_of(&sel_raw));
        }
    }
}
