//! The common interface of the summarization algorithms.

use crate::CoverageGraph;

/// A computed size-k summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Selected candidate indices (into the graph's candidate set), in
    /// selection order where the algorithm has one.
    pub selected: Vec<usize>,
    /// The Definition 2 cost `C(F, P)` of the selection.
    pub cost: u64,
}

/// A size-k summarization algorithm over a [`CoverageGraph`].
pub trait Summarizer {
    /// Select (up to) `k` candidates minimizing the coverage cost.
    ///
    /// Every implementation returns at most `min(k, |U|)` candidates and
    /// reports the exact cost of what it selected. Greedy-family
    /// implementations stop early when coverage saturates (the best
    /// marginal gain reaches 0), so they may return fewer.
    fn summarize(&self, graph: &CoverageGraph, k: usize) -> Summary;

    /// [`summarize`](Self::summarize) with an optional request-scoped
    /// [`osa_obs::Trace`]: implementations open child spans for their
    /// internal phases and attach their work counters (gain evaluations,
    /// B&B nodes, …) to the currently open trace span. The default
    /// ignores the trace; passing `None` must always be byte-identical
    /// to `summarize`.
    fn summarize_traced(
        &self,
        graph: &CoverageGraph,
        k: usize,
        trace: Option<&osa_obs::Trace>,
    ) -> Summary {
        let _ = trace;
        self.summarize(graph, k)
    }

    /// Human-readable algorithm name (used by the benchmark harness).
    fn name(&self) -> &'static str;
}
