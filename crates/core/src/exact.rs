//! Exhaustive optimal summarizer — the test oracle for small instances.

use crate::{CoverageGraph, Summarizer, Summary};

/// Tries every size-`k` candidate subset. `O(C(n, k))` — only for tests
/// and tiny demonstrations; the library's exact algorithm of record is
/// [`IlpSummarizer`](crate::IlpSummarizer).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBruteForce;

impl Summarizer for ExactBruteForce {
    fn summarize(&self, graph: &CoverageGraph, k: usize) -> Summary {
        let n = graph.num_candidates();
        let k = k.min(n);
        let mut best = Summary {
            selected: Vec::new(),
            cost: graph.root_cost(),
        };
        if k == 0 {
            return best;
        }
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            let cost = graph.cost_of(&combo);
            if cost < best.cost || (cost == best.cost && best.selected.is_empty()) {
                best = Summary {
                    selected: combo.clone(),
                    cost,
                };
            }
            // Next k-combination of 0..n in lexicographic order.
            let mut i = k;
            loop {
                if i == 0 {
                    return best;
                }
                i -= 1;
                if combo[i] != i + n - k {
                    break;
                }
            }
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "exact-brute-force"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pair;
    use osa_ontology::HierarchyBuilder;

    #[test]
    fn enumerates_all_combinations() {
        let mut bl = HierarchyBuilder::new();
        bl.add_edge_by_name("r", "a").unwrap();
        bl.add_edge_by_name("r", "b").unwrap();
        bl.add_edge_by_name("r", "c").unwrap();
        let h = bl.build().unwrap();
        let p = |n: &str| Pair::new(h.node_by_name(n).unwrap(), 0.0);
        let pairs = vec![p("a"), p("b"), p("c")];
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        // k = 2 leaves exactly one pair uncovered at depth 1.
        let s = ExactBruteForce.summarize(&g, 2);
        assert_eq!(s.cost, 1);
        assert_eq!(s.selected.len(), 2);
        // k = 3 covers everything.
        assert_eq!(ExactBruteForce.summarize(&g, 3).cost, 0);
        // k = 0 covers nothing.
        assert_eq!(ExactBruteForce.summarize(&g, 0).cost, 3);
    }

    #[test]
    fn k_exceeding_candidates_is_clamped() {
        let mut bl = HierarchyBuilder::new();
        bl.add_edge_by_name("r", "a").unwrap();
        let h = bl.build().unwrap();
        let pairs = vec![Pair::new(h.node_by_name("a").unwrap(), 0.0)];
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = ExactBruteForce.summarize(&g, 99);
        assert_eq!(s.selected, vec![0]);
        assert_eq!(s.cost, 0);
    }
}
