//! Coverage-rate measures over a summary selection.
//!
//! The ICDE 2017 poster version of the paper evaluates the greedy
//! summarizer with *coverage measures* (how much of the opinion set a
//! summary covers, and how tightly); these helpers compute them from a
//! [`CoverageGraph`] selection.

use osa_core::CoverageGraph;

/// Fraction of pairs served at distance ≤ `max_dist` by the selection
/// (the root's implicit coverage counts too — a pair within `max_dist`
/// of the root is "covered" even by the empty summary).
pub fn covered_within(graph: &CoverageGraph, selected: &[usize], max_dist: u32) -> f64 {
    if graph.num_pairs() == 0 {
        return 1.0;
    }
    let dists = graph.serving_distances(selected);
    let covered = dists.iter().filter(|&&d| d <= max_dist).count();
    covered as f64 / graph.num_pairs() as f64
}

/// Fraction of pairs served by a *selected candidate* (not the root) at
/// any finite distance — the strict "is this opinion represented in the
/// summary at all" reading.
pub fn covered_by_summary(graph: &CoverageGraph, selected: &[usize]) -> f64 {
    if graph.num_pairs() == 0 {
        return 1.0;
    }
    let mut covered = vec![false; graph.num_pairs()];
    for &u in selected {
        for &(q, _) in graph.covered_by(u) {
            covered[q as usize] = true;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / graph.num_pairs() as f64
}

/// Mean serving distance of the selection (cost divided by the number of
/// pairs — the per-opinion average the cost plots normalize away).
pub fn mean_serving_distance(graph: &CoverageGraph, selected: &[usize]) -> f64 {
    if graph.num_pairs() == 0 {
        return 0.0;
    }
    graph.cost_of(selected) as f64
        / (0..graph.num_pairs())
            .map(|q| graph.pair_weight(q) as f64)
            .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_core::{CoverageGraph, Pair};
    use osa_ontology::HierarchyBuilder;

    fn setup() -> (osa_ontology::Hierarchy, Vec<Pair>) {
        let mut bl = HierarchyBuilder::new();
        bl.add_edge_by_name("r", "a").unwrap();
        bl.add_edge_by_name("a", "b").unwrap();
        bl.add_edge_by_name("r", "c").unwrap();
        let h = bl.build().unwrap();
        let p = |n: &str, s: f64| Pair::new(h.node_by_name(n).unwrap(), s);
        let pairs = vec![p("a", 0.1), p("b", 0.2), p("c", -0.5)];
        (h, pairs)
    }

    #[test]
    fn covered_within_counts_root_coverage() {
        let (h, pairs) = setup();
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        // Empty summary: a (depth 1) and c (depth 1) within 1; b (depth 2) not.
        assert!((covered_within(&g, &[], 1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(covered_within(&g, &[], 2), 1.0);
        // Selecting the `a` pair brings b within distance 1.
        assert_eq!(covered_within(&g, &[0], 1), 1.0);
    }

    #[test]
    fn covered_by_summary_ignores_root() {
        let (h, pairs) = setup();
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        assert_eq!(covered_by_summary(&g, &[]), 0.0);
        // Pair 0 (on a) covers itself and pair 1 (on b): 2/3.
        assert!((covered_by_summary(&g, &[0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(covered_by_summary(&g, &[0, 2]), 1.0);
    }

    #[test]
    fn mean_serving_distance_is_cost_per_pair() {
        let (h, pairs) = setup();
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let expect = g.cost_of(&[0]) as f64 / 3.0;
        assert!((mean_serving_distance(&g, &[0]) - expect).abs() < 1e-12);
    }

    #[test]
    fn weighted_graphs_weight_the_mean() {
        let (h, pairs) = setup();
        let weights = vec![3, 1, 1];
        let g = CoverageGraph::for_weighted_pairs(&h, &pairs, &weights, 0.5);
        // Empty summary: cost = 3·1 + 1·2 + 1·1 = 6 over weight 5.
        assert!((mean_serving_distance(&g, &[]) - 6.0 / 5.0).abs() < 1e-12);
    }
}
