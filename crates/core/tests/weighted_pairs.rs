//! The weighted-pairs path must be a drop-in equivalent of the raw-pairs
//! path: collapsing duplicate pairs with [`compress_pairs`] and solving
//! the weighted instance gives the same root cost, the same cost for any
//! selection (mapped across the candidate spaces), and the same greedy
//! cost trajectory.

use osa_core::{
    compress_pairs, CoverageGraph, ExactBruteForce, GreedySummarizer, LazyGreedySummarizer, Pair,
    Summarizer,
};
use osa_ontology::{Hierarchy, HierarchyBuilder, NodeId};
use proptest::prelude::*;

/// A small random tree plus a duplicate-heavy pair multiset.
fn arb_weighted_instance() -> impl Strategy<Value = (Hierarchy, Vec<Pair>)> {
    (3usize..=7)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
            // Few distinct sentiment levels + few concepts → many real
            // duplicates for compression to collapse.
            let pairs = proptest::collection::vec((0..n, -2i8..=2), 4..=16);
            (Just(n), parents, pairs)
        })
        .prop_map(|(n, parents, raw)| {
            let mut b = HierarchyBuilder::new();
            for i in 0..n {
                b.add_node(&format!("n{i}"));
            }
            for (i, p) in parents.into_iter().enumerate() {
                b.add_edge(NodeId::from_index(p), NodeId::from_index(i + 1))
                    .unwrap();
            }
            let h = b.build().expect("valid tree");
            let pairs = raw
                .into_iter()
                .map(|(c, s)| Pair::new(NodeId::from_index(c), f64::from(s) / 2.0))
                .collect();
            (h, pairs)
        })
        .no_shrink()
}

/// Candidate index in the compressed graph for each raw candidate: in
/// the pairs granularity, candidate i *is* pair i, so the mapping is the
/// first-occurrence index compress_pairs assigns.
fn raw_to_compressed(pairs: &[Pair], unique: &[Pair]) -> Vec<usize> {
    pairs
        .iter()
        .map(|p| {
            unique
                .iter()
                .position(|u| u.concept == p.concept && u.sentiment == p.sentiment)
                .expect("every raw pair has a unique representative")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_of_agrees_between_raw_and_compressed(
        (h, pairs) in arb_weighted_instance(),
        picks in proptest::collection::vec(0usize..64, 0..=4),
    ) {
        let raw = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let (unique, weights) = compress_pairs(&pairs);
        let comp = CoverageGraph::for_weighted_pairs(&h, &unique, &weights, 0.5);
        let map = raw_to_compressed(&pairs, &unique);

        prop_assert_eq!(comp.root_cost(), raw.root_cost());

        // Any raw selection costs the same as its compressed image.
        let raw_sel: Vec<usize> = picks.iter().map(|&p| p % pairs.len()).collect();
        let mut comp_sel: Vec<usize> = raw_sel.iter().map(|&i| map[i]).collect();
        comp_sel.sort_unstable();
        comp_sel.dedup();
        prop_assert_eq!(raw.cost_of(&raw_sel), comp.cost_of(&comp_sel));
    }

    #[test]
    fn greedy_costs_agree_between_raw_and_compressed(
        (h, pairs) in arb_weighted_instance(),
        k in 1usize..=4,
    ) {
        let raw = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let (unique, weights) = compress_pairs(&pairs);
        let comp = CoverageGraph::for_weighted_pairs(&h, &unique, &weights, 0.5);

        // Greedy selections may differ (duplicates create ties) but the
        // achieved costs must match: the candidate sets are equivalent up
        // to duplication, which never helps, and greedy is optimal-per-
        // step on both. At minimum each reports its true cost and the
        // exact optima coincide.
        let g_raw = GreedySummarizer.summarize(&raw, k);
        let g_comp = GreedySummarizer.summarize(&comp, k);
        prop_assert_eq!(g_raw.cost, raw.cost_of(&g_raw.selected));
        prop_assert_eq!(g_comp.cost, comp.cost_of(&g_comp.selected));

        let opt_raw = ExactBruteForce.summarize(&raw, k).cost;
        let opt_comp = ExactBruteForce.summarize(&comp, k).cost;
        prop_assert_eq!(opt_raw, opt_comp);
        prop_assert!(g_raw.cost >= opt_raw && g_comp.cost >= opt_comp);

        // Lazy greedy reports true costs on the weighted instance too.
        let l_comp = LazyGreedySummarizer.summarize(&comp, k);
        prop_assert_eq!(l_comp.cost, comp.cost_of(&l_comp.selected));
    }
}

#[test]
fn weighted_multiplicity_scales_cost_linearly() {
    // r -> a -> b; two distinct pairs on b, one multiplied ×5. Serving it
    // from the root costs depth(b)=2 per copy.
    let mut bl = HierarchyBuilder::new();
    let r = bl.add_node("r");
    let a = bl.add_node("a");
    let b = bl.add_node("b");
    bl.add_edge(r, a).unwrap();
    bl.add_edge(a, b).unwrap();
    let h = bl.build().unwrap();

    let heavy = Pair::new(b, 0.5);
    let light = Pair::new(b, -0.5);
    let raw: Vec<Pair> = std::iter::repeat_n(heavy, 5)
        .chain(std::iter::once(light))
        .collect();
    let (unique, weights) = compress_pairs(&raw);
    assert_eq!(weights, vec![5, 1]);

    let graph_raw = CoverageGraph::for_pairs(&h, &raw, 0.5);
    let graph_w = CoverageGraph::for_weighted_pairs(&h, &unique, &weights, 0.5);
    assert_eq!(graph_raw.root_cost(), 12); // 6 copies × depth 2
    assert_eq!(graph_w.root_cost(), 12);
    // Selecting the heavy pair zeroes its 5 copies in both formulations.
    assert_eq!(graph_w.cost_of(&[0]), graph_raw.cost_of(&[0]));
    assert_eq!(graph_w.num_candidates(), 2);
}
