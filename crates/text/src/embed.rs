//! Hashed bag-of-words sentence embeddings.
//!
//! A fixed-dimension, vocabulary-free sentence representation: each token
//! (and each token bigram) is hashed into one of `dim` buckets with a
//! sign hash (feature hashing à la Weinberger et al.). The result is the
//! deterministic stand-in for the paper's doc2vec sentence vectors — the
//! downstream regression only needs *some* fixed-size featurization.

/// Feature-hashing sentence embedder.
#[derive(Debug, Clone, Copy)]
pub struct HashedBow {
    dim: usize,
    /// Also hash adjacent-token bigrams (captures "not good" ≠ "good").
    pub use_bigrams: bool,
}

impl HashedBow {
    /// Create an embedder with `dim` buckets (power of two recommended).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        HashedBow {
            dim,
            use_bigrams: true,
        }
    }

    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed a tokenized sentence into an L2-normalized vector.
    pub fn embed(&self, tokens: &[String]) -> Vec<f64> {
        self.embed_with(tokens.len(), |i| tokens[i].as_str())
    }

    /// Embed a sentence given as `n` tokens behind an accessor, without
    /// materializing a `Vec<String>`. The interned extraction path calls
    /// this with an ID-resolving closure; the bigram feature is hashed by
    /// streaming `left`, a space, `right` through FNV-1a, which produces
    /// the same hash as the `"left right"` string [`embed`] used to
    /// allocate — outputs are bit-identical across both entry points.
    pub fn embed_with<'a>(&self, n: usize, token: impl Fn(usize) -> &'a str) -> Vec<f64> {
        let mut v = vec![0.0f64; self.dim];
        for i in 0..n {
            self.bump_hash(&mut v, fnv1a(token(i).as_bytes()));
        }
        if self.use_bigrams {
            for i in 1..n {
                let h = fnv1a_update(fnv1a(token(i - 1).as_bytes()), b" ");
                self.bump_hash(&mut v, fnv1a_update(h, token(i).as_bytes()));
            }
        }
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-12 {
            for x in &mut v {
                *x /= n;
            }
        }
        v
    }

    fn bump_hash(&self, v: &mut [f64], h: u64) {
        let bucket = (h % self.dim as u64) as usize;
        // An independent bit decides the sign, keeping hashed features
        // approximately unbiased.
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[bucket] += sign;
    }
}

/// FNV-1a 64-bit hash — tiny, fast, deterministic across runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a hash over more bytes (the hash is a plain left
/// fold, so chunked updates equal one pass over the concatenation).
fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        crate::tokenize(s)
    }

    #[test]
    fn deterministic_and_normalized() {
        let e = HashedBow::new(64);
        let a = e.embed(&toks("the screen is great"));
        let b = e.embed(&toks("the screen is great"));
        assert_eq!(a, b);
        let n: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_sentences_differ() {
        let e = HashedBow::new(128);
        let a = e.embed(&toks("great screen"));
        let b = e.embed(&toks("terrible battery"));
        assert_ne!(a, b);
    }

    #[test]
    fn bigrams_distinguish_negation() {
        let e = HashedBow::new(256);
        let pos = e.embed(&toks("good camera"));
        let neg = e.embed(&toks("not good camera"));
        assert_ne!(pos, neg);
    }

    #[test]
    fn streamed_bigram_hash_matches_joined_string() {
        let e = HashedBow::new(64);
        let tokens = toks("the camera is not very good at night 𝑨𝑩");
        let got = e.embed(&tokens);
        // Reference: the historical implementation hashed the allocated
        // "left right" string per bigram.
        let mut want = vec![0.0f64; 64];
        for t in &tokens {
            bump_ref(&mut want, t);
        }
        for pair in tokens.windows(2) {
            bump_ref(&mut want, &format!("{} {}", pair[0], pair[1]));
        }
        let n = want.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in &mut want {
            *x /= n;
        }
        assert_eq!(got, want);

        fn bump_ref(v: &mut [f64], feature: &str) {
            let h = super::fnv1a(feature.as_bytes());
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[(h % 64) as usize] += sign;
        }
    }

    #[test]
    fn empty_sentence_is_zero_vector() {
        let e = HashedBow::new(32);
        let v = e.embed(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.len(), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = HashedBow::new(0);
    }
}
