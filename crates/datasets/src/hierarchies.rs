//! The two curated concept hierarchies.

use osa_ontology::{Hierarchy, HierarchyBuilder};

/// The cell-phone aspect hierarchy of Fig. 3 (reconstruction).
///
/// The paper built it by hand over the 100 most popular aspects that
/// Double Propagation extracted from the Amazon reviews; the published
/// figure shows a root with first-level category aspects (screen,
/// battery, camera, sound, design, performance, software, connectivity,
/// price, service) and specific sub-aspects below them. Node terms carry
/// the surface variants the concept matcher should recognize.
pub fn phone_hierarchy() -> Hierarchy {
    let mut b = HierarchyBuilder::new();
    let root = b.add_node_with_terms("phone", &["phone", "cellphone", "device", "handset"]);

    let screen = b.add_node_with_terms("screen", &["screen", "display"]);
    let battery = b.add_node_with_terms("battery", &["battery"]);
    let camera = b.add_node_with_terms("camera", &["camera"]);
    let sound = b.add_node_with_terms("sound", &["sound", "audio"]);
    let design = b.add_node_with_terms("design", &["design", "build", "look"]);
    let performance = b.add_node_with_terms("performance", &["performance"]);
    let software = b.add_node_with_terms("software", &["software", "firmware"]);
    let connectivity = b.add_node_with_terms("connectivity", &["connectivity", "connection"]);
    let price = b.add_node_with_terms("price", &["price", "cost", "value"]);
    let service = b.add_node_with_terms("service", &["service", "seller", "vendor"]);
    for c in [
        screen,
        battery,
        camera,
        sound,
        design,
        performance,
        software,
        connectivity,
        price,
        service,
    ] {
        b.add_edge(root, c).expect("fresh top-level edge");
    }

    let mut leaf = |parent, name: &str, terms: &[&str]| {
        let n = b.add_node_with_terms(name, terms);
        b.add_edge(parent, n).expect("fresh leaf edge");
        n
    };

    leaf(
        screen,
        "screen resolution",
        &["resolution", "screen resolution"],
    );
    leaf(
        screen,
        "screen color",
        &["screen color", "display color", "color reproduction"],
    );
    leaf(
        screen,
        "screen brightness",
        &["brightness", "screen brightness"],
    );
    leaf(
        screen,
        "touchscreen",
        &["touchscreen", "touch screen", "touch"],
    );
    leaf(screen, "screen size", &["screen size", "display size"]);

    leaf(
        battery,
        "battery life",
        &["battery life", "battery lifetime"],
    );
    leaf(
        battery,
        "charging",
        &["charging", "charger", "charge time", "recharge"],
    );

    leaf(
        camera,
        "picture quality",
        &["picture quality", "photo quality", "picture", "photo"],
    );
    leaf(camera, "video recording", &["video", "video recording"]);
    leaf(camera, "front camera", &["front camera", "selfie camera"]);
    leaf(camera, "camera flash", &["flash", "camera flash"]);
    leaf(camera, "zoom", &["zoom"]);

    leaf(sound, "speaker", &["speaker", "speakers", "loudspeaker"]);
    leaf(
        sound,
        "call quality",
        &["call quality", "call", "reception quality"],
    );
    leaf(sound, "microphone", &["microphone", "mic"]);
    leaf(sound, "volume", &["volume"]);
    leaf(
        sound,
        "headphones",
        &["headphone", "headphones", "earbuds", "headphone jack"],
    );

    leaf(design, "size", &["size", "dimensions"]);
    leaf(design, "weight", &["weight"]);
    leaf(design, "body color", &["body color", "finish"]);
    leaf(design, "buttons", &["button", "buttons"]);
    leaf(
        design,
        "materials",
        &[
            "material",
            "materials",
            "plastic",
            "metal frame",
            "glass back",
        ],
    );

    leaf(performance, "speed", &["speed", "responsiveness"]);
    leaf(performance, "processor", &["processor", "cpu", "chipset"]);
    leaf(performance, "memory", &["memory", "ram"]);
    leaf(
        performance,
        "storage",
        &["storage", "internal storage", "sd card"],
    );
    leaf(performance, "gaming", &["gaming", "games"]);

    leaf(
        software,
        "operating system",
        &["operating system", "android", "os"],
    );
    leaf(software, "updates", &["update", "updates"]);
    leaf(software, "interface", &["interface", "ui", "launcher"]);
    leaf(
        software,
        "preinstalled apps",
        &["bloatware", "preinstalled apps", "apps"],
    );

    leaf(connectivity, "wifi", &["wifi", "wi-fi", "wireless"]);
    leaf(connectivity, "bluetooth", &["bluetooth"]);
    leaf(connectivity, "signal", &["signal", "reception", "antenna"]);
    leaf(connectivity, "gps", &["gps", "navigation"]);
    leaf(connectivity, "sim", &["sim", "sim card", "dual sim"]);

    leaf(service, "shipping", &["shipping", "delivery"]);
    leaf(service, "packaging", &["packaging", "box"]);
    leaf(service, "warranty", &["warranty"]);
    leaf(
        service,
        "customer support",
        &["customer support", "support", "customer service"],
    );

    b.build().expect("phone hierarchy is a valid rooted DAG")
}

/// A curated medical-service concept hierarchy: the stand-in for the
/// SNOMED CT fragment that MetaMap extraction hits on doctor reviews.
///
/// SNOMED CT itself has >300k concepts; patient reviews touch a small,
/// service-oriented slice of it (plus a few conditions/procedures). This
/// hierarchy covers that slice with two- and three-level structure and a
/// couple of multi-parent nodes (a DAG, not a tree — e.g. "pain
/// management" under both treatment and condition care), exercising every
/// code path the full ontology would.
pub fn doctor_hierarchy() -> Hierarchy {
    let mut b = HierarchyBuilder::new();
    let root = b.add_node_with_terms("care", &["care", "doctor", "physician"]);

    let diagnosis = b.add_node_with_terms("diagnosis", &["diagnosis", "diagnoses"]);
    let treatment = b.add_node_with_terms("treatment", &["treatment"]);
    let manner = b.add_node_with_terms("bedside manner", &["bedside manner", "manner", "attitude"]);
    let staff = b.add_node_with_terms("staff", &["staff"]);
    let office = b.add_node_with_terms("office", &["office", "clinic", "facility"]);
    let billing = b.add_node_with_terms("billing", &["billing", "bill"]);
    let conditions = b.add_node_with_terms("condition care", &["condition", "conditions"]);
    for c in [
        diagnosis, treatment, manner, staff, office, billing, conditions,
    ] {
        b.add_edge(root, c).expect("fresh top-level edge");
    }

    let leaf = |b: &mut HierarchyBuilder, parent, name: &str, terms: &[&str]| {
        let n = b.add_node_with_terms(name, terms);
        b.add_edge(parent, n).expect("fresh leaf edge");
        n
    };

    leaf(
        &mut b,
        diagnosis,
        "diagnostic accuracy",
        &["diagnostic accuracy", "accurate diagnosis", "misdiagnosis"],
    );
    leaf(
        &mut b,
        diagnosis,
        "thoroughness",
        &["thoroughness", "thorough exam", "examination"],
    );
    leaf(
        &mut b,
        diagnosis,
        "lab tests",
        &["lab test", "lab tests", "blood work", "labs"],
    );

    let medication = leaf(
        &mut b,
        treatment,
        "medication",
        &["medication", "prescription", "meds"],
    );
    leaf(
        &mut b,
        medication,
        "medication side effects",
        &["side effect", "side effects"],
    );
    let surgery = leaf(
        &mut b,
        treatment,
        "surgery",
        &["surgery", "operation", "procedure"],
    );
    leaf(
        &mut b,
        surgery,
        "tummy tuck",
        &["tummy tuck", "abdominoplasty"],
    );
    leaf(&mut b, surgery, "liposuction", &["liposuction", "lipo"]);
    leaf(
        &mut b,
        treatment,
        "physical therapy",
        &["physical therapy", "rehab", "therapy"],
    );
    leaf(
        &mut b,
        treatment,
        "follow-up",
        &["follow-up", "follow up", "aftercare"],
    );

    // Pain management sits under both treatment and condition care: a
    // genuine multi-parent DAG node, like its SNOMED counterpart.
    let pain = b.add_node_with_terms("pain management", &["pain management", "pain control"]);
    b.add_edge(treatment, pain).expect("fresh edge");
    b.add_edge(conditions, pain).expect("fresh edge");

    let heart = leaf(
        &mut b,
        conditions,
        "heart disease management",
        &["heart disease", "cardiac care", "heart condition"],
    );
    leaf(
        &mut b,
        heart,
        "blood pressure control",
        &["blood pressure", "hypertension"],
    );
    leaf(
        &mut b,
        conditions,
        "diabetes management",
        &["diabetes", "blood sugar"],
    );
    leaf(
        &mut b,
        conditions,
        "allergy care",
        &["allergy", "allergies"],
    );
    leaf(
        &mut b,
        conditions,
        "back pain care",
        &["back pain", "backache"],
    );

    leaf(
        &mut b,
        manner,
        "communication",
        &["communication", "explains", "explanation"],
    );
    leaf(&mut b, manner, "listening", &["listening", "listens"]);
    leaf(
        &mut b,
        manner,
        "empathy",
        &["empathy", "compassion", "caring attitude"],
    );

    leaf(&mut b, staff, "nurses", &["nurse", "nurses"]);
    leaf(
        &mut b,
        staff,
        "receptionist",
        &["receptionist", "front desk"],
    );

    leaf(
        &mut b,
        office,
        "wait time",
        &["wait time", "waiting time", "wait"],
    );
    leaf(
        &mut b,
        office,
        "scheduling",
        &["scheduling", "appointment", "appointments"],
    );
    leaf(
        &mut b,
        office,
        "cleanliness",
        &["cleanliness", "clean office", "hygiene"],
    );
    leaf(&mut b, office, "parking", &["parking"]);

    leaf(&mut b, billing, "insurance", &["insurance", "coverage"]);
    leaf(&mut b, billing, "cost", &["cost", "price", "charges"]);

    b.build().expect("doctor hierarchy is a valid rooted DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_ontology::HierarchyStats;

    #[test]
    fn phone_hierarchy_is_valid_and_sized_like_fig3() {
        let h = phone_hierarchy();
        assert_eq!(h.name(h.root()), "phone");
        // Fig. 3 organizes ~50 of the 100 popular aspects; ours has the
        // same 3-level shape.
        assert!(h.node_count() >= 45, "{}", h.node_count());
        assert_eq!(h.max_depth(), 2);
        assert_eq!(h.children(h.root()).len(), 10);
    }

    #[test]
    fn doctor_hierarchy_is_a_dag_with_multi_parent_nodes() {
        let h = doctor_hierarchy();
        let stats = HierarchyStats::compute(&h);
        assert!(stats.multi_parent_nodes >= 1, "pain management is shared");
        assert_eq!(h.max_depth(), 3);
        let pain = h.node_by_name("pain management").unwrap();
        assert_eq!(h.parents(pain).len(), 2);
    }

    #[test]
    fn key_concepts_are_lookupable() {
        let p = phone_hierarchy();
        for name in ["battery life", "screen color", "call quality", "wifi"] {
            assert!(p.node_by_name(name).is_some(), "{name}");
        }
        let d = doctor_hierarchy();
        for name in ["heart disease management", "wait time", "liposuction"] {
            assert!(d.node_by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn depths_follow_structure() {
        let p = phone_hierarchy();
        let batt = p.node_by_name("battery").unwrap();
        let life = p.node_by_name("battery life").unwrap();
        assert_eq!(p.depth(batt), 1);
        assert_eq!(p.depth(life), 2);
        assert!(p.is_ancestor(batt, life));
    }
}
