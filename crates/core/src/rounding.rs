//! Algorithm 1: LP relaxation + randomized rounding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ilp::build_model;
use crate::{CoverageGraph, Summarizer, Summary};

/// The paper's Algorithm 1 (after Young '02 / Chrobak et al. '06):
/// solve the LP relaxation of the Section 4.2 program, then sample `k`
/// candidates **without replacement** from the distribution
/// `q(p) = x_p / ‖x‖₁` over the fractional solution.
///
/// Theorem 3: the expected cost is `O(opt_{k'}(P))` for
/// `k' = O(k / log n)`; in practice (and in the paper's experiments) the
/// sampled summaries land within 1–2% of optimal.
///
/// `trials > 1` repeats the (cheap) sampling phase and keeps the best
/// draw — the LP is solved once either way.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedRounding {
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
    /// Number of independent sampling rounds (best kept). The paper's
    /// algorithm corresponds to `trials = 1`.
    pub trials: usize,
}

impl Default for RandomizedRounding {
    fn default() -> Self {
        RandomizedRounding {
            seed: 42,
            trials: 1,
        }
    }
}

impl RandomizedRounding {
    /// Construct with an explicit seed and a single sampling trial.
    pub fn with_seed(seed: u64) -> Self {
        RandomizedRounding { seed, trials: 1 }
    }

    /// Sample `k` distinct indices from `weights` (∝ weight, without
    /// replacement). Zero-weight items are drawn (uniformly) only once
    /// the positive mass is exhausted.
    fn sample_without_replacement(rng: &mut StdRng, weights: &[f64], k: usize) -> Vec<usize> {
        let mut w: Vec<f64> = weights.to_vec();
        let mut taken = vec![false; w.len()];
        let mut total: f64 = w.iter().sum();
        let mut chosen = Vec::with_capacity(k);
        for _ in 0..k.min(w.len()) {
            let pick = if total <= 1e-12 {
                // Residual uniform draw over the not-yet-chosen items.
                let remaining: Vec<usize> = (0..w.len()).filter(|&i| !taken[i]).collect();
                if remaining.is_empty() {
                    None
                } else {
                    Some(remaining[rng.gen_range(0..remaining.len())])
                }
            } else {
                let mut t = rng.gen_range(0.0..total);
                let mut idx = None;
                for (i, &wi) in w.iter().enumerate() {
                    if taken[i] || wi <= 0.0 {
                        continue;
                    }
                    if t < wi {
                        idx = Some(i);
                        break;
                    }
                    t -= wi;
                }
                // Floating-point edge: fall back to the last positive.
                idx.or_else(|| (0..w.len()).rev().find(|&i| !taken[i] && w[i] > 0.0))
            };
            let Some(i) = pick else { break };
            chosen.push(i);
            taken[i] = true;
            total -= w[i];
            w[i] = 0.0;
        }
        chosen
    }
}

impl Summarizer for RandomizedRounding {
    fn summarize(&self, graph: &CoverageGraph, k: usize) -> Summary {
        self.summarize_traced(graph, k, None)
    }

    fn summarize_traced(
        &self,
        graph: &CoverageGraph,
        k: usize,
        trace: Option<&osa_obs::Trace>,
    ) -> Summary {
        let k = k.min(graph.num_candidates());
        if k == 0 || graph.num_candidates() == 0 {
            return Summary {
                selected: Vec::new(),
                cost: graph.root_cost(),
            };
        }
        let (model, xs, _) = build_model(graph, k, false);
        // Auto picks the dual simplex here (non-negative distances), the
        // same method the paper selected in Gurobi for this LP class.
        let sol = model
            .solve_lp_with(osa_solver::LpMethod::Auto)
            .expect("coverage LP is bounded and well-formed");
        let weights: Vec<f64> = xs.iter().map(|&x| sol.value(x).max(0.0)).collect();
        let obs = osa_obs::global();
        obs.add("rr.lp_solves", 1);
        obs.add("rr.rounding_attempts", self.trials.max(1) as u64);
        if let Some(t) = trace {
            t.count("rr.lp_solves", 1);
            t.count("rr.rounding_attempts", self.trials.max(1) as u64);
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<Summary> = None;
        for _ in 0..self.trials.max(1) {
            let selected = Self::sample_without_replacement(&mut rng, &weights, k);
            let cost = graph.cost_of(&selected);
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(Summary { selected, cost });
            }
        }
        best.expect("at least one trial runs")
    }

    fn name(&self) -> &'static str {
        "randomized-rounding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedySummarizer, IlpSummarizer, Pair};
    use osa_ontology::HierarchyBuilder;

    fn instance() -> (osa_ontology::Hierarchy, Vec<Pair>) {
        let mut bl = HierarchyBuilder::new();
        bl.add_edge_by_name("r", "a").unwrap();
        bl.add_edge_by_name("r", "b").unwrap();
        bl.add_edge_by_name("r", "c").unwrap();
        bl.add_edge_by_name("a", "a1").unwrap();
        bl.add_edge_by_name("b", "b1").unwrap();
        let h = bl.build().unwrap();
        let p = |n: &str, s: f64| Pair::new(h.node_by_name(n).unwrap(), s);
        let pairs = vec![
            p("a", 0.3),
            p("a1", 0.2),
            p("b", -0.6),
            p("b1", -0.7),
            p("c", 0.9),
        ];
        (h, pairs)
    }

    #[test]
    fn returns_k_distinct_candidates() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = RandomizedRounding::with_seed(7).summarize(&g, 3);
        assert_eq!(s.selected.len(), 3);
        let mut sorted = s.selected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "no duplicates");
        assert_eq!(s.cost, g.cost_of(&s.selected));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let a = RandomizedRounding::with_seed(11).summarize(&g, 2);
        let b = RandomizedRounding::with_seed(11).summarize(&g, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn cost_between_opt_and_root() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let opt = IlpSummarizer.summarize(&g, 2).cost;
        let rr = RandomizedRounding::with_seed(3).summarize(&g, 2).cost;
        assert!(rr >= opt);
        assert!(rr <= g.root_cost());
    }

    #[test]
    fn multi_trial_never_hurts() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let one = RandomizedRounding { seed: 5, trials: 1 }.summarize(&g, 2);
        let many = RandomizedRounding {
            seed: 5,
            trials: 16,
        }
        .summarize(&g, 2);
        assert!(many.cost <= one.cost);
    }

    #[test]
    fn expected_quality_is_near_greedy() {
        // Averaged over seeds, RR should be in the same ballpark as
        // greedy on this easy instance (sanity check of the distribution,
        // not of the worst case).
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let greedy = GreedySummarizer.summarize(&g, 2).cost;
        let avg: f64 = (0..32)
            .map(|s| RandomizedRounding::with_seed(s).summarize(&g, 2).cost as f64)
            .sum::<f64>()
            / 32.0;
        assert!(avg <= greedy as f64 + 2.0, "avg={avg}, greedy={greedy}");
    }

    #[test]
    fn integral_mass_is_recovered_exactly() {
        // Regression: when the LP solution is integral (k unit weights),
        // sampling without replacement must return exactly that support —
        // an earlier version corrupted the running total with taken-item
        // markers and fell through to arbitrary zero-weight picks.
        let weights = [0.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut got = RandomizedRounding::sample_without_replacement(&mut rng, &weights, 3);
            got.sort_unstable();
            assert_eq!(got, vec![1, 3, 4], "seed {seed}");
        }
    }

    #[test]
    fn exhausted_mass_falls_back_to_uniform_without_duplicates() {
        let weights = [0.0, 0.5, 0.0, 0.0];
        let mut rng = StdRng::seed_from_u64(7);
        let mut got = RandomizedRounding::sample_without_replacement(&mut rng, &weights, 4);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn k_zero_is_root_cost() {
        let (h, pairs) = instance();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = RandomizedRounding::default().summarize(&g, 0);
        assert_eq!(s.cost, g.root_cost());
    }
}
