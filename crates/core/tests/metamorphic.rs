//! Metamorphic tests for the summarizers on synthetic instances: the
//! cost chain C(F, P) is non-increasing in `k`, the eager and lazy
//! greedy variants agree exactly (their tie-breaks are aligned on the
//! smallest candidate id), and relabeling the pair order leaves every
//! instance-level quantity — graph shape, root cost, exact optimum —
//! unchanged. Heuristic costs across permutations are compared against
//! the exact optimum rather than each other: an index tie-break means a
//! relabeling can legitimately steer greedy to a different (equally
//! greedy) summary.

use osa_core::{
    CoverageGraph, ExactBruteForce, Granularity, GreedySummarizer, LazyGreedySummarizer,
    LocalSearchSummarizer, Summarizer,
};
use osa_datasets::{sample_grouped_pairs, synthetic_ontology, SyntheticOntologyConfig};
use rand::{rngs::StdRng, SeedableRng};

/// A small synthetic instance: hierarchy, clustered pairs, and the
/// sentence/review groupings the pair sampler derives.
fn instance(seed: u64, n_pairs: usize) -> (osa_ontology::Hierarchy, Vec<osa_core::Pair>) {
    let cfg = SyntheticOntologyConfig {
        nodes: 60,
        levels: 4,
        multi_parent_prob: 0.15,
    };
    let h = synthetic_ontology(&cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
    let (pairs, _, _) = sample_grouped_pairs(&h, n_pairs, 3, 3, &mut rng);
    (h, pairs)
}

fn summarizers() -> Vec<Box<dyn Summarizer>> {
    vec![
        Box::new(GreedySummarizer),
        Box::new(LazyGreedySummarizer),
        Box::new(LocalSearchSummarizer::default()),
    ]
}

#[test]
fn cost_is_non_increasing_in_k() {
    for seed in [3u64, 17, 99] {
        let (h, pairs) = instance(seed, 40);
        let g = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        for s in summarizers() {
            let mut prev = None;
            for k in 0..=8 {
                let cost = s.summarize(&g, k).cost;
                if let Some(p) = prev {
                    assert!(
                        cost <= p,
                        "{} cost rose {p} -> {cost} at k={k} (seed {seed})",
                        s.name()
                    );
                }
                prev = Some(cost);
            }
        }
    }
}

#[test]
fn lazy_greedy_matches_eager_exactly() {
    for seed in [3u64, 17, 99] {
        let (h, pairs) = instance(seed, 50);
        for gran_groups in [None, Some(())] {
            let g = match gran_groups {
                None => CoverageGraph::for_pairs(&h, &pairs, 0.5),
                Some(()) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let (p, sents, _) = sample_grouped_pairs(&h, 50, 3, 3, &mut rng);
                    CoverageGraph::for_groups(&h, &p, &sents, 0.5, Granularity::Sentences)
                }
            };
            for k in 0..=6 {
                let eager = GreedySummarizer.summarize(&g, k);
                let lazy = LazyGreedySummarizer.summarize(&g, k);
                assert_eq!(
                    eager.selected, lazy.selected,
                    "selection diverged at k={k} (seed {seed})"
                );
                assert_eq!(eager.cost, lazy.cost);
            }
        }
    }
}

#[test]
fn pair_permutation_preserves_instance_level_quantities() {
    for seed in [3u64, 17, 99] {
        // Small enough for the brute-force oracle to stay fast.
        let (h, pairs) = instance(seed, 12);
        let k = 3;
        let base = CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let exact = ExactBruteForce.summarize(&base, k).cost;

        let mut reversed = pairs.clone();
        reversed.reverse();
        let mut rotated = pairs.clone();
        rotated.rotate_left(pairs.len() / 3);
        for (label, permuted) in [("reversed", &reversed), ("rotated", &rotated)] {
            let g = CoverageGraph::for_pairs(&h, permuted, 0.5);
            assert_eq!(g.num_pairs(), base.num_pairs(), "{label} (seed {seed})");
            assert_eq!(
                g.num_candidates(),
                base.num_candidates(),
                "{label} (seed {seed})"
            );
            assert_eq!(g.num_edges(), base.num_edges(), "{label} (seed {seed})");
            assert_eq!(g.root_cost(), base.root_cost(), "{label} (seed {seed})");
            assert_eq!(
                ExactBruteForce.summarize(&g, k).cost,
                exact,
                "{label} changed the exact optimum (seed {seed})"
            );
            for s in summarizers() {
                let cost = s.summarize(&g, k).cost;
                assert!(
                    cost >= exact,
                    "{} beat the exact optimum under {label}: {cost} < {exact} (seed {seed})",
                    s.name()
                );
            }
        }
    }
}
