//! Summary explanation: why each selected candidate is in the summary.
//!
//! Downstream UIs (and the CLI) want more than indices — they want to
//! show, per selected pair/sentence/review, how many opinions it
//! represents and how tightly. [`explain`] decomposes a summary into
//! per-candidate coverage assignments: each pair is attributed to the
//! selected candidate serving it at minimum distance (ties to the
//! earliest-selected candidate; pairs served best by the root stay with
//! the root).

use crate::{CoverageGraph, Summary};

/// Per-candidate share of a summary's coverage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateExplanation {
    /// The selected candidate.
    pub candidate: usize,
    /// Pairs this candidate serves (at minimal distance among the
    /// selection), as `(pair index, distance)`.
    pub serves: Vec<(usize, u32)>,
    /// Total weighted distance contributed by this candidate's pairs.
    pub cost_share: u64,
}

/// A full summary explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// One entry per selected candidate, in selection order.
    pub candidates: Vec<CandidateExplanation>,
    /// Pairs left to the virtual root, as `(pair index, depth)`.
    pub root_serves: Vec<(usize, u32)>,
    /// Weighted cost of the root-served pairs.
    pub root_cost_share: u64,
}

impl Explanation {
    /// Total cost (must equal the summary's cost).
    pub fn total_cost(&self) -> u64 {
        self.root_cost_share + self.candidates.iter().map(|c| c.cost_share).sum::<u64>()
    }
}

/// Attribute every pair of `graph` to its best server within `summary`.
pub fn explain(graph: &CoverageGraph, summary: &Summary) -> Explanation {
    let n_pairs = graph.num_pairs();
    // best[q] = (distance, Some(slot in summary.selected)).
    let mut best: Vec<(u32, Option<usize>)> =
        (0..n_pairs).map(|q| (graph.root_dist(q), None)).collect();
    for (slot, &u) in summary.selected.iter().enumerate() {
        for &(q, d) in graph.covered_by(u) {
            let entry = &mut best[q as usize];
            if d < entry.0 {
                *entry = (d, Some(slot));
            }
        }
    }

    let mut candidates: Vec<CandidateExplanation> = summary
        .selected
        .iter()
        .map(|&u| CandidateExplanation {
            candidate: u,
            serves: Vec::new(),
            cost_share: 0,
        })
        .collect();
    let mut root_serves = Vec::new();
    let mut root_cost_share = 0u64;
    for (q, &(d, slot)) in best.iter().enumerate() {
        let weighted = u64::from(d) * graph.pair_weight(q);
        match slot {
            Some(s) => {
                candidates[s].serves.push((q, d));
                candidates[s].cost_share += weighted;
            }
            None => {
                root_serves.push((q, d));
                root_cost_share += weighted;
            }
        }
    }

    let ex = Explanation {
        candidates,
        root_serves,
        root_cost_share,
    };
    debug_assert_eq!(ex.total_cost(), graph.cost_of(&summary.selected));
    ex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedySummarizer, Pair, Summarizer};
    use osa_ontology::HierarchyBuilder;

    fn setup() -> (osa_ontology::Hierarchy, Vec<Pair>) {
        let mut bl = HierarchyBuilder::new();
        bl.add_edge_by_name("r", "a").unwrap();
        bl.add_edge_by_name("a", "a1").unwrap();
        bl.add_edge_by_name("a", "a2").unwrap();
        bl.add_edge_by_name("r", "b").unwrap();
        let h = bl.build().unwrap();
        let p = |n: &str, s: f64| Pair::new(h.node_by_name(n).unwrap(), s);
        (
            h.clone(),
            vec![p("a", 0.1), p("a1", 0.2), p("a2", 0.0), p("b", -0.8)],
        )
    }

    #[test]
    fn explanation_partitions_pairs_and_costs() {
        let (h, pairs) = setup();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = GreedySummarizer.summarize(&g, 2);
        let ex = explain(&g, &s);
        assert_eq!(ex.total_cost(), s.cost);
        // Every pair appears exactly once across candidates + root.
        let mut seen: Vec<usize> = ex
            .candidates
            .iter()
            .flat_map(|c| c.serves.iter().map(|&(q, _)| q))
            .chain(ex.root_serves.iter().map(|&(q, _)| q))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ties_go_to_earlier_selection() {
        let (h, pairs) = setup();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        // Select pairs 1 (a1) and 2 (a2); both serve only themselves at 0
        // and neither covers the other. Pair 0 (a) is not covered by
        // either (a1/a2 are not ancestors of a) → root.
        let s = Summary {
            selected: vec![1, 2],
            cost: g.cost_of(&[1, 2]),
        };
        let ex = explain(&g, &s);
        assert_eq!(ex.candidates[0].serves, vec![(1, 0)]);
        assert_eq!(ex.candidates[1].serves, vec![(2, 0)]);
        assert!(ex.root_serves.iter().any(|&(q, _)| q == 0));
    }

    #[test]
    fn empty_summary_explains_to_root() {
        let (h, pairs) = setup();
        let g = crate::CoverageGraph::for_pairs(&h, &pairs, 0.5);
        let s = Summary {
            selected: vec![],
            cost: g.root_cost(),
        };
        let ex = explain(&g, &s);
        assert!(ex.candidates.is_empty());
        assert_eq!(ex.root_serves.len(), 4);
        assert_eq!(ex.total_cost(), g.root_cost());
    }
}
