//! Dictionary-based concept extraction over an ontology's term lexicon —
//! the workspace's MetaMap stand-in.

use osa_ontology::{Hierarchy, NodeId};

use crate::stem::stem;
use crate::trie::Trie;

/// A concept mention found in a token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConceptMention {
    /// The matched ontology concept.
    pub concept: NodeId,
    /// Token index where the mention starts.
    pub start: usize,
    /// Mention length in tokens.
    pub len: usize,
}

/// Matches ontology concepts in tokenized text via a longest-match trie
/// over every node's surface terms. Terms are matched both verbatim and
/// stem-normalized, so "screens" still finds the "screen" concept.
///
/// The root concept is deliberately excluded: a mention of the item
/// itself ("this phone…") carries no aspect information, and the
/// summarization framework treats the root specially.
#[derive(Debug, Clone)]
pub struct ConceptMatcher {
    exact: Trie<NodeId>,
    stemmed: Trie<NodeId>,
}

impl ConceptMatcher {
    /// Build a matcher from every non-root node's term list.
    pub fn from_hierarchy(h: &Hierarchy) -> Self {
        let mut exact = Trie::new();
        let mut stemmed = Trie::new();
        for node in h.nodes() {
            if node == h.root() {
                continue;
            }
            for term in h.terms(node) {
                let toks = crate::tokenize(term);
                if toks.is_empty() {
                    continue;
                }
                let stems: Vec<String> = toks.iter().map(|t| stem(t)).collect();
                exact.insert(&toks, node);
                stemmed.insert(&stems, node);
            }
        }
        ConceptMatcher { exact, stemmed }
    }

    /// Find all non-overlapping concept mentions in a token slice.
    /// Exact-form matches are found first; stem-normalized matching then
    /// fills positions the exact pass left uncovered.
    pub fn find(&self, tokens: &[String]) -> Vec<ConceptMention> {
        let mut mentions: Vec<ConceptMention> = self
            .exact
            .scan(tokens)
            .into_iter()
            .map(|(start, len, concept)| ConceptMention {
                concept,
                start,
                len,
            })
            .collect();

        // Mark token positions already consumed by exact matches.
        let mut used = vec![false; tokens.len()];
        for m in &mentions {
            for u in used.iter_mut().skip(m.start).take(m.len) {
                *u = true;
            }
        }
        let stems: Vec<String> = tokens.iter().map(|t| stem(t)).collect();
        for (start, len, concept) in self.stemmed.scan(&stems) {
            if used[start..start + len].iter().any(|&u| u) {
                continue;
            }
            mentions.push(ConceptMention {
                concept,
                start,
                len,
            });
        }
        mentions.sort_by_key(|m| m.start);
        osa_obs::global().add("text.concept_matches", mentions.len() as u64);
        mentions
    }

    /// Convenience: tokenize a raw sentence and find mentions.
    pub fn find_in_sentence(&self, sentence: &str) -> Vec<ConceptMention> {
        self.find(&crate::tokenize(sentence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_ontology::HierarchyBuilder;

    fn phone() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node_with_terms("phone", &["phone", "cellphone"]);
        let screen = b.add_node_with_terms("screen", &["screen", "display"]);
        let color = b.add_node_with_terms("screen color", &["display color", "screen color"]);
        let battery = b.add_node_with_terms("battery", &["battery", "battery life"]);
        b.add_edge(root, screen).unwrap();
        b.add_edge(screen, color).unwrap();
        b.add_edge(root, battery).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_longest_mention() {
        let h = phone();
        let m = ConceptMatcher::from_hierarchy(&h);
        let hits = m.find_in_sentence("The display color is stunning");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].concept, h.node_by_name("screen color").unwrap());
        assert_eq!((hits[0].start, hits[0].len), (1, 2));
    }

    #[test]
    fn root_is_never_matched() {
        let h = phone();
        let m = ConceptMatcher::from_hierarchy(&h);
        assert!(m.find_in_sentence("I love this phone").is_empty());
        assert!(m.find_in_sentence("nice cellphone").is_empty());
    }

    #[test]
    fn stemmed_fallback_matches_plurals() {
        let h = phone();
        let m = ConceptMatcher::from_hierarchy(&h);
        let hits = m.find_in_sentence("the screens are bright");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].concept, h.node_by_name("screen").unwrap());
    }

    #[test]
    fn multiple_mentions_in_order() {
        let h = phone();
        let m = ConceptMatcher::from_hierarchy(&h);
        let hits = m.find_in_sentence("battery life is bad but the screen is great");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].concept, h.node_by_name("battery").unwrap());
        assert_eq!(hits[1].concept, h.node_by_name("screen").unwrap());
        assert!(hits[0].start < hits[1].start);
    }

    #[test]
    fn exact_match_beats_stemmed_overlap() {
        let h = phone();
        let m = ConceptMatcher::from_hierarchy(&h);
        // "battery life" matches exactly (2 tokens); the stemmed pass must
        // not re-report "battery" at the same position.
        let hits = m.find_in_sentence("battery life");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].len, 2);
    }
}
