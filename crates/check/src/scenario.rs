//! Seeded scenario generation and (de)serialization.
//!
//! A [`Scenario`] is one self-contained differential-testing instance:
//! either a synthesized review corpus (run through the full
//! extract → graph → summarize pipeline) or a synthetic-ontology pair
//! instance (run through the graph/solver layers directly), plus the
//! config point (k, ε, granularity) it is checked at. Everything derives
//! from `(run seed, case index)` via the same SplitMix64 mix the batch
//! engine uses for per-item seeds, so a run is reproducible from its
//! seed alone — and a scenario also serializes to JSON in full, so a
//! shrunk failing case replays even after generator changes.

use osa_core::{Granularity, Pair};
use osa_datasets::{
    corpus_from_json, corpus_to_json, sample_grouped_pairs, synthetic_ontology, Corpus,
    CorpusConfig, SyntheticOntologyConfig,
};
use osa_json::Value;
use osa_ontology::{AncestorImpl, Hierarchy};
use osa_runtime::item_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic-ontology instance: pairs sampled over a random DAG, with
/// the sentence/review groupings the grouped granularities need.
#[derive(Debug)]
pub struct SynthInstance {
    /// The random rooted DAG.
    pub hierarchy: Hierarchy,
    /// Sampled concept-sentiment pairs.
    pub pairs: Vec<Pair>,
    /// Pair-index partition into sentences.
    pub sentence_groups: Vec<Vec<usize>>,
    /// Pair-index partition into reviews.
    pub review_groups: Vec<Vec<usize>>,
}

/// The payload of a scenario.
#[derive(Debug)]
pub enum ScenarioKind {
    /// A synthesized review corpus — exercises the full pipeline.
    Corpus(Corpus),
    /// A direct pair instance — exercises graph builders and solvers.
    Synth(SynthInstance),
}

/// One differential-testing instance.
#[derive(Debug)]
pub struct Scenario {
    /// Case index within the run.
    pub case: usize,
    /// The case's derived seed (mixes the run seed and the case index).
    pub seed: u64,
    /// Summary size.
    pub k: usize,
    /// Sentiment threshold ε.
    pub eps: f64,
    /// Candidate granularity.
    pub granularity: Granularity,
    /// Baseline ancestor-query implementation the scenario's pipeline
    /// checks run under. The dedicated twin checks always cross dense
    /// against segmented regardless; this axis lets `osars check
    /// --ancestor-impl segmented` re-run the *whole* suite on the
    /// compressed index.
    pub ancestor: AncestorImpl,
    /// The instance data.
    pub kind: ScenarioKind,
}

/// CLI spelling of a granularity.
pub fn granularity_name(g: Granularity) -> &'static str {
    match g {
        Granularity::Pairs => "pairs",
        Granularity::Sentences => "sentences",
        Granularity::Reviews => "reviews",
    }
}

/// Parse the CLI spelling of a granularity.
pub fn granularity_from_name(name: &str) -> Option<Granularity> {
    Some(match name {
        "pairs" => Granularity::Pairs,
        "sentences" => Granularity::Sentences,
        "reviews" => Granularity::Reviews,
        _ => return None,
    })
}

impl Scenario {
    /// Generate case `case` of the run seeded by `run_seed`.
    ///
    /// Scenario kinds cycle (doctors corpus, phones corpus, synthetic
    /// instance) so every run covers all three; the remaining knobs are
    /// drawn from the case seed.
    pub fn generate(run_seed: u64, case: usize) -> Scenario {
        let seed = item_seed(run_seed, case as u64);
        let draw = |n: u64| item_seed(seed, n);
        let k = 1 + (draw(1) % 6) as usize;
        let eps = [0.25, 0.5, 0.75, 1.0][(draw(2) % 4) as usize];
        let granularity = [
            Granularity::Pairs,
            Granularity::Sentences,
            Granularity::Reviews,
        ][(draw(3) % 3) as usize];
        let kind = match case % 3 {
            0 | 1 => {
                let cfg = CorpusConfig {
                    items: 2 + (draw(4) % 3) as usize,
                    min_reviews: 2,
                    max_reviews: 3 + (draw(5) % 3) as usize,
                    mean_reviews: 2.5 + (draw(6) % 16) as f64 / 10.0,
                    mean_sentences: 2.5 + (draw(7) % 16) as f64 / 10.0,
                    aspect_sentence_prob: 0.7 + (draw(8) % 21) as f64 / 100.0,
                };
                let corpus = if case.is_multiple_of(3) {
                    Corpus::doctors(&cfg, draw(9))
                } else {
                    Corpus::phones(&cfg, draw(9))
                };
                ScenarioKind::Corpus(corpus)
            }
            _ => {
                let cfg = SyntheticOntologyConfig {
                    nodes: 40 + (draw(4) % 81) as usize,
                    levels: 3 + (draw(5) % 3) as usize,
                    multi_parent_prob: 0.1 + (draw(6) % 21) as f64 / 100.0,
                };
                let hierarchy = synthetic_ontology(&cfg, draw(7));
                let mut rng = StdRng::seed_from_u64(draw(8));
                let n_pairs = 30 + (draw(9) % 91) as usize;
                let clusters = 2 + (draw(10) % 3) as usize;
                let (pairs, sentence_groups, review_groups) =
                    sample_grouped_pairs(&hierarchy, n_pairs, clusters, 3, &mut rng);
                ScenarioKind::Synth(SynthInstance {
                    hierarchy,
                    pairs,
                    sentence_groups,
                    review_groups,
                })
            }
        };
        Scenario {
            case,
            seed,
            k,
            eps,
            granularity,
            ancestor: AncestorImpl::Dense,
            kind,
        }
    }

    /// One-line description for the run report (fully deterministic).
    pub fn describe(&self) -> String {
        let what = match &self.kind {
            ScenarioKind::Corpus(c) => format!(
                "{} items={} reviews={}",
                c.name,
                c.items.len(),
                c.total_reviews()
            ),
            ScenarioKind::Synth(s) => format!(
                "synth nodes={} pairs={}",
                s.hierarchy.node_count(),
                s.pairs.len()
            ),
        };
        format!(
            "{what} k={} eps={:.2} {} {}",
            self.k,
            self.eps,
            granularity_name(self.granularity),
            self.ancestor.name()
        )
    }

    /// Serialize to the replayable `check-case.json` document, tagged
    /// with the check it failed.
    pub fn to_case_value(&self, check: &str, faults: bool, edits: bool) -> Value {
        let mut members = vec![
            ("version".into(), Value::from(1usize)),
            ("check".into(), Value::from(check)),
            ("faults".into(), Value::from(faults)),
            ("edits".into(), Value::from(edits)),
            ("case".into(), Value::from(self.case)),
            ("seed".into(), Value::Number(self.seed as f64)),
            ("k".into(), Value::from(self.k)),
            ("eps".into(), Value::from(self.eps)),
            (
                "granularity".into(),
                Value::from(granularity_name(self.granularity)),
            ),
            ("ancestor-impl".into(), Value::from(self.ancestor.name())),
        ];
        match &self.kind {
            ScenarioKind::Corpus(c) => {
                let corpus = osa_json::parse(&corpus_to_json(c)).expect("corpus JSON is valid");
                members.push(("kind".into(), Value::from("corpus")));
                members.push(("corpus".into(), corpus));
            }
            ScenarioKind::Synth(s) => {
                let pairs = s
                    .pairs
                    .iter()
                    .map(|p| {
                        Value::Array(vec![
                            Value::from(s.hierarchy.name(p.concept)),
                            Value::from(p.sentiment),
                        ])
                    })
                    .collect();
                let groups = |gs: &[Vec<usize>]| {
                    Value::Array(
                        gs.iter()
                            .map(|g| Value::Array(g.iter().map(|&i| Value::from(i)).collect()))
                            .collect(),
                    )
                };
                members.push(("kind".into(), Value::from("synth")));
                members.push(("hierarchy".into(), osa_ontology::io::to_value(&s.hierarchy)));
                members.push(("pairs".into(), Value::Array(pairs)));
                members.push(("sentence_groups".into(), groups(&s.sentence_groups)));
                members.push(("review_groups".into(), groups(&s.review_groups)));
            }
        }
        Value::Object(members)
    }

    /// Parse a `check-case.json` document back into `(scenario, check
    /// name, faults flag, edits flag)`. The `"edits"` member is optional
    /// — case files written before the incremental oracle existed parse
    /// as `edits = false`.
    pub fn from_case_value(doc: &Value) -> Result<(Scenario, String, bool, bool), String> {
        let str_field = |name: &str| {
            doc.get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("case file: missing string '{name}'"))
        };
        let num_field = |name: &str| {
            doc.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("case file: missing number '{name}'"))
        };
        let check = str_field("check")?;
        let faults = matches!(doc.get("faults"), Some(Value::Bool(true)));
        let edits = matches!(doc.get("edits"), Some(Value::Bool(true)));
        let case = num_field("case")? as usize;
        let seed = num_field("seed")? as u64;
        let k = num_field("k")? as usize;
        let eps = num_field("eps")?;
        let granularity = granularity_from_name(&str_field("granularity")?)
            .ok_or_else(|| "case file: bad granularity".to_owned())?;
        // Optional for backward compatibility: case files written before
        // the ancestor axis existed replay under the dense oracle.
        let ancestor = match doc.get("ancestor-impl").and_then(Value::as_str) {
            Some(name) => AncestorImpl::from_name(name)
                .ok_or_else(|| format!("case file: unknown ancestor-impl '{name}'"))?,
            None => AncestorImpl::Dense,
        };
        let kind = match str_field("kind")?.as_str() {
            "corpus" => {
                let corpus = doc
                    .get("corpus")
                    .ok_or_else(|| "case file: missing 'corpus'".to_owned())?;
                ScenarioKind::Corpus(
                    corpus_from_json(&osa_json::to_string(corpus)).map_err(|e| e.to_string())?,
                )
            }
            "synth" => {
                let hierarchy = osa_ontology::io::from_value(
                    doc.get("hierarchy")
                        .ok_or_else(|| "case file: missing 'hierarchy'".to_owned())?,
                )
                .map_err(|e| format!("case file: {e}"))?;
                let pair_docs = doc
                    .get("pairs")
                    .and_then(Value::as_array)
                    .ok_or_else(|| "case file: missing 'pairs'".to_owned())?;
                let mut pairs = Vec::with_capacity(pair_docs.len());
                for p in pair_docs {
                    let (name, sentiment) = match p.as_array() {
                        Some([n, s]) => (
                            n.as_str()
                                .ok_or("case file: pair concept must be a string")?,
                            s.as_f64()
                                .ok_or("case file: pair sentiment must be a number")?,
                        ),
                        _ => return Err("case file: pair must be [concept, sentiment]".into()),
                    };
                    let concept = hierarchy
                        .node_by_name(name)
                        .ok_or_else(|| format!("case file: unknown concept '{name}'"))?;
                    pairs.push(Pair::new(concept, sentiment));
                }
                let groups = |field: &str| -> Result<Vec<Vec<usize>>, String> {
                    doc.get(field)
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("case file: missing '{field}'"))?
                        .iter()
                        .map(|g| {
                            g.as_array()
                                .ok_or_else(|| format!("case file: '{field}' must hold arrays"))?
                                .iter()
                                .map(|i| {
                                    i.as_u64().map(|x| x as usize).ok_or_else(|| {
                                        format!("case file: '{field}' indices must be integers")
                                    })
                                })
                                .collect()
                        })
                        .collect()
                };
                ScenarioKind::Synth(SynthInstance {
                    hierarchy,
                    pairs,
                    sentence_groups: groups("sentence_groups")?,
                    review_groups: groups("review_groups")?,
                })
            }
            other => return Err(format!("case file: unknown kind '{other}'")),
        };
        Ok((
            Scenario {
                case,
                seed,
                k,
                eps,
                granularity,
                ancestor,
                kind,
            },
            check,
            faults,
            edits,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for case in 0..6 {
            let a = Scenario::generate(42, case);
            let b = Scenario::generate(42, case);
            assert_eq!(a.describe(), b.describe(), "case {case}");
            assert_eq!(a.k, b.k);
            assert_eq!(a.eps, b.eps);
        }
        // A different run seed reshuffles at least one case description.
        assert!((0..6).any(|c| {
            Scenario::generate(42, c).describe() != Scenario::generate(43, c).describe()
        }));
    }

    #[test]
    fn kinds_cycle_through_corpora_and_synth() {
        assert!(matches!(
            Scenario::generate(1, 0).kind,
            ScenarioKind::Corpus(_)
        ));
        assert!(matches!(
            Scenario::generate(1, 1).kind,
            ScenarioKind::Corpus(_)
        ));
        assert!(matches!(
            Scenario::generate(1, 2).kind,
            ScenarioKind::Synth(_)
        ));
    }

    #[test]
    fn corpus_case_roundtrips_through_json() {
        let s = Scenario::generate(7, 0);
        let doc = s.to_case_value("impl-matrix-bytes", false, true);
        let json = osa_json::to_string(&doc);
        let (s2, check, faults, edits) =
            Scenario::from_case_value(&osa_json::parse(&json).unwrap()).unwrap();
        assert_eq!(check, "impl-matrix-bytes");
        assert!(!faults);
        assert!(edits);
        assert_eq!(s.describe(), s2.describe());
        assert_eq!(s.k, s2.k);
        assert_eq!(s.eps, s2.eps);
        assert_eq!(s.granularity, s2.granularity);
    }

    #[test]
    fn synth_case_roundtrips_through_json() {
        let s = Scenario::generate(7, 2);
        let doc = s.to_case_value("graph-impl-equality", true, false);
        let (s2, check, faults, edits) = Scenario::from_case_value(&doc).unwrap();
        assert_eq!(check, "graph-impl-equality");
        assert!(faults);
        assert!(!edits);
        let (ScenarioKind::Synth(a), ScenarioKind::Synth(b)) = (&s.kind, &s2.kind) else {
            panic!("expected synth scenarios");
        };
        assert_eq!(a.pairs.len(), b.pairs.len());
        assert_eq!(a.sentence_groups, b.sentence_groups);
        assert_eq!(a.review_groups, b.review_groups);
        for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(a.hierarchy.name(pa.concept), b.hierarchy.name(pb.concept));
            assert_eq!(pa.sentiment.to_bits(), pb.sentiment.to_bits());
        }
    }

    #[test]
    fn ancestor_axis_roundtrips_and_defaults_to_dense() {
        let mut s = Scenario::generate(7, 0);
        s.ancestor = AncestorImpl::Segmented;
        let doc = s.to_case_value("impl-matrix-bytes", false, false);
        let (s2, ..) = Scenario::from_case_value(&doc).unwrap();
        assert_eq!(s2.ancestor, AncestorImpl::Segmented);
        assert!(s2.describe().ends_with("segmented"));
        // Case files written before the axis existed carry no
        // "ancestor-impl" member and must replay under the dense oracle.
        let Value::Object(members) = doc else {
            panic!()
        };
        let legacy = Value::Object(
            members
                .into_iter()
                .filter(|(k, _)| k != "ancestor-impl")
                .collect(),
        );
        let (s3, ..) = Scenario::from_case_value(&legacy).unwrap();
        assert_eq!(s3.ancestor, AncestorImpl::Dense);
    }

    #[test]
    fn rejects_malformed_case_files() {
        assert!(Scenario::from_case_value(&osa_json::parse("{}").unwrap()).is_err());
        let s = Scenario::generate(3, 2);
        let doc = s.to_case_value("x", false, false);
        let json = osa_json::to_string(&doc).replace("\"synth\"", "\"mystery\"");
        assert!(Scenario::from_case_value(&osa_json::parse(&json).unwrap()).is_err());
    }
}
