//! Greedy ablation (`bench_ablation_heap`): Algorithm 2's max-heap with
//! two-hop updates vs CELF lazy evaluation vs the naive re-scan greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osa_bench::{quant_workload, NaiveGreedy};
use osa_core::{GreedySummarizer, LazyGreedySummarizer, Summarizer};

fn bench_greedy(c: &mut Criterion) {
    let w = quant_workload(1, 300, 13);
    let graph = w.items[0].graph(&w.hierarchy, 0.5, osa_core::Granularity::Pairs);
    let k = 10;
    let mut group = c.benchmark_group("greedy/variants");
    for (name, alg) in [
        ("heap", &GreedySummarizer as &dyn Summarizer),
        ("lazy", &LazyGreedySummarizer),
        ("naive", &NaiveGreedy),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| alg.summarize(&graph, k));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
