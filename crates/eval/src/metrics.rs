//! The sentiment-error measures of Section 5.3.

use osa_core::Pair;
use osa_ontology::Hierarchy;

/// Per-pair error of Eq. 1 against a summary pair set `F`:
///
/// 1. `c_p ∈ F` → smallest `|s_f − s_p|` over pairs on the same concept;
/// 2. else, if an ancestor of `c_p` is in `F` → smallest `|s_f − s_p|`
///    over pairs on the *lowest* (closest) such ancestor;
/// 3. else → the `missing` penalty.
fn err_pair(h: &Hierarchy, f: &[Pair], p: &Pair, missing: impl Fn(&Pair) -> f64) -> f64 {
    // Branch 1: exact concept.
    let same: Option<f64> = f
        .iter()
        .filter(|q| q.concept == p.concept)
        .map(|q| (q.sentiment - p.sentiment).abs())
        .min_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    if let Some(e) = same {
        return e;
    }
    // Branch 2: lowest ancestor(s) present in F. In a multi-parent DAG
    // several ancestors can tie at the minimal distance; the error is the
    // min over all pairs on any of them (deterministic, and faithful to
    // Eq. 1's "lowest ancestor" intent).
    let mut ancestors = h.ancestors_with_dist(p.concept);
    ancestors.sort_by_key(|&(_, d)| d);
    let mut i = 0;
    while i < ancestors.len() {
        let d = ancestors[i].1;
        let tier_end = ancestors[i..]
            .iter()
            .position(|&(_, dd)| dd != d)
            .map_or(ancestors.len(), |off| i + off);
        if d > 0 {
            let best: Option<f64> = f
                .iter()
                .filter(|q| {
                    ancestors[i..tier_end]
                        .iter()
                        .any(|&(anc, _)| q.concept == anc)
                })
                .map(|q| (q.sentiment - p.sentiment).abs())
                .min_by(|a, b| a.partial_cmp(b).expect("finite errors"));
            if let Some(e) = best {
                return e;
            }
        }
        i = tier_end;
    }
    // Branch 3: concept entirely missing from the summary.
    missing(p)
}

/// Root-mean-square sentiment error of summary `f` w.r.t. the original
/// pairs `p` ("sent-err"). Missing concepts are treated as if the summary
/// claimed neutral sentiment: error `|s_p|`.
///
/// Returns 0 for an empty `p`.
pub fn sent_err(h: &Hierarchy, p: &[Pair], f: &[Pair]) -> f64 {
    rms(h, p, f, |pair| pair.sentiment.abs())
}

/// The penalized variant: a missing concept incurs the *largest possible*
/// error `max(|1 − s_p|, |−1 − s_p|)` (the extremes of the sentiment
/// scale).
pub fn sent_err_penalized(h: &Hierarchy, p: &[Pair], f: &[Pair]) -> f64 {
    rms(h, p, f, |pair| {
        let s = pair.sentiment;
        (1.0 - s).abs().max((-1.0 - s).abs())
    })
}

fn rms(h: &Hierarchy, p: &[Pair], f: &[Pair], missing: impl Fn(&Pair) -> f64 + Copy) -> f64 {
    if p.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = p
        .iter()
        .map(|pair| {
            let e = err_pair(h, f, pair, missing);
            e * e
        })
        .sum();
    (sum_sq / p.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_ontology::HierarchyBuilder;

    fn setup() -> (Hierarchy, Vec<osa_ontology::NodeId>) {
        // r -> a -> b ; r -> c
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a = bl.add_node("a");
        let b = bl.add_node("b");
        let c = bl.add_node("c");
        bl.add_edge(r, a).unwrap();
        bl.add_edge(a, b).unwrap();
        bl.add_edge(r, c).unwrap();
        (bl.build().unwrap(), vec![r, a, b, c])
    }

    #[test]
    fn perfect_summary_has_zero_error() {
        let (h, ids) = setup();
        let p = vec![Pair::new(ids[1], 0.5), Pair::new(ids[3], -0.5)];
        assert_eq!(sent_err(&h, &p, &p), 0.0);
        assert_eq!(sent_err_penalized(&h, &p, &p), 0.0);
    }

    #[test]
    fn same_concept_takes_min_difference() {
        let (h, ids) = setup();
        let p = vec![Pair::new(ids[1], 0.5)];
        let f = vec![Pair::new(ids[1], 0.9), Pair::new(ids[1], 0.6)];
        assert!((sent_err(&h, &p, &f) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lowest_ancestor_is_used() {
        let (h, ids) = setup();
        // p on b; summary has a (parent, 0.3) and a pair on... also root
        // isn't in F. Lowest ancestor in F is a.
        let p = vec![Pair::new(ids[2], 0.5)];
        let f = vec![Pair::new(ids[1], 0.3)];
        assert!((sent_err(&h, &p, &f) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn tied_ancestors_take_the_minimum_across_the_tie() {
        // Diamond: r -> {a1, a2} -> c. Both parents of c are at distance
        // 1; the error must be the min over pairs on either of them,
        // regardless of BFS enumeration order.
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a1 = bl.add_node("a1");
        let a2 = bl.add_node("a2");
        let c = bl.add_node("c");
        bl.add_edge(r, a1).unwrap();
        bl.add_edge(r, a2).unwrap();
        bl.add_edge(a1, c).unwrap();
        bl.add_edge(a2, c).unwrap();
        let h = bl.build().unwrap();
        let p = vec![Pair::new(c, 0.1)];
        let f = vec![Pair::new(a1, 0.9), Pair::new(a2, 0.1)];
        assert!(
            sent_err(&h, &p, &f).abs() < 1e-12,
            "min across the tie is 0"
        );
        let f_rev = vec![Pair::new(a2, 0.9), Pair::new(a1, 0.1)];
        assert!(sent_err(&h, &p, &f_rev).abs() < 1e-12);
    }

    #[test]
    fn missing_concept_neutral_vs_penalized() {
        let (h, ids) = setup();
        let p = vec![Pair::new(ids[3], 0.8)];
        let f = vec![Pair::new(ids[1], 0.8)]; // a is not an ancestor of c
        assert!((sent_err(&h, &p, &f) - 0.8).abs() < 1e-12);
        // Penalized: max(|1-0.8|, |-1-0.8|) = 1.8.
        assert!((sent_err_penalized(&h, &p, &f) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn penalized_dominates_plain() {
        let (h, ids) = setup();
        let p = vec![
            Pair::new(ids[1], 0.4),
            Pair::new(ids[2], -0.6),
            Pair::new(ids[3], 0.9),
        ];
        let f = vec![Pair::new(ids[1], 0.1)];
        assert!(sent_err_penalized(&h, &p, &f) >= sent_err(&h, &p, &f));
    }

    #[test]
    fn rms_aggregation() {
        let (h, ids) = setup();
        // Two pairs, errors 0.3 and 0.4 → rms = sqrt((0.09+0.16)/2) = 0.3536.
        let p = vec![Pair::new(ids[1], 0.5), Pair::new(ids[3], 0.4)];
        let f = vec![Pair::new(ids[1], 0.2), Pair::new(ids[3], 0.0)];
        let expect = ((0.09f64 + 0.16) / 2.0).sqrt();
        assert!((sent_err(&h, &p, &f) - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let (h, ids) = setup();
        assert_eq!(sent_err(&h, &[], &[]), 0.0);
        // Empty summary: every pair falls to the missing branch.
        let p = vec![Pair::new(ids[1], 0.6)];
        assert!((sent_err(&h, &p, &[]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn better_summaries_score_lower() {
        let (h, ids) = setup();
        let p = vec![
            Pair::new(ids[1], 0.5),
            Pair::new(ids[2], 0.4),
            Pair::new(ids[3], -0.7),
        ];
        let good = vec![Pair::new(ids[1], 0.5), Pair::new(ids[3], -0.7)];
        let bad = vec![Pair::new(ids[1], -0.9)];
        assert!(sent_err(&h, &p, &good) < sent_err(&h, &p, &bad));
    }
}
