//! Property tests for the compiled artifact codec (`osars compile` /
//! `--artifacts`): encode→decode round-trips are lossless down to
//! sentiment bit patterns, the lazy block store is item-for-item
//! equivalent to the eager decoder, and every corruption mode — a file
//! truncated at any byte, a flipped checksum or payload byte, a stale
//! version tag, a wrong-endian magic — reports a typed
//! [`ArtifactError`], never a panic and never a silently wrong decode.

use osars::artifact::{self, ArtifactError};
use osars::datasets::{Corpus, ExtractImpl, ExtractedItem, Extractor, Item, Review};
use osars::ontology::{Hierarchy, HierarchyBuilder, NodeId};
use osars::text::ExtractScratch;
use proptest::prelude::*;

/// Little-endian header layout shared with the codec: magic u32,
/// version u32, payload length u64, checksum u64.
const HEADER_LEN: usize = 24;

/// A small multi-parent DAG whose terms exercise multi-token matches
/// ("battery life") and stemming ("cameras"), so the stored extraction
/// output has non-trivial pairs, sentences and token pools.
fn term_hierarchy() -> Hierarchy {
    let mut b = HierarchyBuilder::new();
    for (parent, child) in [
        ("device", "battery"),
        ("battery", "battery life"),
        ("device", "screen"),
        ("device", "cameras"),
        ("screen", "touch screen"),
        // Multi-parent: "touch screen" also under "battery" would be
        // nonsense; give "cameras" a second parent instead.
        ("screen", "cameras"),
    ] {
        b.add_edge_by_name(parent, child).unwrap();
    }
    b.build().unwrap()
}

/// Review fragments: concept terms, lexicon words, shifters, sentence
/// punctuation, empty/whitespace runs and non-BMP scalars (string
/// fields are length-prefixed raw UTF-8, so offsets must survive
/// 4-byte scalars).
const PIECES: &[&str] = &[
    "battery",
    "battery life",
    "screen",
    "touch screen",
    "cameras",
    "camera",
    "great",
    "terrible",
    "not",
    "very",
    "the",
    ".",
    "!",
    "",
    "   ",
    "𝑨",
    "😀",
];

/// Planted sentiments including both signed zeros — the codec stores
/// `f64::to_bits`, so `-0.0` must survive (a text round-trip would
/// collapse it).
const SENTIMENTS: &[f64] = &[1.0, -1.0, 0.25, -0.75, 0.0, -0.0];

fn arb_text() -> impl Strategy<Value = String> {
    let piece = (0usize..PIECES.len()).prop_map(|i| PIECES[i].to_owned());
    proptest::collection::vec(piece, 0..20).prop_map(|ps| ps.join(" "))
}

fn arb_review(n_nodes: usize) -> impl Strategy<Value = Review> {
    let pair = (0..n_nodes, 0usize..SENTIMENTS.len()).prop_map(|(c, s)| osars::core::Pair {
        concept: NodeId::from_index(c),
        sentiment: SENTIMENTS[s],
    });
    (arb_text(), proptest::collection::vec(pair, 0..3))
        .prop_map(|(text, planted)| Review { text, planted })
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    let h = term_hierarchy();
    let n = h.node_count();
    proptest::collection::vec(proptest::collection::vec(arb_review(n), 0..4), 1..4).prop_map(
        move |items| Corpus {
            name: "artifact-codec-prop".to_owned(),
            hierarchy: term_hierarchy(),
            items: items
                .into_iter()
                .enumerate()
                .map(|(i, reviews)| Item {
                    name: format!("item-{i}"),
                    reviews,
                })
                .collect(),
        },
    )
}

/// Run the real extraction pipeline so the stored [`ExtractedItem`]s
/// have realistic internal structure (shared token pools, sentence
/// indices, pair lists).
fn extract_all(corpus: &Corpus) -> Vec<ExtractedItem> {
    let ex = Extractor::from_hierarchy(&corpus.hierarchy);
    let mut scratch = ExtractScratch::default();
    corpus
        .items
        .iter()
        .map(|it| ex.extract(it, ExtractImpl::Interned, &mut scratch))
        .collect()
}

/// Structural equality plus bit-level sentiment equality (derived
/// `PartialEq` on `f64` would accept `-0.0 == 0.0`).
fn assert_items_identical(a: &Item, b: &Item) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.name, &b.name);
    prop_assert_eq!(a.reviews.len(), b.reviews.len());
    for (ra, rb) in a.reviews.iter().zip(&b.reviews) {
        prop_assert_eq!(&ra.text, &rb.text);
        prop_assert_eq!(ra.planted.len(), rb.planted.len());
        for (pa, pb) in ra.planted.iter().zip(&rb.planted) {
            prop_assert_eq!(pa.concept, pb.concept);
            prop_assert_eq!(pa.sentiment.to_bits(), pb.sentiment.to_bits());
        }
    }
    Ok(())
}

fn assert_extracted_identical(a: &ExtractedItem, b: &ExtractedItem) -> Result<(), TestCaseError> {
    prop_assert_eq!(a, b);
    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
        prop_assert_eq!(pa.sentiment.to_bits(), pb.sentiment.to_bits());
    }
    for (sa, sb) in a.sentences.iter().zip(&b.sentences) {
        prop_assert_eq!(sa.sentiment.to_bits(), sb.sentiment.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → decode is lossless, and the lazy block store decodes
    /// each item identically to the eager decoder.
    #[test]
    fn round_trip_and_lazy_equivalence(corpus in arb_corpus()) {
        let extracted = extract_all(&corpus);
        let bytes = artifact::encode(&corpus, &extracted);

        let eager = artifact::decode(&bytes).expect("round trip decodes");
        prop_assert_eq!(&eager.corpus.name, &corpus.name);
        prop_assert_eq!(eager.corpus.hierarchy.node_count(), corpus.hierarchy.node_count());
        prop_assert_eq!(eager.corpus.hierarchy.edge_list(), corpus.hierarchy.edge_list());
        prop_assert_eq!(eager.corpus.items.len(), corpus.items.len());
        for (a, b) in eager.corpus.items.iter().zip(&corpus.items) {
            assert_items_identical(a, b)?;
        }
        for (a, b) in eager.extracted.iter().zip(&extracted) {
            assert_extracted_identical(a, b)?;
        }

        let lazy = artifact::lazy_from_bytes(bytes).expect("round trip opens lazily");
        prop_assert_eq!(&lazy.corpus_name, &corpus.name);
        prop_assert_eq!(lazy.hierarchy.edge_list(), corpus.hierarchy.edge_list());
        prop_assert_eq!(lazy.store.len(), corpus.items.len());
        for i in 0..lazy.store.len() {
            let (item, ex) = lazy.store.item(i).expect("block decodes");
            assert_items_identical(&item, &eager.corpus.items[i])?;
            assert_extracted_identical(&ex, &eager.extracted[i])?;
        }
    }

    /// Truncating the file at *any* byte is a typed error — the decoder
    /// never reads past the end, never panics, and never accepts a
    /// prefix as a complete artifact.
    #[test]
    fn truncation_at_any_byte_is_a_typed_error(corpus in arb_corpus(), frac in 0.0f64..1.0) {
        let extracted = extract_all(&corpus);
        let bytes = artifact::encode(&corpus, &extracted);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(artifact::decode(&bytes[..cut]).is_err());
        prop_assert!(artifact::lazy_from_bytes(bytes[..cut].to_vec()).is_err());
    }

    /// Flipping *any* byte is a typed error: header flips are caught by
    /// the magic/version/length checks, payload flips by the checksum.
    #[test]
    fn any_flipped_byte_is_a_typed_error(corpus in arb_corpus(), frac in 0.0f64..1.0, bit in 0u8..8) {
        let extracted = extract_all(&corpus);
        let mut bytes = artifact::encode(&corpus, &extracted);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pos = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(pos < bytes.len());
        bytes[pos] ^= 1 << bit;
        prop_assert!(artifact::decode(&bytes).is_err());
        prop_assert!(artifact::lazy_from_bytes(bytes).is_err());
    }
}

fn sample_bytes() -> Vec<u8> {
    let mut b = HierarchyBuilder::new();
    b.add_edge_by_name("root", "battery").unwrap();
    b.add_edge_by_name("root", "screen").unwrap();
    let corpus = Corpus {
        name: "corrupt-me".to_owned(),
        hierarchy: b.build().unwrap(),
        items: vec![Item {
            name: "only".to_owned(),
            reviews: vec![Review {
                text: "great battery . terrible screen !".to_owned(),
                planted: vec![],
            }],
        }],
    };
    let extracted = extract_all(&corpus);
    artifact::encode(&corpus, &extracted)
}

#[test]
fn flipped_checksum_byte_reports_checksum_mismatch() {
    let mut bytes = sample_bytes();
    bytes[HEADER_LEN - 1] ^= 0x40;
    assert!(matches!(
        artifact::decode(&bytes),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}

#[test]
fn flipped_payload_byte_reports_checksum_mismatch() {
    let mut bytes = sample_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        artifact::decode(&bytes),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));
}

#[test]
fn stale_version_reports_wrong_version() {
    let mut bytes = sample_bytes();
    bytes[4..8].copy_from_slice(&(artifact::VERSION + 1).to_le_bytes());
    match artifact::decode(&bytes) {
        Err(ArtifactError::WrongVersion { found, expected }) => {
            assert_eq!(found, artifact::VERSION + 1);
            assert_eq!(expected, artifact::VERSION);
        }
        other => panic!("expected WrongVersion, got {other:?}"),
    }
}

#[test]
fn byte_swapped_magic_reports_wrong_endian() {
    let mut bytes = sample_bytes();
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[..4]);
    magic.reverse();
    bytes[..4].copy_from_slice(&magic);
    assert!(matches!(
        artifact::decode(&bytes),
        Err(ArtifactError::WrongEndian)
    ));
}

#[test]
fn garbage_magic_reports_bad_magic() {
    let mut bytes = sample_bytes();
    bytes[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        artifact::decode(&bytes),
        Err(ArtifactError::BadMagic(_))
    ));
}

#[test]
fn empty_and_header_only_inputs_are_truncated() {
    assert!(matches!(
        artifact::decode(&[]),
        Err(ArtifactError::Truncated { .. })
    ));
    let bytes = sample_bytes();
    assert!(matches!(
        artifact::decode(&bytes[..HEADER_LEN]),
        Err(ArtifactError::Truncated { .. })
    ));
}
