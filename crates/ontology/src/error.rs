//! Error type for hierarchy construction and I/O.

use std::fmt;

/// Everything that can go wrong while building or loading a hierarchy.
#[derive(Debug)]
pub enum OntologyError {
    /// The builder contained no nodes.
    Empty,
    /// Every node has a parent — there is no root.
    NoRoot,
    /// More than one parentless node; names are listed.
    MultipleRoots(Vec<String>),
    /// A directed cycle was detected.
    Cycle,
    /// The named node is not reachable from the root.
    Unreachable(String),
    /// Two nodes share the same canonical name.
    DuplicateName(String),
    /// The same parent→child edge was added twice.
    DuplicateEdge {
        /// Parent node name.
        parent: String,
        /// Child node name.
        child: String,
    },
    /// An edge referenced a node id that was never added.
    UnknownNode,
    /// An edge would make a node its own parent.
    SelfLoop(String),
    /// JSON (de)serialization failed.
    Serde(String),
    /// Filesystem I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "hierarchy has no nodes"),
            Self::NoRoot => write!(f, "hierarchy has no root (every node has a parent)"),
            Self::MultipleRoots(names) => {
                write!(f, "hierarchy has multiple roots: {}", names.join(", "))
            }
            Self::Cycle => write!(f, "hierarchy contains a directed cycle"),
            Self::Unreachable(n) => write!(f, "node '{n}' is not reachable from the root"),
            Self::DuplicateName(n) => write!(f, "duplicate node name '{n}'"),
            Self::DuplicateEdge { parent, child } => {
                write!(f, "duplicate edge '{parent}' -> '{child}'")
            }
            Self::UnknownNode => write!(f, "edge references an unknown node id"),
            Self::SelfLoop(n) => write!(f, "self-loop on node '{n}'"),
            Self::Serde(e) => write!(f, "serialization error: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for OntologyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OntologyError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
