//! Property tests: the interned extraction engine (token interner +
//! Aho–Corasick concept automatons + memoized stemming) is *identical* —
//! pairs, sentences, token pools and bit-level sentiments — to the naive
//! trie-walk oracle on adversarial review text: non-BMP scalars, terms
//! sharing multi-token prefixes, empty and whitespace-only sentences.

use std::sync::OnceLock;

use osars::datasets::{ExtractImpl, Extractor, Item, Review, SentimentModel};
use osars::ontology::{Hierarchy, HierarchyBuilder};
use osars::text::ExtractScratch;
use proptest::prelude::*;

/// A hierarchy whose terms share multi-token prefixes ("battery" /
/// "battery life" / "battery life span"), so longest-match selection in
/// the automaton and the trie must agree on every boundary, plus a
/// stem-variant pair ("cameras" vs text "camera") and a term that is
/// itself a lexicon word ("sharp").
fn term_hierarchy() -> Hierarchy {
    let mut b = HierarchyBuilder::new();
    for (parent, child) in [
        ("device", "battery"),
        ("device", "battery life"),
        ("battery life", "battery life span"),
        ("device", "screen"),
        ("screen", "screen resolution"),
        ("screen", "touch screen"),
        ("device", "cameras"),
        ("cameras", "camera zoom"),
        ("device", "sharp"),
    ] {
        b.add_edge_by_name(parent, child).unwrap();
    }
    b.build().unwrap()
}

/// Text fragments: concept words (including partial prefixes of the
/// multi-token terms), lexicon words with shifters, sentence punctuation,
/// whitespace runs and non-BMP scalars.
const PIECES: &[&str] = &[
    "battery",
    "life",
    "span",
    "batteries",
    "screen",
    "resolution",
    "touch",
    "cameras",
    "camera",
    "zoom",
    "sharp",
    "great",
    "terrible",
    "good",
    "bad",
    "not",
    "never",
    "very",
    "extremely",
    "slightly",
    "somewhat",
    "the",
    "is",
    ".",
    "!",
    "?",
    "...",
    ",",
    "",
    "   ",
    "\t",
    "𝑨",
    "𒀀es",
    "😀",
    "ß",
    "Battery-Life's",
];

fn arb_text() -> impl Strategy<Value = String> {
    let piece = (0usize..PIECES.len() + 3, ".{0,4}")
        .prop_map(|(i, junk)| PIECES.get(i).map_or(junk, |p| (*p).to_owned()));
    proptest::collection::vec(piece, 0..60).prop_map(|ps| ps.join(" "))
}

fn arb_item() -> impl Strategy<Value = Item> {
    proptest::collection::vec(arb_text(), 1..4).prop_map(|texts| Item {
        name: "prop".to_owned(),
        reviews: texts
            .into_iter()
            .map(|text| Review {
                text,
                planted: vec![],
            })
            .collect(),
    })
}

/// A hashed-bigram regressor, trained once (scoring is hierarchy-
/// independent, so one model serves every generated case).
fn regressor() -> &'static SentimentModel {
    static MODEL: OnceLock<SentimentModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let corpus =
            osars::datasets::Corpus::phones(&osars::datasets::CorpusConfig::phones_small(), 7);
        SentimentModel::Regressor(osars::datasets::train_regressor(&corpus, 64, 1.0))
    })
}

/// Structural equality plus bit-level sentiment equality (the `f64`
/// `PartialEq` in the derive would accept `-0.0 == 0.0`).
fn assert_identical(
    interned: &osars::datasets::ExtractedItem,
    naive: &osars::datasets::ExtractedItem,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(interned, naive);
    for (a, b) in interned.pairs.iter().zip(&naive.pairs) {
        prop_assert_eq!(a.sentiment.to_bits(), b.sentiment.to_bits());
    }
    for (a, b) in interned.sentences.iter().zip(&naive.sentences) {
        prop_assert_eq!(a.sentiment.to_bits(), b.sentiment.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interned_lexicon_extraction_equals_the_naive_oracle(item in arb_item()) {
        let h = term_hierarchy();
        let ex = Extractor::from_hierarchy(&h);
        let mut scratch = ExtractScratch::default();
        // Scratch is deliberately reused across both calls and all cases
        // of this process: stale per-item state leaking through would
        // show up as a mismatch.
        let naive = ex.extract(&item, ExtractImpl::Naive, &mut scratch);
        let interned = ex.extract(&item, ExtractImpl::Interned, &mut scratch);
        assert_identical(&interned, &naive)?;
    }

    #[test]
    fn interned_regressor_extraction_equals_the_naive_oracle(item in arb_item()) {
        let h = term_hierarchy();
        let ex = Extractor::from_hierarchy(&h);
        let mut scratch = ExtractScratch::default();
        let model = regressor();
        let naive = ex.extract_with(&item, model, ExtractImpl::Naive, &mut scratch);
        let interned = ex.extract_with(&item, model, ExtractImpl::Interned, &mut scratch);
        assert_identical(&interned, &naive)?;
    }

    #[test]
    fn raw_unicode_reviews_never_diverge(text in ".{0,300}") {
        // Unstructured scalar soup (incl. non-BMP): no concept usually
        // matches, but tokenization, interning, stemming and scoring must
        // still agree exactly.
        let h = term_hierarchy();
        let ex = Extractor::from_hierarchy(&h);
        let mut scratch = ExtractScratch::default();
        let item = Item {
            name: "unicode".to_owned(),
            reviews: vec![Review { text, planted: vec![] }],
        };
        let naive = ex.extract(&item, ExtractImpl::Naive, &mut scratch);
        let interned = ex.extract(&item, ExtractImpl::Interned, &mut scratch);
        assert_identical(&interned, &naive)?;
    }
}

/// Non-random pin: empty reviews, whitespace-only reviews and a review
/// whose only content is a multi-token term truncated at every prefix
/// length.
#[test]
fn degenerate_reviews_are_identical_across_implementations() {
    let h = term_hierarchy();
    let ex = Extractor::from_hierarchy(&h);
    let mut scratch = ExtractScratch::default();
    let texts = [
        "",
        "   ",
        "\t\n \u{a0}",
        "...!?.",
        "battery",
        "battery life",
        "battery life span",
        "battery life span battery life battery",
        "touch screen resolution",
        "not very sharp. extremely great battery life!",
    ];
    let item = Item {
        name: "degenerate".to_owned(),
        reviews: texts
            .iter()
            .map(|t| Review {
                text: (*t).to_owned(),
                planted: vec![],
            })
            .collect(),
    };
    let naive = ex.extract(&item, ExtractImpl::Naive, &mut scratch);
    let interned = ex.extract(&item, ExtractImpl::Interned, &mut scratch);
    assert_eq!(interned, naive);
    assert!(!interned.pairs.is_empty(), "concept mentions were found");
}
