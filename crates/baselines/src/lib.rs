//! # osa-baselines
//!
//! The five baseline summarizers of the paper's qualitative evaluation
//! (Table 2), implemented from scratch:
//!
//! | Baseline | Source | Idea |
//! |---|---|---|
//! | [`MostPopular`] | Hu & Liu, KDD'04 (adapted) | representative sentences of the most popular (aspect, polarity) pairs |
//! | [`Proportional`] | Blair-Goldensohn et al., WWW'08 (adapted) | aspects proportionally to frequency, most polarized sentence each |
//! | [`TextRank`] | Mihalcea & Tarau, EMNLP'04 | PageRank over word-overlap sentence graph |
//! | [`LexRank`] | Erkan & Radev, JAIR'04 | PageRank over tf-idf cosine sentence graph |
//! | [`LsaSummarizer`] | Steinberger & Ježek, ISIM'04 | SVD of the term×sentence matrix |
//!
//! A sixth selector, [`Mmr`] (maximal marginal relevance), is included
//! as an extension beyond the paper's baseline set.
//!
//! All of them implement [`SentenceSelector`]: given an item's sentences
//! (tokens + extracted concept-sentiment pairs) they return the indices
//! of `k` selected sentences. The first two are sentiment-aware; the last
//! three are the sentiment-agnostic multi-document summarizers.

//! ## Example
//!
//! ```
//! use osa_baselines::{SentenceRecord, SentenceSelector, TextRank};
//!
//! let sentences = vec![
//!     SentenceRecord::new("the camera quality and screen impress", vec![]),
//!     SentenceRecord::new("the camera quality impresses", vec![]),
//!     SentenceRecord::new("unrelated shipping note", vec![]),
//! ];
//! let top = TextRank.select(&sentences, 1);
//! assert_eq!(top.len(), 1);
//! ```

#![warn(missing_docs)]

mod aspect;
mod lexrank;
mod lsa;
mod mmr;
mod selector;
mod textrank;

pub use aspect::{MostPopular, Proportional};
pub use lexrank::LexRank;
pub use lsa::{LsaOptions, LsaSummarizer};
pub use mmr::Mmr;
pub use selector::{SentenceRecord, SentenceSelector};
pub use textrank::TextRank;
