//! ε-selection: coverage rate and the elbow method (Section 5.3).

use osa_core::{pair_distance, Pair};
use osa_ontology::Hierarchy;

/// Fraction of pairs in `p` that are covered (finite Definition 1
/// distance) by at least one *other* pair in `p` at threshold `eps`.
///
/// This is the curve the paper's elbow method inspects: it rises with
/// `eps` and flattens once the threshold exceeds the typical sentiment
/// spread, and the flattening point ("the elbow") is the chosen ε.
pub fn covered_fraction(h: &Hierarchy, p: &[Pair], eps: f64) -> f64 {
    if p.is_empty() {
        return 0.0;
    }
    let covered = p
        .iter()
        .enumerate()
        .filter(|(i, q)| {
            p.iter()
                .enumerate()
                .any(|(j, f)| j != *i && pair_distance(h, f, q, eps).is_some())
        })
        .count();
    covered as f64 / p.len() as f64
}

/// Find the elbow of a curve given as `(x, y)` points: the point with the
/// largest perpendicular distance to the chord connecting the first and
/// last points (the "kneedle" construction). Returns the index of the
/// elbow point, or `None` for fewer than 3 points or a degenerate chord.
pub fn elbow(points: &[(f64, f64)]) -> Option<usize> {
    if points.len() < 3 {
        return None;
    }
    let (x0, y0) = points[0];
    let (x1, y1) = *points.last().expect("non-empty");
    let dx = x1 - x0;
    let dy = y1 - y0;
    let len = (dx * dx + dy * dy).sqrt();
    if len < 1e-12 {
        return None;
    }
    let mut best = (0usize, -1.0f64);
    for (i, &(x, y)) in points.iter().enumerate().take(points.len() - 1).skip(1) {
        // Perpendicular distance from (x, y) to the chord.
        let d = ((x - x0) * dy - (y - y0) * dx).abs() / len;
        if d > best.1 {
            best = (i, d);
        }
    }
    Some(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osa_ontology::HierarchyBuilder;

    #[test]
    fn coverage_rises_with_eps() {
        let mut bl = HierarchyBuilder::new();
        bl.add_edge_by_name("r", "a").unwrap();
        bl.add_edge_by_name("a", "b").unwrap();
        let h = bl.build().unwrap();
        let a = h.node_by_name("a").unwrap();
        let b = h.node_by_name("b").unwrap();
        let p = vec![Pair::new(a, 0.9), Pair::new(b, 0.1), Pair::new(b, 0.15)];
        let low = covered_fraction(&h, &p, 0.1);
        let high = covered_fraction(&h, &p, 1.0);
        assert!(high >= low);
        // At eps 0.1 only the two b-pairs cover each other: 2/3.
        assert!((low - 2.0 / 3.0).abs() < 1e-12);
        // At eps 1.0, a covers both b's, but nothing covers a: still 2/3.
        assert!((high - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pairs_coverage_is_zero() {
        let mut bl = HierarchyBuilder::new();
        bl.add_edge_by_name("r", "a").unwrap();
        let h = bl.build().unwrap();
        assert_eq!(covered_fraction(&h, &[], 0.5), 0.0);
    }

    #[test]
    fn elbow_of_knee_curve() {
        // Sharp knee at x = 0.5.
        let pts: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let x = i as f64 / 10.0;
                let y = if x <= 0.5 {
                    2.0 * x
                } else {
                    1.0 + 0.1 * (x - 0.5)
                };
                (x, y)
            })
            .collect();
        let e = elbow(&pts).unwrap();
        assert_eq!(pts[e].0, 0.5);
    }

    #[test]
    fn elbow_needs_three_points() {
        assert_eq!(elbow(&[(0.0, 0.0), (1.0, 1.0)]), None);
        assert_eq!(elbow(&[]), None);
    }

    #[test]
    fn degenerate_chord_returns_none() {
        assert_eq!(elbow(&[(0.0, 0.0), (0.5, 3.0), (0.0, 0.0)]), None);
    }

    #[test]
    fn straight_line_has_no_pronounced_elbow() {
        let pts: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64, 2.0 * i as f64)).collect();
        // All interior distances are ~0; any index is acceptable but the
        // distance must be ~0 — verify via the first point's residual.
        let e = elbow(&pts).unwrap();
        let (x0, y0) = pts[0];
        let (x1, y1) = pts[10];
        let (x, y) = pts[e];
        let d = ((x - x0) * (y1 - y0) - (y - y0) * (x1 - x0)).abs()
            / ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        assert!(d < 1e-9);
    }
}
