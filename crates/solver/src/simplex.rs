//! Two-phase dense-tableau primal simplex.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible point; phase 2 minimizes the real objective. The pivot rule is
//! Dantzig's (most negative reduced cost) with an automatic switch to
//! Bland's rule when the objective stalls, which guarantees termination on
//! the heavily degenerate k-median LPs the summarizer produces.

use crate::model::{Cmp, Model, Solution, Status};
use crate::SolverError;

const TOL: f64 = 1e-9;
/// Switch to Bland's rule after this many non-improving pivots.
const STALL_LIMIT: usize = 64;
const MAX_ITERS: usize = 200_000;

/// A dense simplex tableau: `rows × (cols + 1)` where the last column is
/// the RHS, plus a maintained reduced-cost row.
struct Tableau {
    m: usize,
    /// Total columns excluding RHS.
    n: usize,
    /// Row-major `m × (n + 1)` coefficients.
    a: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Reduced costs, length `n + 1`; the last entry holds `-objective`.
    z: Vec<f64>,
    /// Columns allowed to enter the basis (artificials get banned after
    /// phase 1).
    allowed: Vec<bool>,
    /// Rows still active (redundant rows are deactivated after phase 1).
    active: Vec<bool>,
    /// Pivot operations performed (published as `solver.simplex_pivots`).
    pivots: u64,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.n + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.n)
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        self.pivots += 1;
        let w = self.n + 1;
        let piv = self.a[pr * w + pc];
        debug_assert!(piv.abs() > TOL);
        let inv = 1.0 / piv;
        for c in 0..w {
            self.a[pr * w + c] *= inv;
        }
        // Snapshot of the (now normalized) pivot row for the updates.
        let prow: Vec<f64> = self.a[pr * w..(pr + 1) * w].to_vec();
        for r in 0..self.m {
            if r == pr || !self.active[r] {
                continue;
            }
            let f = self.a[r * w + pc];
            if f == 0.0 {
                continue;
            }
            let row = &mut self.a[r * w..(r + 1) * w];
            for (x, &p) in row.iter_mut().zip(&prow) {
                *x -= f * p;
            }
            row[pc] = 0.0; // exact zero against drift
        }
        let f = self.z[pc];
        if f != 0.0 {
            for (x, &p) in self.z.iter_mut().zip(&prow) {
                *x -= f * p;
            }
            self.z[pc] = 0.0;
        }
        self.basis[pr] = pc;
    }

    /// Rebuild the reduced-cost row for objective `costs` (length `n`)
    /// given the current basis.
    fn set_objective(&mut self, costs: &[f64]) {
        let w = self.n + 1;
        self.z[..self.n].copy_from_slice(costs);
        self.z[self.n] = 0.0;
        for r in 0..self.m {
            if !self.active[r] {
                continue;
            }
            let cb = costs[self.basis[r]];
            if cb == 0.0 {
                continue;
            }
            let row = &self.a[r * w..(r + 1) * w];
            for (zj, &aj) in self.z.iter_mut().zip(row) {
                *zj -= cb * aj;
            }
        }
        // Basic columns must read exactly zero.
        for r in 0..self.m {
            if self.active[r] {
                self.z[self.basis[r]] = 0.0;
            }
        }
    }

    /// Run simplex iterations until optimality or unboundedness.
    fn optimize(&mut self) -> Result<(), SolverError> {
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        for _ in 0..MAX_ITERS {
            let bland = stall >= STALL_LIMIT;
            // Entering column.
            let mut enter: Option<usize> = None;
            if bland {
                for j in 0..self.n {
                    if self.allowed[j] && self.z[j] < -TOL {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -TOL;
                for j in 0..self.n {
                    if self.allowed[j] && self.z[j] < best {
                        best = self.z[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(pc) = enter else {
                return Ok(()); // optimal
            };
            // Ratio test (leaving row); ties broken by smallest basis
            // column index (Bland-compatible).
            let mut pr: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                if !self.active[r] {
                    continue;
                }
                let arc = self.at(r, pc);
                if arc > TOL {
                    let ratio = self.rhs(r) / arc;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && pr.is_some_and(|p| self.basis[r] < self.basis[p]));
                    if better {
                        best_ratio = ratio;
                        pr = Some(r);
                    }
                }
            }
            let Some(pr) = pr else {
                return Err(SolverError::Unbounded);
            };
            self.pivot(pr, pc);
            let obj = -self.z[self.n];
            if obj < last_obj - TOL {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
        Err(SolverError::IterationLimit)
    }
}

/// Solve the LP relaxation of `model`.
pub(crate) fn solve(model: &Model) -> Result<Solution, SolverError> {
    let nv = model.vars.len();
    if nv == 0 {
        return Ok(Solution {
            status: Status::Optimal,
            objective: 0.0,
            values: Vec::new(),
        });
    }

    // --- Standardize -----------------------------------------------------
    // Shift every variable to x' = x - lb ≥ 0; finite upper bounds become
    // extra ≤ rows. Fixed variables (lb == ub) are substituted out
    // entirely: their value is folded into each row's RHS and their column
    // is banned from ever entering the basis.
    let mut obj_const = 0.0;
    for v in &model.vars {
        obj_const += v.obj * v.lb;
    }
    let fixed: Vec<bool> = model
        .vars
        .iter()
        .map(|v| v.ub.is_finite() && v.ub - v.lb <= TOL)
        .collect();

    struct Row {
        terms: Vec<(usize, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.cons.len() + nv);
    for c in &model.cons {
        let mut rhs = c.rhs;
        for &(j, coef) in &c.terms {
            rhs -= coef * model.vars[j].lb;
        }
        let terms: Vec<(usize, f64)> = c
            .terms
            .iter()
            .copied()
            .filter(|&(j, _)| !fixed[j])
            .collect();
        rows.push(Row {
            terms,
            cmp: c.cmp,
            rhs,
        });
    }
    for (j, v) in model.vars.iter().enumerate() {
        if !fixed[j] && v.ub.is_finite() {
            rows.push(Row {
                terms: vec![(j, 1.0)],
                cmp: Cmp::Le,
                rhs: v.ub - v.lb,
            });
        }
    }

    // Normalize RHS ≥ 0.
    for r in &mut rows {
        if r.rhs < 0.0 {
            r.rhs = -r.rhs;
            for t in &mut r.terms {
                t.1 = -t.1;
            }
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    let n_slack = rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Le | Cmp::Ge))
        .count();
    let n_art = rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Ge | Cmp::Eq))
        .count();
    let n = nv + n_slack + n_art;
    let w = n + 1;

    let mut allowed = vec![true; n];
    for (j, &f) in fixed.iter().enumerate() {
        if f {
            allowed[j] = false;
        }
    }
    let mut t = Tableau {
        m,
        n,
        a: vec![0.0; m * w],
        basis: vec![0; m],
        z: vec![0.0; w],
        allowed,
        active: vec![true; m],
        pivots: 0,
    };

    let mut next_slack = nv;
    let mut next_art = nv + n_slack;
    let mut art_cols: Vec<usize> = Vec::with_capacity(n_art);
    for (i, r) in rows.iter().enumerate() {
        for &(j, coef) in &r.terms {
            t.a[i * w + j] += coef;
        }
        t.a[i * w + n] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                t.a[i * w + next_slack] = 1.0;
                t.basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                t.a[i * w + next_slack] = -1.0;
                next_slack += 1;
                t.a[i * w + next_art] = 1.0;
                t.basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
            Cmp::Eq => {
                t.a[i * w + next_art] = 1.0;
                t.basis[i] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
        }
    }

    // --- Phase 1 ----------------------------------------------------------
    if !art_cols.is_empty() {
        let mut phase1 = vec![0.0; n];
        for &j in &art_cols {
            phase1[j] = 1.0;
        }
        t.set_objective(&phase1);
        t.optimize()?;
        let infeas = -t.z[n];
        if infeas > 1e-6 {
            osa_obs::global().add("solver.simplex_pivots", t.pivots);
            return Ok(Solution {
                status: Status::Infeasible,
                objective: f64::INFINITY,
                values: vec![0.0; nv],
            });
        }
        // Ban artificials and clear any still in the basis (at value 0).
        let is_art = |j: usize| j >= nv + n_slack;
        for &j in &art_cols {
            t.allowed[j] = false;
        }
        for r in 0..m {
            if !is_art(t.basis[r]) {
                continue;
            }
            // Try to pivot a structural/slack column in.
            let mut pivoted = false;
            for j in 0..nv + n_slack {
                if t.allowed[j] && t.at(r, j).abs() > 1e-7 {
                    t.pivot(r, j);
                    pivoted = true;
                    break;
                }
            }
            if !pivoted {
                // Redundant row: deactivate it.
                t.active[r] = false;
                for c in 0..w {
                    t.a[r * w + c] = 0.0;
                }
            }
        }
    }

    // --- Phase 2 ----------------------------------------------------------
    let mut costs = vec![0.0; n];
    for (j, v) in model.vars.iter().enumerate() {
        costs[j] = v.obj;
    }
    t.set_objective(&costs);
    t.optimize()?;

    let mut values = vec![0.0; nv];
    for r in 0..m {
        if t.active[r] && t.basis[r] < nv {
            values[t.basis[r]] = t.rhs(r);
        }
    }
    for (j, v) in model.vars.iter().enumerate() {
        values[j] += v.lb;
        // Clamp tiny numerical noise back into the box.
        values[j] = values[j].clamp(v.lb, v.ub);
    }
    let objective: f64 = obj_const
        + model
            .vars
            .iter()
            .enumerate()
            .map(|(j, v)| v.obj * (values[j] - v.lb))
            .sum::<f64>();
    osa_obs::global().add("solver.simplex_pivots", t.pivots);

    Ok(Solution {
        status: Status::Optimal,
        objective,
        values,
    })
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Model, Status};

    #[test]
    fn textbook_maximization_as_min() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  → (2,6), obj 36.
        let mut m = Model::minimize();
        let x = m.add_var(0.0, f64::INFINITY, -3.0);
        let y = m.add_var(0.0, f64::INFINITY, -5.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 36.0).abs() < 1e-7);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
        assert!((s.value(y) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y  s.t. x + y = 10, x >= 3, y >= 2 → obj 10.
        let mut m = Model::minimize();
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Ge, 3.0);
        m.add_constraint(&[(y, 1.0)], Cmp::Ge, 2.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-7);
        assert!((s.value(x) + s.value(y) - 10.0).abs() < 1e-7);
        assert!(s.value(x) >= 3.0 - 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::minimize();
        let x = m.add_var(0.0, f64::INFINITY, -1.0);
        m.add_constraint(&[(x, -1.0)], Cmp::Le, 0.0);
        assert!(matches!(m.solve_lp(), Err(crate::SolverError::Unbounded)));
    }

    #[test]
    fn respects_variable_bounds() {
        // min -x with 1 <= x <= 5 → x = 5.
        let mut m = Model::minimize();
        let x = m.add_var(1.0, 5.0, -1.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 5.0).abs() < 1e-7);
        assert!((s.objective + 5.0).abs() < 1e-7);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x + y s.t. x + y >= 7, x >= 2, y >= 1.5 → obj 7.
        let mut m = Model::minimize();
        let x = m.add_var(2.0, f64::INFINITY, 1.0);
        let y = m.add_var(1.5, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 7.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 7.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::minimize();
        let x = m.add_var(3.0, 3.0, 2.0);
        let y = m.add_var(0.0, 10.0, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let s = m.solve_lp().unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-9);
        assert!((s.value(y) - 2.0).abs() < 1e-7);
        assert!((s.objective - 8.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example (multiple constraints tight at the
        // origin); must terminate via the Bland fallback.
        let mut m = Model::minimize();
        let x = m.add_var(0.0, f64::INFINITY, -0.75);
        let y = m.add_var(0.0, f64::INFINITY, 150.0);
        let z = m.add_var(0.0, f64::INFINITY, -0.02);
        let w = m.add_var(0.0, f64::INFINITY, 6.0);
        m.add_constraint(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], Cmp::Le, 0.0);
        m.add_constraint(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], Cmp::Le, 0.0);
        m.add_constraint(&[(z, 1.0)], Cmp::Le, 1.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective + 0.05).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn empty_model() {
        let m = Model::minimize();
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn objective_constant_from_lower_bounds() {
        // min 2x with x in [4, 10], no constraints → 8.
        let mut m = Model::minimize();
        m.add_var(4.0, 10.0, 2.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 8.0).abs() < 1e-9);
    }
}
