//! Maximal Marginal Relevance (Carbonell & Goldstein, 1998) — an extra
//! sentiment-agnostic baseline beyond the paper's five, included because
//! it is the standard redundancy-aware extractive selector and a natural
//! question reviewers ask ("does plain MMR already solve this?").

use std::collections::HashMap;

use osa_text::{is_stopword, stem};

use crate::{SentenceRecord, SentenceSelector};

/// MMR sentence selection: greedily pick the sentence maximizing
/// `λ·rel(s) − (1−λ)·max_{t∈S} sim(s, t)` where relevance is the cosine
/// to the corpus centroid and similarity is tf-idf cosine.
#[derive(Debug, Clone, Copy)]
pub struct Mmr {
    /// Relevance/diversity trade-off λ ∈ [0, 1]; 0.7 is the customary
    /// default.
    pub lambda: f64,
}

impl Default for Mmr {
    fn default() -> Self {
        Mmr { lambda: 0.7 }
    }
}

impl SentenceSelector for Mmr {
    fn select(&self, sentences: &[SentenceRecord], k: usize) -> Vec<usize> {
        let n = sentences.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }

        // tf-idf vectors over stemmed content words.
        let mut vocab: HashMap<String, usize> = HashMap::new();
        let docs: Vec<HashMap<usize, f64>> = sentences
            .iter()
            .map(|s| {
                let mut tf: HashMap<usize, f64> = HashMap::new();
                for t in &s.tokens {
                    if is_stopword(t) || t.len() <= 2 {
                        continue;
                    }
                    let next = vocab.len();
                    let id = *vocab.entry(stem(t)).or_insert(next);
                    *tf.entry(id).or_default() += 1.0;
                }
                tf
            })
            .collect();
        let mut df = vec![0usize; vocab.len()];
        for d in &docs {
            for &t in d.keys() {
                df[t] += 1;
            }
        }
        let idf: Vec<f64> = df
            .iter()
            .map(|&d| ((n as f64) / (d.max(1) as f64)).ln().max(1e-9))
            .collect();
        let vecs: Vec<HashMap<usize, f64>> = docs
            .iter()
            .map(|d| d.iter().map(|(&t, &f)| (t, f * idf[t])).collect())
            .collect();
        let norms: Vec<f64> = vecs
            .iter()
            .map(|v| v.values().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        let cosine = |a: usize, b: usize| -> f64 {
            if norms[a] < 1e-12 || norms[b] < 1e-12 {
                return 0.0;
            }
            let (small, large) = if vecs[a].len() <= vecs[b].len() {
                (&vecs[a], &vecs[b])
            } else {
                (&vecs[b], &vecs[a])
            };
            let dot: f64 = small
                .iter()
                .filter_map(|(t, &x)| large.get(t).map(|&y| x * y))
                .sum();
            dot / (norms[a] * norms[b])
        };

        // Corpus centroid for relevance.
        let mut centroid: HashMap<usize, f64> = HashMap::new();
        for v in &vecs {
            for (&t, &x) in v {
                *centroid.entry(t).or_default() += x;
            }
        }
        let cnorm = centroid.values().map(|x| x * x).sum::<f64>().sqrt();
        let relevance: Vec<f64> = (0..n)
            .map(|i| {
                if norms[i] < 1e-12 || cnorm < 1e-12 {
                    return 0.0;
                }
                let dot: f64 = vecs[i]
                    .iter()
                    .filter_map(|(t, &x)| centroid.get(t).map(|&y| x * y))
                    .sum();
                dot / (norms[i] * cnorm)
            })
            .collect();

        // Greedy MMR selection.
        let mut selected: Vec<usize> = Vec::with_capacity(k);
        let mut taken = vec![false; n];
        while selected.len() < k.min(n) {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if taken[i] {
                    continue;
                }
                let max_sim = selected
                    .iter()
                    .map(|&j| cosine(i, j))
                    .fold(0.0f64, f64::max);
                let score = self.lambda * relevance[i] - (1.0 - self.lambda) * max_sim;
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((i, score));
                }
            }
            let (i, _) = best.expect("untaken sentence exists");
            taken[i] = true;
            selected.push(i);
        }
        selected
    }

    fn name(&self) -> &'static str {
        "mmr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(text: &str) -> SentenceRecord {
        SentenceRecord::new(text, Vec::new())
    }

    #[test]
    fn picks_central_sentence_first() {
        let sents = vec![
            rec("battery camera screen quality"),
            rec("battery camera details"),
            rec("screen quality report"),
            rec("unrelated shipping carton"),
        ];
        let sel = Mmr::default().select(&sents, 1);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn diversity_avoids_near_duplicates() {
        let sents = vec![
            rec("battery life battery life battery"),
            rec("battery life battery life great"),
            rec("screen resolution details here"),
        ];
        let sel = Mmr { lambda: 0.5 }.select(&sents, 2);
        // Second pick should be the screen sentence, not the duplicate.
        assert!(sel.contains(&2), "{sel:?}");
    }

    #[test]
    fn lambda_one_is_pure_relevance() {
        let sents = vec![
            rec("battery battery battery"),
            rec("battery battery charger"),
            rec("totally different topic"),
        ];
        let pure = Mmr { lambda: 1.0 }.select(&sents, 2);
        // Without the diversity term the two battery sentences win.
        assert!(pure.contains(&0) && pure.contains(&1), "{pure:?}");
    }

    #[test]
    fn respects_k_and_empty_input() {
        assert!(Mmr::default().select(&[], 3).is_empty());
        let sents = vec![rec("alpha beta"), rec("gamma delta")];
        assert_eq!(Mmr::default().select(&sents, 5).len(), 2);
        assert!(Mmr::default().select(&sents, 0).is_empty());
    }
}
