//! `osars` — command-line interface to the review summarizer.
//!
//! ```text
//! osars generate      --domain doctors|phones [--scale small|full|large|huge] [--seed N] --out FILE
//! osars stats         --corpus FILE
//! osars hierarchy     --corpus FILE
//! osars compile       (--corpus FILE | --domain D) --out FILE [--extract-impl I]
//! osars summarize     (--corpus FILE | --domain D | --artifacts FILE) [--item I] [--k K] [--eps E]
//!                     [--granularity pairs|sentences|reviews]
//!                     [--algorithm greedy|lazy|ilp|rr|local-search]
//!                     [--graph-impl indexed|naive] [--extract-impl interned|naive]
//!                     [--ancestor-impl dense|segmented]
//!                     [--jobs N] [--metrics FILE] [--trace] [--trace-out FILE]
//! osars evaluate      (--corpus FILE | --domain D) [--k K] [--eps E] [--items N]
//!                     [--extract-impl interned|naive] [--metrics FILE] [--trace]
//! osars check         [--seed N] [--cases N] [--faults] [--ancestor-impl I]
//!                     [--case-out FILE] [--replay FILE]
//! osars check-metrics --metrics FILE
//! osars bench-ontology [--nodes N] [--levels N] [--pairs N] [--out FILE]
//! osars serve         (--corpus FILE | --domain D | --artifacts FILE) [--addr HOST:PORT]
//!                     [--workers N] [--queue-depth N] [--deadline-ms N]
//!                     [--cache N] [--warm] [--slow-ms N] [--k K] [--eps E] [...]
//! osars loadgen       --addr HOST:PORT [--conns C] [--rps N]
//!                     [--duration-secs S] [--panic-every N] [--query Q]
//!                     [--out FILE]
//! ```
//!
//! Corpora are the JSON documents written by `osars generate` (or by
//! `osa_datasets::save_corpus`); `summarize`/`evaluate` can also
//! synthesize one in memory straight from `--domain`/`--scale`/`--seed`.
//! Everything is deterministic given `--seed` — observability (`--metrics`,
//! `--trace`) only observes, it never perturbs outputs.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use osars::baselines::{
    LexRank, LsaSummarizer, MostPopular, Proportional, SentenceRecord, SentenceSelector, TextRank,
};
use osars::core::{
    explain, CoverageGraph, Granularity, GraphImpl, GreedySummarizer, IlpSummarizer,
    LazyGreedySummarizer, LocalSearchSummarizer, Pair, RandomizedRounding, Summarizer,
};
use osars::datasets::{
    load_corpus, save_corpus, table1_stats, Corpus, CorpusConfig, ExtractImpl, ExtractedItem,
    Extractor,
};
use osars::eval::{sent_err, sent_err_penalized};
use osars::obs::{JsonlSink, Sink, StderrSink, TeeSink};
use osars::ontology::AncestorImpl;
use osars::runtime::{
    par_for_groups_ancestor, par_for_pairs_ancestor, summarize_corpus, summarize_corpus_traced,
    BatchAlgorithm, BatchJob, BatchOptions,
};
use osars::text::ExtractScratch;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `osars help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        print_help();
        return Ok(());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "hierarchy" => cmd_hierarchy(&flags),
        "summarize" => with_obs(&flags, cmd_summarize),
        "evaluate" => with_obs(&flags, cmd_evaluate),
        "check" => with_obs(&flags, cmd_check),
        "check-metrics" => cmd_check_metrics(&flags),
        "compile" => with_obs(&flags, cmd_compile),
        "bench-incremental" => cmd_bench_incremental(&flags),
        "bench-ontology" => cmd_bench_ontology(&flags),
        "serve" => cmd_serve(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn print_help() {
    println!(
        "osars — ontology- and sentiment-aware review summarization

USAGE:
  osars generate      --domain doctors|phones [--scale small|full|large|huge] [--seed N] --out FILE
  osars stats         --corpus FILE
  osars hierarchy     --corpus FILE
  osars compile       (--corpus FILE | --domain D [--scale S] [--seed N])
                      --out FILE [--extract-impl interned|naive]
  osars summarize     (--corpus FILE | --domain doctors|phones [--scale small|full|large|huge] [--seed N]
                       | --artifacts FILE)
                      [--item I|all] [--k K] [--eps E]
                      [--granularity pairs|sentences|reviews]
                      [--algorithm greedy|lazy|ilp|rr|local-search]
                      [--graph-impl indexed|naive] [--extract-impl interned|naive]
                      [--ancestor-impl dense|segmented]
                      [--focus CONCEPT] [--explain true] [--jobs N]
                      [--metrics FILE] [--trace] [--trace-out FILE]
  osars evaluate      (--corpus FILE | --domain D [--scale S] [--seed N])
                      [--k K] [--eps E] [--items N] [--jobs N]
                      [--extract-impl interned|naive]
                      [--metrics FILE] [--trace]
  osars check         [--seed N] [--cases N] [--faults] [--edits]
                      [--ancestor-impl dense|segmented]
                      [--case-out FILE] [--replay FILE] [--metrics FILE]
                      [--trace]
  osars check-metrics --metrics FILE
  osars bench-incremental
                      (--corpus FILE | --domain D [--scale S] [--seed N])
                      [--updates N] [--k K] [--eps E] [--algorithm A]
                      [--granularity G] [--graph-impl I] [--extract-impl I]
                      [--out FILE]
  osars bench-ontology
                      [--nodes N] [--levels N] [--pairs N] [--seed N]
                      [--domain D] [--scale S] [--out FILE]
  osars serve         (--corpus FILE | --domain D [--scale S] [--seed N]
                       | --artifacts FILE)
                      [--addr HOST:PORT] [--workers N] [--queue-depth N]
                      [--deadline-ms N] [--cache N] [--warm] [--slow-ms N]
                      [--conn-timeout-ms N] [--max-conns N]
                      [--k K] [--eps E] [--algorithm A]
                      [--granularity G] [--graph-impl I] [--extract-impl I]
                      [--ancestor-impl I]
  osars loadgen       --addr HOST:PORT [--conns C] [--rps N]
                      [--duration-secs S] [--panic-every N] [--query Q]
                      [--out FILE]

DEFAULTS: --scale small --seed 42 --item 0 --k 5 --eps 0.5
          --granularity sentences --algorithm greedy --items 5 --jobs 1
          --graph-impl indexed --extract-impl interned --cases 25
          --ancestor-impl dense
FOCUS:    restricts the summary to one concept's subtree
          (e.g. --focus battery on a phone corpus)
JOBS:     --item all batches every item over N worker threads (0 = all
          cores); results are byte-identical for any N — timing stats go
          to stderr
GRAPH:    --graph-impl selects the Section 4.1 coverage-graph builder:
          'indexed' (ancestor-closure index + sorted sentiment windows,
          parallel over --jobs) or 'naive' (the slow oracle); both yield
          byte-identical output
CHECK:    seeded differential-testing harness: generates --cases
          scenarios from --seed, runs each across every graph/extract
          impl, --jobs 1|3|8, and all four summarizers, and asserts the
          paper-level invariants; --faults adds deterministic fault
          injection (per-item panics, NaN corruption, delays) and
          asserts the batch engine isolates them; --edits adds the
          incremental-vs-rebuild oracle: seeded append/retract edit
          scripts whose incrementally updated summaries must be
          byte-identical to a from-scratch rebuild across every
          graph impl, summarizer and --jobs; a failing case is
          shrunk to a minimal instance and written to --case-out
          (default check-case.json), replayable with --replay FILE
BENCH:    bench-incremental replays --updates seeded edits through the
          incremental per-item artifact path (what `POST /reviews`
          uses) and through a full recompute of every item (the
          pre-incremental baseline), asserts both render identically,
          and writes p50/p95 latencies + speedup to --out (default
          BENCH_incremental.json)
EXTRACT:  --extract-impl selects the opinion-extraction hot path:
          'interned' (token interner + Aho–Corasick concept automaton +
          memoized stem cache) or 'naive' (the per-position trie walk
          kept as the oracle); both yield byte-identical output
ANCESTOR: --ancestor-impl selects the ancestor-query index behind the
          coverage-graph builder: 'dense' (materialized CSR transitive
          closure, the oracle) or 'segmented' (compressed reachability
          index: O(n) memory, O(log n) locate, no closure ever built —
          the only viable choice at SNOMED scale, i.e. --scale huge);
          both yield byte-identical output
COMPILE:  compile runs extraction once and writes corpus + pre-extracted
          items + segment index as a versioned, checksummed binary
          artifact; `summarize --artifacts F` and `serve --artifacts F`
          then boot from one sequential read, skipping extraction
          entirely (summaries stay byte-identical to an in-memory
          build). bench-ontology times dense vs segmented index
          build/query on an --nodes synthetic DAG with --pairs weighted
          pairs, plus artifact vs extraction cold-start on a
          --domain/--scale corpus, and writes BENCH_ontology.json
METRICS:  --metrics FILE streams per-stage span events plus a final
          counter/gauge/histogram snapshot as JSON lines to FILE
          (validate with `osars check-metrics --metrics FILE`, which
          also round-trips the Prometheus quantile exposition);
          --trace mirrors spans to stderr and prints a metrics table
          at exit; --trace-out FILE writes the request-scoped span
          tree(s) as Chrome trace_event JSON (open in a trace viewer);
          none of them changes what is written to stdout
SERVE:    loads the corpus once and answers GET /summary/{{item}} (with
          k/eps/algo/granularity/graph-impl/extract-impl query params),
          POST /reviews (incremental ingest: only the edited item's
          revision bumps, its artifacts update in place, and every
          other item keeps answering from cache), GET /metrics
          (Prometheus text), GET /healthz; requests run on --workers
          threads behind a --queue-depth admission queue (503 on
          overflow, 504 past --deadline-ms), with an LRU summary cache
          of --cache entries keyed on the item's revision; accepted
          sockets get --conn-timeout-ms read/write timeouts (0 = none)
          and at most --max-conns live connections (0 = unlimited,
          excess answered 503); one panicking request answers 500
          and the daemon keeps serving; every summary request is traced
          into an always-on flight recorder with tail sampling (errors
          and requests slower than --slow-ms are always kept) — browse
          GET /debug/traces and /debug/traces/{{id}} (?format=chrome for
          a trace-viewer export); successful responses carry per-stage
          Server-Timing headers
LOADGEN:  drives a running daemon with --conns keep-alive connections at
          --rps total requests/second (0 = closed-loop max) for
          --duration-secs, optionally poisoning every --panic-every'th
          request with inject=panic; writes p50/p95/p99 latency and
          achieved RPS to --out (default BENCH_serve.json)"
    );
}

// --- flag parsing ---------------------------------------------------------

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{key}'"));
        };
        // `--trace`, `--faults`, `--edits` and `--warm` are bare
        // switches; an explicit `true|false` value is also accepted for
        // scripting symmetry.
        if name == "trace" || name == "faults" || name == "edits" || name == "warm" {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_owned(), v.clone());
                    i += 2;
                }
                _ => {
                    flags.insert(name.to_owned(), "true".to_owned());
                    i += 1;
                }
            }
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_owned(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a HashMap<String, String>, name: &str) -> Option<&'a str> {
    flags.get(name).map(String::as_str)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flag(flags, name).ok_or_else(|| format!("--{name} is required"))
}

fn parse_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse '{v}'")),
    }
}

/// Parse `--eps`, rejecting values the pipeline cannot interpret:
/// `NaN`/`inf` make every sentiment-window comparison vacuous and a
/// negative threshold covers nothing. (Plain `parse_num` would accept
/// all of them — `f64::from_str` is happy to produce `NaN`.)
fn parse_eps(flags: &HashMap<String, String>) -> Result<f64, String> {
    let eps: f64 = parse_num(flags, "eps", 0.5)?;
    if !eps.is_finite() || eps < 0.0 {
        return Err(format!(
            "--eps must be a finite non-negative number, got '{}'",
            flag(flags, "eps").unwrap_or_default()
        ));
    }
    Ok(eps)
}

// --- observability session -------------------------------------------------

/// Per-invocation observability wiring for `--metrics FILE` / `--trace`.
///
/// On setup the global [`osars::obs`] registry is enabled and a sink is
/// installed (JSONL file, stderr mirror, or a tee of both); [`finish`]
/// appends the final counter/gauge/histogram snapshot and, under
/// `--trace`, renders the summary table to stderr. When neither flag is
/// present this is inert and the registry stays disabled, so the
/// instrumented pipeline pays only one relaxed atomic load per probe.
///
/// [`finish`]: ObsSession::finish
struct ObsSession {
    trace: bool,
    metrics_path: Option<PathBuf>,
    jsonl: Option<Arc<JsonlSink>>,
}

impl ObsSession {
    fn from_flags(flags: &HashMap<String, String>) -> Result<Self, String> {
        let trace = matches!(flag(flags, "trace"), Some(v) if v != "false");
        let metrics_path = flag(flags, "metrics").map(PathBuf::from);
        let mut jsonl = None;
        if trace || metrics_path.is_some() {
            let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
            if trace {
                sinks.push(Arc::new(StderrSink));
            }
            if let Some(path) = &metrics_path {
                let sink = Arc::new(
                    JsonlSink::create(path)
                        .map_err(|e| format!("opening metrics file '{}': {e}", path.display()))?,
                );
                sinks.push(sink.clone());
                jsonl = Some(sink);
            }
            let sink = match sinks.len() {
                1 => sinks.pop().expect("exactly one sink"),
                _ => Arc::new(TeeSink(sinks)),
            };
            let obs = osars::obs::global();
            obs.set_sink(sink);
            obs.set_enabled(true);
        }
        Ok(ObsSession {
            trace,
            metrics_path,
            jsonl,
        })
    }

    /// Flush the session: snapshot the registry into the JSONL file and
    /// (under `--trace`) print the human-readable table. Called after
    /// the command body so every counter has fully accumulated.
    fn finish(&self) {
        if !self.trace && self.metrics_path.is_none() {
            return;
        }
        let snapshot = osars::obs::global().snapshot();
        if let Some(sink) = &self.jsonl {
            sink.write_snapshot(&snapshot);
            sink.flush();
        }
        if self.trace {
            eprint!("{}", snapshot.render_table());
        }
        if let Some(path) = &self.metrics_path {
            eprintln!("metrics written to {}", path.display());
        }
    }
}

/// Run `body` inside an [`ObsSession`]; the snapshot is flushed even
/// when the command fails, so partial runs still leave usable metrics.
fn with_obs(
    flags: &HashMap<String, String>,
    body: fn(&HashMap<String, String>) -> Result<(), String>,
) -> Result<(), String> {
    let session = ObsSession::from_flags(flags)?;
    let result = body(flags);
    session.finish();
    result
}

// --- shared helpers -------------------------------------------------------

/// Load `--corpus FILE`, or synthesize a corpus in memory from
/// `--domain doctors|phones [--scale small|full] [--seed N]` when no
/// file was given (the same generator `osars generate` writes to disk).
fn open_corpus(flags: &HashMap<String, String>) -> Result<Corpus, String> {
    match (flag(flags, "corpus"), flag(flags, "domain")) {
        (Some(path), _) => {
            load_corpus(Path::new(path)).map_err(|e| format!("loading '{path}': {e}"))
        }
        (None, Some(domain)) => build_corpus(
            domain,
            flag(flags, "scale").unwrap_or("small"),
            parse_num(flags, "seed", 42)?,
        ),
        (None, None) => Err("--corpus (or --domain) is required".to_owned()),
    }
}

fn build_corpus(domain: &str, scale: &str, seed: u64) -> Result<Corpus, String> {
    // `huge` swaps the hand-built domain ontology for a 300k-concept
    // synthetic DAG (SNOMED scale); reviews still read like the domain.
    if scale == "huge" && matches!(domain, "doctors" | "phones") {
        return Ok(osars::datasets::huge_corpus(domain, seed));
    }
    let cfg = match (domain, scale) {
        ("doctors", "small") => CorpusConfig::doctors_small(),
        ("doctors", "full") => CorpusConfig::doctors_full(),
        ("doctors", "large") => CorpusConfig::doctors_large(),
        ("phones", "small") => CorpusConfig::phones_small(),
        ("phones", "full") => CorpusConfig::phones_full(),
        ("phones", "large") => CorpusConfig::phones_large(),
        _ => {
            return Err("--domain must be doctors|phones, --scale small|full|large|huge".to_owned())
        }
    };
    Ok(match domain {
        "doctors" => Corpus::doctors(&cfg, seed),
        _ => Corpus::phones(&cfg, seed),
    })
}

fn extract(corpus: &Corpus, item: usize, which: ExtractImpl) -> Result<ExtractedItem, String> {
    let item = corpus.items.get(item).ok_or_else(|| {
        format!(
            "item {item} out of range (corpus has {})",
            corpus.items.len()
        )
    })?;
    let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
    let mut scratch = ExtractScratch::default();
    Ok(extractor.extract(item, which, &mut scratch))
}

fn algorithm(name: &str) -> Result<Box<dyn Summarizer>, String> {
    Ok(match name {
        "greedy" => Box::new(GreedySummarizer),
        "lazy" => Box::new(LazyGreedySummarizer),
        "ilp" => Box::new(IlpSummarizer),
        "rr" => Box::new(RandomizedRounding::with_seed(42)),
        "local-search" => Box::new(LocalSearchSummarizer::default()),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

// --- commands --------------------------------------------------------------

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let domain = required(flags, "domain")?;
    let scale = flag(flags, "scale").unwrap_or("small");
    let seed: u64 = parse_num(flags, "seed", 42)?;
    let out = PathBuf::from(required(flags, "out")?);
    let corpus = build_corpus(domain, scale, seed)?;
    save_corpus(&corpus, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} items, {} reviews)",
        out.display(),
        corpus.items.len(),
        corpus.total_reviews()
    );
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = open_corpus(flags)?;
    println!("corpus: {}", corpus.name);
    println!("{}", table1_stats(&corpus));
    Ok(())
}

fn cmd_hierarchy(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = open_corpus(flags)?;
    print!("{}", corpus.hierarchy.render_ascii());
    Ok(())
}

/// `osars compile`: run opinion extraction once and persist corpus +
/// extracted items + segment index as the versioned, checksummed binary
/// artifact that `summarize --artifacts` and `serve --artifacts` boot
/// from with one sequential read.
fn cmd_compile(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = open_corpus(flags)?;
    let out = PathBuf::from(required(flags, "out")?);
    let extract_impl = parse_extract_impl(flags)?;
    let obs = osars::obs::global();
    let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
    let mut scratch = ExtractScratch::default();
    let (extracted, micros) = obs.time("compile.extract", || {
        corpus
            .items
            .iter()
            .map(|it| extractor.extract(it, extract_impl, &mut scratch))
            .collect::<Vec<ExtractedItem>>()
    });
    let bytes = osars::artifact::write_artifact(&out, &corpus, &extracted)
        .map_err(|e| format!("writing '{}': {e}", out.display()))?;
    println!(
        "compiled {} items / {} reviews / {} concepts into {} ({bytes} bytes; extraction {micros:.0}µs)",
        corpus.items.len(),
        corpus.total_reviews(),
        corpus.hierarchy.node_count(),
        out.display(),
    );
    Ok(())
}

fn parse_granularity(name: &str) -> Result<Granularity, String> {
    match name {
        "pairs" => Ok(Granularity::Pairs),
        "sentences" => Ok(Granularity::Sentences),
        "reviews" => Ok(Granularity::Reviews),
        other => Err(format!("unknown granularity '{other}'")),
    }
}

fn parse_graph_impl(flags: &HashMap<String, String>) -> Result<GraphImpl, String> {
    match flag(flags, "graph-impl") {
        None => Ok(GraphImpl::default()),
        Some(name) => {
            GraphImpl::from_name(name).ok_or_else(|| format!("unknown graph impl '{name}'"))
        }
    }
}

fn parse_extract_impl(flags: &HashMap<String, String>) -> Result<ExtractImpl, String> {
    match flag(flags, "extract-impl") {
        None => Ok(ExtractImpl::default()),
        Some(name) => {
            ExtractImpl::from_name(name).ok_or_else(|| format!("unknown extract impl '{name}'"))
        }
    }
}

fn parse_ancestor_impl(flags: &HashMap<String, String>) -> Result<AncestorImpl, String> {
    match flag(flags, "ancestor-impl") {
        None => Ok(AncestorImpl::default()),
        Some(name) => {
            AncestorImpl::from_name(name).ok_or_else(|| format!("unknown ancestor impl '{name}'"))
        }
    }
}

/// `--item all`: batch-summarize the whole corpus on a worker pool.
/// Summaries go to stdout (byte-identical for any `--jobs`), throughput
/// and latency stats to stderr (inherently run-dependent).
fn cmd_summarize_batch(corpus: &Corpus, flags: &HashMap<String, String>) -> Result<(), String> {
    if flag(flags, "focus").is_some() {
        return Err("--focus is not supported with --item all".to_owned());
    }
    let algorithm_name = flag(flags, "algorithm").unwrap_or("greedy");
    let opts = BatchOptions {
        jobs: parse_num(flags, "jobs", 1)?,
        k: parse_num(flags, "k", 5)?,
        eps: parse_eps(flags)?,
        granularity: parse_granularity(flag(flags, "granularity").unwrap_or("sentences"))?,
        algorithm: BatchAlgorithm::from_name(algorithm_name)
            .ok_or_else(|| format!("unknown algorithm '{algorithm_name}'"))?,
        corpus_seed: parse_num(flags, "seed", 42)?,
        graph_impl: parse_graph_impl(flags)?,
        extract_impl: parse_extract_impl(flags)?,
        ancestor_impl: parse_ancestor_impl(flags)?,
        ..BatchOptions::default()
    };
    // --trace-out routes through the traced batch entry point; stdout is
    // byte-identical either way (tracing only observes).
    let trace_out = flag(flags, "trace-out");
    let (report, trees) = match trace_out {
        Some(_) => summarize_corpus_traced(corpus, &opts),
        None => (summarize_corpus(corpus, &opts), Vec::new()),
    };
    print!("{}", report.render_items());
    eprintln!("{}", report.render_stats());
    let stage_table = report.render_stage_table();
    if !stage_table.is_empty() {
        eprint!("{stage_table}");
    }
    if let Some(path) = trace_out {
        let json = osars::obs::chrome_trace_json(&trees);
        std::fs::write(path, &json).map_err(|e| format!("writing '{path}': {e}"))?;
        eprintln!(
            "traces for {} items written to {path} (chrome trace_event format)",
            trees.len()
        );
    }
    // A worker panic no longer aborts the process (the engine catches
    // it per item); surface what failed and exit non-zero so scripts
    // notice the batch is incomplete.
    if !report.failed.is_empty() {
        for f in &report.failed {
            eprintln!(
                "item {} failed after {} attempt(s): {}",
                f.item, f.attempts, f.message
            );
        }
        return Err(format!(
            "{} of {} items failed; successful summaries were printed above",
            report.failed.len(),
            corpus.items.len()
        ));
    }
    Ok(())
}

/// `summarize --artifacts FILE`: boot from a compiled artifact store
/// (one sequential read, no extraction) and render every item. Output
/// is byte-identical to `summarize --item all` over the same corpus.
fn cmd_summarize_artifacts(path: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    use osars::eval::Stopwatch;
    use osars::runtime::incremental::ItemArtifacts;
    use osars::runtime::{render_item_summary, warm_ancestor_index, WorkerScratch};

    if flag(flags, "focus").is_some() {
        return Err("--focus is not supported with --artifacts".to_owned());
    }
    if matches!(flag(flags, "item"), Some(it) if it != "all") {
        return Err("--artifacts renders every item; drop --item or pass --item all".to_owned());
    }
    let algorithm_name = flag(flags, "algorithm").unwrap_or("greedy");
    let opts = BatchOptions {
        k: parse_num(flags, "k", 5)?,
        eps: parse_eps(flags)?,
        granularity: parse_granularity(flag(flags, "granularity").unwrap_or("sentences"))?,
        algorithm: BatchAlgorithm::from_name(algorithm_name)
            .ok_or_else(|| format!("unknown algorithm '{algorithm_name}'"))?,
        corpus_seed: parse_num(flags, "seed", 42)?,
        graph_impl: parse_graph_impl(flags)?,
        extract_impl: parse_extract_impl(flags)?,
        ancestor_impl: parse_ancestor_impl(flags)?,
        ..BatchOptions::default()
    };
    let sw = Stopwatch::start();
    let art = osars::artifact::read_artifact(Path::new(path))
        .map_err(|e| format!("loading artifact '{path}': {e}"))?;
    let load_us = sw.micros();
    let osars::artifact::Artifact { corpus, extracted } = art;
    warm_ancestor_index(&corpus.hierarchy, opts.ancestor_impl);
    let mut scratch = WorkerScratch::new();
    let mut out = String::new();
    for (idx, (item, ex)) in corpus.items.iter().zip(extracted).enumerate() {
        let artifacts =
            ItemArtifacts::from_extracted(&corpus.hierarchy, &opts, item, ex, &mut scratch);
        let summary = artifacts.summarize(&corpus.hierarchy, &opts, idx, item, &mut scratch, None);
        out.push_str(&render_item_summary(&summary));
    }
    print!("{out}");
    eprintln!(
        "artifact boot: {} items from {path} (load {load_us:.0}µs, no extraction)",
        corpus.items.len()
    );
    Ok(())
}

fn cmd_summarize(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flag(flags, "artifacts") {
        return cmd_summarize_artifacts(path, flags);
    }
    let corpus = open_corpus(flags)?;
    let item_flag = flag(flags, "item").unwrap_or("0");
    if item_flag == "all" {
        return cmd_summarize_batch(&corpus, flags);
    }
    let item: usize = parse_num(flags, "item", 0)?;
    let k: usize = parse_num(flags, "k", 5)?;
    let eps = parse_eps(flags)?;
    let granularity = flag(flags, "granularity").unwrap_or("sentences");
    let algorithm_name = flag(flags, "algorithm").unwrap_or("greedy");
    let alg = algorithm(algorithm_name)?;
    let obs = osars::obs::global();

    // --trace-out FILE: build a request-scoped span tree over the three
    // pipeline stages and export it as Chrome trace_event JSON. Stdout
    // stays byte-identical — the trace only observes.
    let trace_out = flag(flags, "trace-out");
    let trace = trace_out.map(|_| osars::obs::Trace::new(item as u64));
    let mut root_span = trace.as_ref().map(|t| t.span("summarize"));

    let extract_impl = parse_extract_impl(flags)?;
    let (extracted, _) = {
        let _tspan = trace.as_ref().map(|t| t.span("extract"));
        obs.time("extract", || extract(&corpus, item, extract_impl))
    };
    let mut ex = extracted?;

    // --focus CONCEPT: restrict to the concept's sub-hierarchy. Pairs on
    // concepts outside the subtree are dropped; remaining concepts are
    // remapped into the extracted subgraph by name.
    let hierarchy = match flag(flags, "focus") {
        None => corpus.hierarchy.clone(),
        Some(name) => {
            let node = corpus
                .hierarchy
                .node_by_name(name)
                .ok_or_else(|| format!("unknown concept '{name}'"))?;
            let sub = corpus.hierarchy.subgraph(node);
            let mut remap: Vec<Option<usize>> = Vec::with_capacity(ex.pairs.len());
            let mut kept: Vec<Pair> = Vec::new();
            for p in &ex.pairs {
                match sub.node_by_name(corpus.hierarchy.name(p.concept)) {
                    Some(c) => {
                        remap.push(Some(kept.len()));
                        kept.push(Pair::new(c, p.sentiment));
                    }
                    None => remap.push(None),
                }
            }
            for s in &mut ex.sentences {
                s.pair_indices = s.pair_indices.iter().filter_map(|&pi| remap[pi]).collect();
            }
            ex.pairs = kept;
            println!(
                "focused on '{name}': {} pairs in the subtree",
                ex.pairs.len()
            );
            sub
        }
    };

    let gran = parse_granularity(granularity)?;
    let graph_impl = parse_graph_impl(flags)?;
    let ancestor = parse_ancestor_impl(flags)?;
    let jobs: usize = parse_num(flags, "jobs", 1)?;
    let graph_span = trace.as_ref().map(|t| t.span("graph.build"));
    let (graph, _) = obs.time("graph.build", || match (graph_impl, gran) {
        (GraphImpl::Indexed, Granularity::Pairs) => {
            par_for_pairs_ancestor(&hierarchy, &ex.pairs, eps, ancestor, jobs)
        }
        (GraphImpl::Indexed, Granularity::Sentences) => par_for_groups_ancestor(
            &hierarchy,
            &ex.pairs,
            &ex.sentence_groups(),
            eps,
            Granularity::Sentences,
            ancestor,
            jobs,
        ),
        (GraphImpl::Indexed, Granularity::Reviews) => par_for_groups_ancestor(
            &hierarchy,
            &ex.pairs,
            &ex.review_groups(),
            eps,
            Granularity::Reviews,
            ancestor,
            jobs,
        ),
        (GraphImpl::Naive, Granularity::Pairs) => {
            CoverageGraph::for_pairs_naive(&hierarchy, &ex.pairs, eps)
        }
        (GraphImpl::Naive, Granularity::Sentences) => CoverageGraph::for_groups_naive(
            &hierarchy,
            &ex.pairs,
            &ex.sentence_groups(),
            eps,
            Granularity::Sentences,
        ),
        (GraphImpl::Naive, Granularity::Reviews) => CoverageGraph::for_groups_naive(
            &hierarchy,
            &ex.pairs,
            &ex.review_groups(),
            eps,
            Granularity::Reviews,
        ),
    });
    drop(graph_span);
    let (summary, micros) = {
        let _tspan = trace
            .as_ref()
            .map(|t| t.span(&format!("solve.{algorithm_name}")));
        obs.time(&format!("solve.{algorithm_name}"), || {
            alg.summarize_traced(&graph, k, trace.as_ref())
        })
    };
    root_span.take();
    println!(
        "{} selected {} of {} candidates in {micros:.0}µs; cost {} (root-only {})",
        alg.name(),
        summary.selected.len(),
        graph.num_candidates(),
        summary.cost,
        graph.root_cost()
    );
    let wants_explain = match flag(flags, "explain") {
        None => false,
        Some("true") => true,
        Some("false") => false,
        Some(other) => return Err(format!("--explain must be true|false, got '{other}'")),
    };
    let explanation = wants_explain.then(|| explain::explain(&graph, &summary));
    for (slot, &sel) in summary.selected.iter().enumerate() {
        match granularity {
            "pairs" => {
                let p = ex.pairs[sel];
                println!("  • {} = {:+.2}", hierarchy.name(p.concept), p.sentiment);
            }
            "sentences" => println!("  • {}", ex.sentences[sel].text),
            _ => {
                let first = ex.reviews[sel].first().copied();
                let text = first.map_or("(empty review)", |si| ex.sentences[si].text.as_str());
                println!("  • review #{sel}: {text} …");
            }
        }
        if let Some(ex_report) = &explanation {
            let c = &ex_report.candidates[slot];
            println!(
                "      └ serves {} opinions (cost share {})",
                c.serves.len(),
                c.cost_share
            );
        }
    }
    if let Some(ex_report) = &explanation {
        println!(
            "  (root serves the remaining {} opinions, cost share {})",
            ex_report.root_serves.len(),
            ex_report.root_cost_share
        );
    }
    if let (Some(path), Some(t)) = (trace_out, &trace) {
        let tree = t.tree();
        std::fs::write(path, tree.to_chrome_json())
            .map_err(|e| format!("writing '{path}': {e}"))?;
        eprintln!(
            "trace with {} spans written to {path} (chrome trace_event format)",
            tree.spans.len()
        );
    }
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = open_corpus(flags)?;
    let k: usize = parse_num(flags, "k", 5)?;
    let eps = parse_eps(flags)?;
    let jobs: usize = parse_num(flags, "jobs", 1)?;
    let items: usize = parse_num(flags, "items", 5)?;
    let items = items.min(corpus.items.len());

    let extract_impl = parse_extract_impl(flags)?;
    let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
    let make_baselines = || -> Vec<Box<dyn SentenceSelector>> {
        vec![
            Box::new(MostPopular),
            Box::new(Proportional),
            Box::new(TextRank),
            Box::new(LexRank::default()),
            Box::new(LsaSummarizer::default()),
        ]
    };

    let mut totals: Vec<(String, f64, f64)> = Vec::new();
    totals.push(("greedy (ours)".to_owned(), 0.0, 0.0));
    for b in &make_baselines() {
        totals.push((b.name().to_owned(), 0.0, 0.0));
    }

    // Per-item scoring runs on the worker pool; the per-method error
    // vectors come back in item order, so the aggregated totals are
    // independent of the thread count.
    let eval_items = &corpus.items[..items];
    let report = BatchJob::new(eval_items)
        .jobs(jobs)
        .run(|scratch, _, item| {
            let obs = osars::obs::global();
            let baselines = make_baselines();
            let (ex, _) = obs.time("extract", || {
                extractor.extract(item, extract_impl, &mut scratch.extract)
            });
            let records: Vec<SentenceRecord> = ex
                .sentences
                .iter()
                .enumerate()
                .map(|(si, s)| SentenceRecord {
                    tokens: ex.sentence_tokens(si),
                    pairs: s.pair_indices.iter().map(|&pi| ex.pairs[pi]).collect(),
                })
                .collect();
            let (graph, _) = obs.time("graph.build", || {
                CoverageGraph::for_groups(
                    &corpus.hierarchy,
                    &ex.pairs,
                    &ex.sentence_groups(),
                    eps,
                    Granularity::Sentences,
                )
            });
            let pairs_of = |sel: &[usize]| -> Vec<Pair> {
                sel.iter()
                    .flat_map(|&si| ex.sentences[si].pair_indices.iter())
                    .map(|&pi| ex.pairs[pi])
                    .collect()
            };
            let score = |sel: &[usize]| -> (f64, f64) {
                let f = pairs_of(sel);
                (
                    sent_err(&corpus.hierarchy, &ex.pairs, &f),
                    sent_err_penalized(&corpus.hierarchy, &ex.pairs, &f),
                )
            };
            let (greedy, _) = obs.time("solve.greedy", || GreedySummarizer.summarize(&graph, k));
            let mut errs = vec![score(&greedy.selected)];
            for b in &baselines {
                let (sel, _) =
                    obs.time(&format!("baseline.{}", b.name()), || b.select(&records, k));
                errs.push(score(&sel));
            }
            errs
        });
    for errs in &report.results {
        for (slot, &(e, p)) in errs.iter().enumerate() {
            totals[slot].1 += e;
            totals[slot].2 += p;
        }
    }
    eprintln!("{}", report.render_stats());

    println!("sentiment error over {items} items (k = {k}, eps = {eps}; lower is better):\n");
    println!("{:<16} {:>10} {:>12}", "method", "sent-err", "penalized");
    for (name, e, p) in &totals {
        println!(
            "{name:<16} {:>10.4} {:>12.4}",
            e / items as f64,
            p / items as f64
        );
    }
    Ok(())
}

/// `osars check`: the seeded differential-testing & fault-injection
/// harness of [`osars::check`]. The report goes to stdout (byte-
/// identical for a given seed/cases/faults config); any failing check
/// makes the command exit non-zero after shrinking and persisting the
/// first failing case. `--replay FILE` re-runs a persisted case instead.
fn cmd_check(flags: &HashMap<String, String>) -> Result<(), String> {
    // Injected panics are part of normal fault-mode operation; keep the
    // default hook from spamming stderr with their backtraces.
    osars::check::quiet_injected_panics();
    if let Some(path) = flag(flags, "replay") {
        let data = std::fs::read_to_string(path).map_err(|e| format!("reading '{path}': {e}"))?;
        let outcome = osars::check::replay_case(&data)?;
        print!("{}", outcome.report);
        return match outcome.passed() {
            true => Ok(()),
            false => Err(format!("replayed case still fails ({path})")),
        };
    }
    let cfg = osars::check::CheckConfig {
        seed: parse_num(flags, "seed", 42)?,
        cases: parse_num(flags, "cases", 25)?,
        faults: matches!(flag(flags, "faults"), Some(v) if v != "false"),
        edits: matches!(flag(flags, "edits"), Some(v) if v != "false"),
        ancestor_impl: parse_ancestor_impl(flags)?,
        case_out: flag(flags, "case-out").map(PathBuf::from),
    };
    let outcome = osars::check::run_check(&cfg);
    print!("{}", outcome.report);
    match outcome.failures.len() {
        0 => Ok(()),
        1 => Err("1 check failure".to_owned()),
        n => Err(format!("{n} check failures")),
    }
}

/// `osars bench-incremental`: measure the incremental ingest path (what
/// the daemon does on `POST /reviews`) against the pre-incremental
/// baseline (invalidate everything, recompute every item from scratch)
/// over a seeded append/retract edit script, asserting byte-identical
/// output at every step, and write the percentiles to
/// `BENCH_incremental.json`.
fn cmd_bench_incremental(flags: &HashMap<String, String>) -> Result<(), String> {
    use osars::eval::{LatencyHistogram, Stopwatch};
    use osars::runtime::incremental::ItemArtifacts;
    use osars::runtime::{render_item_summary, summarize_one, Fault, WorkerScratch};

    let mut corpus = open_corpus(flags)?;
    let original = corpus.clone();
    let algorithm_name = flag(flags, "algorithm").unwrap_or("lazy");
    let opts = BatchOptions {
        k: parse_num(flags, "k", 5)?,
        eps: parse_eps(flags)?,
        granularity: parse_granularity(flag(flags, "granularity").unwrap_or("sentences"))?,
        algorithm: BatchAlgorithm::from_name(algorithm_name)
            .ok_or_else(|| format!("unknown algorithm '{algorithm_name}'"))?,
        corpus_seed: parse_num(flags, "seed", 42)?,
        graph_impl: parse_graph_impl(flags)?,
        extract_impl: parse_extract_impl(flags)?,
        ancestor_impl: parse_ancestor_impl(flags)?,
        ..BatchOptions::default()
    };
    let updates: usize = parse_num(flags, "updates", 40)?;
    let seed: u64 = parse_num(flags, "seed", 42)?;

    let extractor = Extractor::from_hierarchy(&corpus.hierarchy);
    let mut scratch = WorkerScratch::new();
    let mut artifacts: Vec<ItemArtifacts> = corpus
        .items
        .iter()
        .map(|it| ItemArtifacts::build(&corpus.hierarchy, &extractor, &opts, it, &mut scratch))
        .collect();

    let mut incremental = LatencyHistogram::new();
    let mut rebuild = LatencyHistogram::new();
    for edit in 0..updates {
        // The same seeded edit-script shape the `osars check --edits`
        // oracle uses: pick an item, retract its last review (only if
        // more than one remains) or append one recycled from the
        // original corpus.
        let draw = osars::runtime::item_seed(seed, 0xBE9C_0000 + edit as u64);
        let idx = (draw % corpus.items.len() as u64) as usize;
        let retract = (draw >> 33) & 1 == 1 && corpus.items[idx].reviews.len() > 1;
        if retract {
            corpus.items[idx].reviews.pop();
        } else {
            let donor = &original.items[((draw >> 8) % original.items.len() as u64) as usize];
            let review =
                donor.reviews[((draw >> 24) % donor.reviews.len() as u64) as usize].clone();
            corpus.items[idx].reviews.push(review);
        }

        // Incremental path: advance the edited item's artifacts and
        // re-answer it. Work is bounded by the one edited item.
        let sw = Stopwatch::start();
        artifacts[idx] = artifacts[idx].update(
            &corpus.hierarchy,
            &extractor,
            &opts,
            &corpus.items[idx],
            &mut scratch,
        );
        let incr_summary = artifacts[idx].summarize(
            &corpus.hierarchy,
            &opts,
            idx,
            &corpus.items[idx],
            &mut scratch,
            None,
        );
        incremental.record(sw.micros());

        // Baseline: the pre-incremental daemon bumped a global epoch on
        // ingest, so every cached summary died and every item was
        // recomputed from scratch on its next request.
        let sw = Stopwatch::start();
        let mut fresh_edited = None;
        for i in 0..corpus.items.len() {
            let s = summarize_one(&corpus, &extractor, &opts, &mut scratch, i, Fault::None)
                .expect("item in range");
            if i == idx {
                fresh_edited = Some(s);
            }
        }
        rebuild.record(sw.micros());

        let fresh = fresh_edited.expect("edited item was rebuilt");
        if render_item_summary(&incr_summary) != render_item_summary(&fresh) {
            return Err(format!(
                "update {edit}: incremental summary of item {idx} diverges from a fresh rebuild"
            ));
        }
    }

    let pct = |h: &LatencyHistogram, p: f64| h.percentile(p).unwrap_or(0.0);
    let speedup = pct(&rebuild, 50.0) / pct(&incremental, 50.0).max(1e-9);
    let json = osars::json::to_string_pretty(&osars::json::Value::Object(vec![
        ("updates".into(), osars::json::Value::from(updates)),
        ("items".into(), osars::json::Value::from(corpus.items.len())),
        (
            "total_reviews".into(),
            osars::json::Value::from(corpus.total_reviews()),
        ),
        (
            "algorithm".into(),
            osars::json::Value::from(opts.algorithm.name()),
        ),
        (
            "incremental_p50_us".into(),
            osars::json::Value::Number(pct(&incremental, 50.0)),
        ),
        (
            "incremental_p95_us".into(),
            osars::json::Value::Number(pct(&incremental, 95.0)),
        ),
        (
            "rebuild_p50_us".into(),
            osars::json::Value::Number(pct(&rebuild, 50.0)),
        ),
        (
            "rebuild_p95_us".into(),
            osars::json::Value::Number(pct(&rebuild, 95.0)),
        ),
        ("speedup_p50".into(), osars::json::Value::Number(speedup)),
    ]));
    let out = flag(flags, "out").unwrap_or("BENCH_incremental.json");
    std::fs::write(out, &json).map_err(|e| format!("writing '{out}': {e}"))?;
    println!("{json}");
    eprintln!(
        "bench-incremental: {updates} updates over {} items; p50 incremental {:.0}µs vs \
         full rebuild {:.0}µs ({speedup:.1}× at p50); report in {out}",
        corpus.items.len(),
        pct(&incremental, 50.0),
        pct(&rebuild, 50.0),
    );
    Ok(())
}

/// `osars bench-ontology`: the SNOMED-scale numbers behind the segment
/// index. Phase 1 builds a synthetic multi-parent DAG (300k concepts by
/// default) and times the dense closure oracle against the compressed
/// segment index — build cost, resident entries, and query throughput
/// over a clustered pair sample. Phase 2 measures daemon cold-start on
/// a real corpus: extraction boot vs artifact boot (compile once
/// untimed, then one sequential read), asserting the rendered summaries
/// stay byte-identical. Writes the JSON report to `--out`.
fn cmd_bench_ontology(flags: &HashMap<String, String>) -> Result<(), String> {
    use osars::datasets::{sample_pairs, synthetic_ontology, SyntheticOntologyConfig};
    use osars::eval::Stopwatch;
    use osars::json::Value;
    use osars::ontology::{AncestorIndex, NodeId, SegmentIndex, SegmentScratch};
    use osars::runtime::incremental::ItemArtifacts;
    use osars::runtime::{render_item_summary, warm_ancestor_index, WorkerScratch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let seed: u64 = parse_num(flags, "seed", 42)?;
    let cfg = SyntheticOntologyConfig {
        nodes: parse_num(flags, "nodes", 300_000)?,
        levels: parse_num(flags, "levels", 10)?,
        ..SyntheticOntologyConfig::huge()
    };
    let n_pairs: usize = parse_num(flags, "pairs", 2_000_000)?;

    eprintln!(
        "bench-ontology: building synthetic DAG ({} nodes, {} levels) ...",
        cfg.nodes, cfg.levels
    );
    let h = synthetic_ontology(&cfg, seed);

    // Index build cost: materialized transitive closure vs segments.
    let (dense, dense_build_us) = Stopwatch::time(|| AncestorIndex::build(&h));
    let (seg, segmented_build_us) = Stopwatch::time(|| SegmentIndex::build(&h));

    // Query throughput over a clustered sample — the access pattern the
    // pipeline sees (hot subtrees), not uniform random nodes. Visit
    // counts are accumulated so the loops can't be optimized away, and
    // compared so a silent twin divergence fails the bench.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB_E4C4);
    let pairs = sample_pairs(&h, n_pairs, 64, &mut rng);
    let (dense_visits, dense_query_us) = Stopwatch::time(|| {
        let mut visits = 0usize;
        for p in &pairs {
            visits += dense.ancestors(p.concept).len();
        }
        visits
    });
    let mut seg_scratch = SegmentScratch::new();
    let mut buf: Vec<(NodeId, u32)> = Vec::new();
    let (seg_visits, segmented_query_us) = Stopwatch::time(|| {
        let mut visits = 0usize;
        for p in &pairs {
            seg.ancestors_with_dist_into(p.concept, &mut seg_scratch, &mut buf);
            visits += buf.len();
        }
        visits
    });
    if dense_visits != seg_visits {
        return Err(format!(
            "twin oracles disagree on total ancestor visits: dense {dense_visits} vs segmented {seg_visits}"
        ));
    }
    eprintln!(
        "index build: dense {dense_build_us:.0}µs ({} entries) vs segmented {segmented_build_us:.0}µs ({} entries); \
         {} queries: dense {dense_query_us:.0}µs vs segmented {segmented_query_us:.0}µs",
        dense.entry_count(),
        seg.entry_weight(),
        pairs.len(),
    );

    // Cold start: time-to-ready — everything a fresh daemon must do
    // before it can start answering summary requests with zero
    // extraction debt. Both arms boot from one file on disk, mirroring
    // the two real boot modes: `serve --corpus FILE` (raw reviews JSON;
    // pays parse + automaton construction + a full extraction pass) vs
    // `serve --artifacts FILE` (one sequential read of the compiled
    // store + checksum sweep + prelude decode; item blocks materialize
    // lazily on first request, and the eager whole-store decode is
    // recorded separately as `coldstart_artifact_eager_us`). The
    // compile is the offline step and stays untimed. The per-request
    // work both boots share — graph build + summarization — runs
    // outside the window and must render identical bytes, so a faster
    // boot can't silently be a wrong boot.
    let domain = flag(flags, "domain").unwrap_or("doctors");
    let scale = flag(flags, "scale").unwrap_or("large");
    let ancestor = parse_ancestor_impl(flags)?;
    let opts = BatchOptions {
        ancestor_impl: ancestor,
        ..BatchOptions::default()
    };

    let gen = build_corpus(domain, scale, seed)?;
    let raw_store = std::env::temp_dir().join(format!("osars-bench-ontology-{seed}.json"));
    osars::datasets::save_corpus(&gen, &raw_store)
        .map_err(|e| format!("writing '{}': {e}", raw_store.display()))?;
    drop(gen);

    let sw = Stopwatch::start();
    let corpus_a =
        load_corpus(&raw_store).map_err(|e| format!("loading '{}': {e}", raw_store.display()))?;
    let extractor = Extractor::from_hierarchy(&corpus_a.hierarchy);
    warm_ancestor_index(&corpus_a.hierarchy, ancestor);
    let mut ex_scratch = ExtractScratch::default();
    let extracted_a: Vec<ExtractedItem> = corpus_a
        .items
        .iter()
        .map(|it| extractor.extract(it, ExtractImpl::Interned, &mut ex_scratch))
        .collect();
    let coldstart_extraction_us = sw.micros();
    let _ = std::fs::remove_file(&raw_store);

    let store = std::env::temp_dir().join(format!("osars-bench-ontology-{seed}.osar"));
    let artifact_bytes = osars::artifact::write_artifact(&store, &corpus_a, &extracted_a)
        .map_err(|e| format!("writing '{}': {e}", store.display()))?;

    let sw = Stopwatch::start();
    let lazy = osars::artifact::open_lazy(&store)
        .map_err(|e| format!("loading '{}': {e}", store.display()))?;
    warm_ancestor_index(&lazy.hierarchy, ancestor);
    let coldstart_artifact_us = sw.micros();

    // For scale, also record what a full eager decode costs — the
    // `summarize --artifacts` batch path pays this, a lazy daemon
    // amortizes it across first-touch requests.
    let (eager, coldstart_artifact_eager_us) =
        Stopwatch::time(|| osars::artifact::read_artifact(&store));
    let eager = eager.map_err(|e| format!("loading '{}': {e}", store.display()))?;
    let _ = std::fs::remove_file(&store);
    if eager.corpus.items.len() != lazy.store.len() {
        return Err("eager and lazy decodes disagree on item count".to_owned());
    }
    drop(eager);

    let mut scratch = WorkerScratch::new();
    let mut extraction_out = String::new();
    for (idx, (item, ex)) in corpus_a.items.iter().zip(extracted_a).enumerate() {
        let art = ItemArtifacts::from_extracted(&corpus_a.hierarchy, &opts, item, ex, &mut scratch);
        let summary = art.summarize(&corpus_a.hierarchy, &opts, idx, item, &mut scratch, None);
        extraction_out.push_str(&render_item_summary(&summary));
    }
    let mut artifact_out = String::new();
    for idx in 0..lazy.store.len() {
        let (item, ex) = lazy
            .store
            .item(idx)
            .map_err(|e| format!("decoding item block {idx}: {e}"))?;
        let art = ItemArtifacts::from_extracted(&lazy.hierarchy, &opts, &item, ex, &mut scratch);
        let summary = art.summarize(&lazy.hierarchy, &opts, idx, &item, &mut scratch, None);
        artifact_out.push_str(&render_item_summary(&summary));
    }
    if extraction_out != artifact_out {
        return Err(
            "artifact-booted summaries diverge from extraction-booted summaries".to_owned(),
        );
    }
    let coldstart_speedup = coldstart_extraction_us / coldstart_artifact_us.max(1e-9);

    let json = osars::json::to_string_pretty(&Value::Object(vec![
        ("nodes".into(), Value::from(h.node_count())),
        ("levels".into(), Value::from(cfg.levels)),
        ("edges".into(), Value::from(h.edge_list().len())),
        ("pairs".into(), Value::from(pairs.len())),
        ("dense_build_us".into(), Value::Number(dense_build_us)),
        (
            "segmented_build_us".into(),
            Value::Number(segmented_build_us),
        ),
        ("dense_entries".into(), Value::from(dense.entry_count())),
        ("segmented_entries".into(), Value::from(seg.entry_weight())),
        ("dense_query_us".into(), Value::Number(dense_query_us)),
        (
            "segmented_query_us".into(),
            Value::Number(segmented_query_us),
        ),
        ("query_visits".into(), Value::from(dense_visits)),
        ("coldstart_domain".into(), Value::from(domain)),
        ("coldstart_scale".into(), Value::from(scale)),
        ("coldstart_items".into(), Value::from(lazy.store.len())),
        (
            "coldstart_extraction_us".into(),
            Value::Number(coldstart_extraction_us),
        ),
        (
            "coldstart_artifact_us".into(),
            Value::Number(coldstart_artifact_us),
        ),
        (
            "coldstart_artifact_eager_us".into(),
            Value::Number(coldstart_artifact_eager_us),
        ),
        ("coldstart_speedup".into(), Value::Number(coldstart_speedup)),
        (
            "artifact_bytes".into(),
            Value::from(artifact_bytes as usize),
        ),
    ]));
    let out = flag(flags, "out").unwrap_or("BENCH_ontology.json");
    std::fs::write(out, &json).map_err(|e| format!("writing '{out}': {e}"))?;
    println!("{json}");
    eprintln!(
        "bench-ontology: cold start {coldstart_extraction_us:.0}µs (extraction) vs \
         {coldstart_artifact_us:.0}µs (artifact, {artifact_bytes} bytes) — {coldstart_speedup:.1}×; \
         report in {out}"
    );
    Ok(())
}

/// The `render_prometheus` name mangle: `osars_` prefix, non-Prometheus
/// bytes replaced with `_`. Kept as an independent replica so
/// `check-metrics` cross-validates the exposition rather than trusting
/// the library to agree with itself.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("osars_");
    for c in name.chars() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Validate a `--metrics` JSONL file: every non-empty line must parse as
/// a JSON object carrying string fields `t` (record kind) and `name`,
/// and must survive an osa-json serialize → re-parse round trip
/// unchanged. The final counter/gauge/hist records are then rebuilt into
/// a snapshot whose Prometheus exposition must round-trip every summary
/// quantile, `_count` and `_sum` line back to the recorded values. Exits
/// non-zero on the first violation.
fn cmd_check_metrics(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = required(flags, "metrics")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("reading '{path}': {e}"))?;
    let mut records = 0usize;
    let mut spans = 0usize;
    let mut snap = osars::obs::Snapshot {
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    };
    for (idx, line) in data.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let value =
            osars::json::parse(line).map_err(|e| format!("{path}:{lineno}: invalid JSON: {e}"))?;
        let reparsed = osars::json::parse(&osars::json::to_string(&value))
            .map_err(|e| format!("{path}:{lineno}: round-trip re-parse failed: {e}"))?;
        if reparsed != value {
            return Err(format!(
                "{path}:{lineno}: JSON round trip changed the value"
            ));
        }
        let kind = value
            .get("t")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}:{lineno}: missing string field 't'"))?;
        let name = value
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}:{lineno}: missing string field 'name'"))?;
        let num = |field: &str| -> Result<f64, String> {
            value
                .get(field)
                .and_then(osars::json::Value::as_f64)
                .ok_or_else(|| format!("{path}:{lineno}: missing numeric field '{field}'"))
        };
        // Rebuild the trailing snapshot; re-emitted names overwrite so
        // only the final state is validated (the snapshot is appended
        // after the span stream).
        match kind {
            "span" => spans += 1,
            "counter" => {
                let v = num("value")? as u64;
                snap.counters.retain(|(n, _)| n != name);
                snap.counters.push((name.to_owned(), v));
            }
            "gauge" => {
                let v = num("value")? as i64;
                snap.gauges.retain(|(n, _)| n != name);
                snap.gauges.push((name.to_owned(), v));
            }
            "hist" => {
                let stats = osars::obs::HistStats {
                    count: num("count")? as usize,
                    total: num("total_us")?,
                    mean: num("mean_us")?,
                    min: num("min_us")?,
                    max: num("max_us")?,
                    p50: num("p50_us")?,
                    p95: num("p95_us")?,
                    p99: num("p99_us")?,
                };
                snap.histograms.retain(|(n, _)| n != name);
                snap.histograms.push((name.to_owned(), stats));
            }
            _ => {}
        }
        records += 1;
    }
    if records == 0 {
        return Err(format!("'{path}' contains no metric records"));
    }

    // Prometheus exposition round trip: every histogram's quantile,
    // count and sum lines must parse back to the recorded values.
    let prom = snap.render_prometheus();
    let line_value = |needle: &str| -> Result<f64, String> {
        let line = prom
            .lines()
            .find(|l| l.starts_with(needle))
            .ok_or_else(|| format!("render_prometheus dropped '{needle}'"))?;
        line[needle.len()..]
            .trim()
            .parse()
            .map_err(|_| format!("unparsable exposition line '{line}'"))
    };
    let mut quantile_lines = 0usize;
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        for (q, expect) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            let got = line_value(&format!("{n}{{quantile=\"{q}\"}} "))?;
            if got != expect {
                return Err(format!(
                    "prometheus quantile {q} of '{name}' round-tripped to {got}, recorded {expect}"
                ));
            }
            quantile_lines += 1;
        }
        let count = line_value(&format!("{n}_count "))?;
        if count != h.count as f64 {
            return Err(format!(
                "prometheus count of '{name}' round-tripped to {count}, recorded {}",
                h.count
            ));
        }
        let sum = line_value(&format!("{n}_sum "))?;
        if sum != h.total {
            return Err(format!(
                "prometheus sum of '{name}' round-tripped to {sum}, recorded {}",
                h.total
            ));
        }
    }
    println!(
        "ok: {records} records ({spans} spans) in {path}; prometheus round-trip: \
         {quantile_lines} quantile lines over {} summaries",
        snap.histograms.len()
    );
    Ok(())
}

/// `osars serve`: the long-lived summarization daemon. Loads the corpus
/// once, then answers HTTP requests until killed. See the SERVE help
/// section and [`osars::serve`] for the endpoint contract.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    // Injected panics (`?inject=panic`) answer 500 by design; keep the
    // default hook from printing a backtrace per poisoned request.
    osars::serve::quiet_injected_panics();
    // `--artifacts FILE` boots lazily from a compiled artifact: one
    // sequential read plus the prelude decode (hierarchy, pre-validated
    // segment index, block table). Item blocks decode on first request
    // and the extraction pipeline never runs at boot.
    let lazy = match flag(flags, "artifacts") {
        Some(path) => Some(
            osars::artifact::open_lazy(Path::new(path))
                .map_err(|e| format!("loading artifact '{path}': {e}"))?,
        ),
        None => None,
    };
    let corpus = match lazy {
        Some(_) => None,
        None => Some(open_corpus(flags)?),
    };
    let algorithm_name = flag(flags, "algorithm").unwrap_or("greedy");
    let defaults = BatchOptions {
        k: parse_num(flags, "k", 5)?,
        eps: parse_eps(flags)?,
        granularity: parse_granularity(flag(flags, "granularity").unwrap_or("sentences"))?,
        algorithm: BatchAlgorithm::from_name(algorithm_name)
            .ok_or_else(|| format!("unknown algorithm '{algorithm_name}'"))?,
        corpus_seed: parse_num(flags, "seed", 42)?,
        graph_impl: parse_graph_impl(flags)?,
        extract_impl: parse_extract_impl(flags)?,
        ancestor_impl: parse_ancestor_impl(flags)?,
        ..BatchOptions::default()
    };
    let opts = osars::serve::ServeOptions {
        workers: parse_num(flags, "workers", 0)?,
        queue_depth: parse_num(flags, "queue-depth", 128)?,
        deadline_ms: parse_num(flags, "deadline-ms", 10_000)?,
        cache_capacity: parse_num(flags, "cache", 4096)?,
        warm: matches!(flag(flags, "warm"), Some(v) if v != "false"),
        slow_ms: parse_num(flags, "slow-ms", 500)?,
        conn_timeout_ms: parse_num(flags, "conn-timeout-ms", 60_000)?,
        max_conns: parse_num(flags, "max-conns", 0)?,
        defaults,
    };
    let addr = flag(flags, "addr").unwrap_or("127.0.0.1:7878");
    let (items, handle) = match (lazy, corpus) {
        (Some(art), _) => (
            art.store.len(),
            osars::serve::serve_artifact(art, addr, opts),
        ),
        (None, Some(corpus)) => (
            corpus.items.len(),
            osars::serve::serve_prepared(corpus, None, addr, opts),
        ),
        (None, None) => unreachable!("either --artifacts or a corpus source"),
    };
    let handle = handle.map_err(|e| format!("binding '{addr}': {e}"))?;
    // Stderr, so scripts scraping stdout for summaries see nothing new.
    eprintln!(
        "osars serve: listening on http://{} ({items} items); Ctrl-C to stop",
        handle.addr()
    );
    // The daemon runs until the process is killed; all work happens on
    // the accept/worker threads held by `handle`.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `osars loadgen`: drive a running daemon and report latency
/// percentiles (the `BENCH_serve.json` producer).
fn cmd_loadgen(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = required(flags, "addr")?;
    let opts = osars::serve::LoadgenOptions {
        conns: parse_num(flags, "conns", 4)?,
        rps: parse_num(flags, "rps", 0)?,
        duration_secs: parse_num(flags, "duration-secs", 5)?,
        query: flag(flags, "query").unwrap_or("").to_owned(),
        panic_every: parse_num(flags, "panic-every", 0)?,
    };
    let report = osars::serve::run_loadgen(addr, &opts)
        .map_err(|e| format!("load-generating against '{addr}': {e}"))?;
    let json = report.to_json();
    let out = flag(flags, "out").unwrap_or("BENCH_serve.json");
    std::fs::write(out, &json).map_err(|e| format!("writing '{out}': {e}"))?;
    println!("{json}");
    eprintln!(
        "loadgen: {} requests in {:.1}s ({:.0} rps); p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs; report in {out}",
        report.total, report.elapsed_secs, report.achieved_rps, report.p50_us, report.p95_us, report.p99_us
    );
    if report.total == 0 {
        return Err("no requests completed — is the daemon reachable?".to_owned());
    }
    Ok(())
}
