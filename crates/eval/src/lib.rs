//! # osa-eval
//!
//! Evaluation metrics and measurement helpers for the summarization
//! experiments:
//!
//! * [`sent_err`] / [`sent_err_penalized`] — the paper's Section 5.3
//!   sentiment-error measures (Eq. 1 and its penalized variant),
//! * [`covered_fraction`] and [`elbow`] — the ε-selection machinery
//!   ("the sentiment threshold's elbow is at 0.5"),
//! * [`covered_within`] / [`covered_by_summary`] /
//!   [`mean_serving_distance`] — the coverage measures of the ICDE 2017
//!   poster version,
//! * [`Stopwatch`] and [`SummaryStats`] — timing for the Fig. 4
//!   experiments.

//! ## Example
//!
//! ```
//! use osa_core::Pair;
//! use osa_eval::sent_err;
//! use osa_ontology::HierarchyBuilder;
//!
//! let mut b = HierarchyBuilder::new();
//! b.add_edge_by_name("r", "screen").unwrap();
//! let h = b.build().unwrap();
//! let screen = h.node_by_name("screen").unwrap();
//!
//! let original = vec![Pair::new(screen, 0.8)];
//! let summary = vec![Pair::new(screen, 0.6)];
//! assert!((sent_err(&h, &original, &summary) - 0.2).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod coverage;
mod metrics;
mod threshold;
mod timing;

pub use coverage::{covered_by_summary, covered_within, mean_serving_distance};
pub use metrics::{sent_err, sent_err_penalized};
pub use threshold::{covered_fraction, elbow};
pub use timing::{duration_micros, LatencyHistogram, Stopwatch, SummaryStats};
