//! Property tests for the linear-algebra kernels.

use osa_linalg::{cholesky_solve, pagerank, svd, Mat, PageRankOptions};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim)
        .prop_flat_map(|(r, c)| {
            proptest::collection::vec(-50i16..=50, r * c).prop_map(move |vals| {
                let rows: Vec<Vec<f64>> = vals
                    .chunks(c)
                    .map(|ch| ch.iter().map(|&v| f64::from(v) / 10.0).collect())
                    .collect();
                Mat::from_rows(&rows)
            })
        })
        .no_shrink()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svd_reconstructs_and_is_orthonormal(a in arb_matrix(6)) {
        let s = svd(&a);
        let k = s.sigma.len();
        // Reconstruct U Σ Vᵀ.
        let mut us = s.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                us[(i, j)] *= s.sigma[j];
            }
        }
        let recon = us.matmul(&s.v.transpose());
        prop_assert!(recon.max_abs_diff(&a) < 1e-7, "reconstruction error");
        // Orthonormal columns.
        prop_assert!(s.u.transpose().matmul(&s.u).max_abs_diff(&Mat::identity(k)) < 1e-7);
        prop_assert!(s.v.transpose().matmul(&s.v).max_abs_diff(&Mat::identity(k)) < 1e-7);
        // Sorted, non-negative singular values.
        for w in s.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        prop_assert!(s.sigma.iter().all(|&x| x >= -1e-12));
        // Largest singular value dominates the Frobenius-scaled norm.
        let fro = a.frobenius();
        if k > 0 {
            prop_assert!(s.sigma[0] <= fro + 1e-7);
            prop_assert!(s.sigma[0] * (k as f64).sqrt() >= fro - 1e-7);
        }
    }

    #[test]
    fn cholesky_solves_spd_systems(b in arb_matrix(5), x in proptest::collection::vec(-10i8..=10, 5)) {
        // A = BᵀB + I is SPD for any B.
        let n = b.cols();
        let a = b.transpose().matmul(&b).add(&Mat::identity(n));
        let x_true: Vec<f64> = x.iter().take(n).map(|&v| f64::from(v)).collect();
        if x_true.len() < n {
            return Ok(());
        }
        let rhs = a.matvec(&x_true);
        let solved = cholesky_solve(&a, &rhs).expect("SPD by construction");
        for (got, want) in solved.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn pagerank_is_a_probability_vector(
        n in 1usize..=8,
        raw in proptest::collection::vec(0u8..=5, 64),
    ) {
        let mut w = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    w[i * n + j] = f64::from(raw[i * 8 + j]);
                }
            }
        }
        let r = pagerank(&w, n, PageRankOptions::default());
        prop_assert_eq!(r.len(), n);
        prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(r.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn matmul_is_associative(a in arb_matrix(4), seed in 0u8..4) {
        // Shape-compatible chain: a (r×c), b (c×r), c (r×c).
        let b = a.transpose().scale(f64::from(seed) / 2.0 + 0.5);
        let c = a.scale(0.3);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-6);
    }

    #[test]
    fn transpose_reverses_matvec(a in arb_matrix(5), v in proptest::collection::vec(-5i8..=5, 5)) {
        // (Aᵀ y)·x == y·(A x): adjoint identity.
        let x: Vec<f64> = v.iter().take(a.cols()).map(|&t| f64::from(t)).collect();
        let y: Vec<f64> = (0..a.rows()).map(|i| (i as f64) - 1.0).collect();
        if x.len() < a.cols() {
            return Ok(());
        }
        let lhs = osa_linalg::dot(&a.transpose().matvec(&y), &x);
        let rhs = osa_linalg::dot(&y, &a.matvec(&x));
        prop_assert!((lhs - rhs).abs() < 1e-7);
    }
}
