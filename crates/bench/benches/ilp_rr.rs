//! ILP and LP-rounding benchmark on a small per-item instance (the
//! Fig. 4 regime at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use osa_bench::quant_workload;
use osa_core::{GreedySummarizer, IlpSummarizer, RandomizedRounding, Summarizer};

fn bench_ilp_rr(c: &mut Criterion) {
    let w = quant_workload(1, 30, 17);
    let graph = w.items[0].graph(&w.hierarchy, 0.5, osa_core::Granularity::Pairs);
    let k = 5;
    let mut group = c.benchmark_group("exact_vs_approx");
    group.sample_size(10);
    group.bench_function("ilp", |b| b.iter(|| IlpSummarizer.summarize(&graph, k)));
    group.bench_function("rr", |b| {
        b.iter(|| RandomizedRounding::with_seed(3).summarize(&graph, k))
    });
    group.bench_function("greedy", |b| {
        b.iter(|| GreedySummarizer.summarize(&graph, k))
    });
    group.finish();
}

criterion_group!(benches, bench_ilp_rr);
criterion_main!(benches);
