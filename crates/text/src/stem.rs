//! A light suffix stemmer.
//!
//! Not a full Porter stemmer — just the inflectional suffixes that matter
//! for matching review vocabulary against lexicons ("screens" → "screen",
//! "charging" → "charge" via "charg"). Conservative: never stems words of
//! four characters or fewer, and always leaves at least three characters.

/// Strip common inflectional suffixes from a lowercase word.
pub fn stem(word: &str) -> String {
    let w = word;
    if w.len() <= 4 {
        return w.to_owned();
    }
    // Order matters: longest suffixes first.
    for (suffix, replace) in [
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("ations", "ate"),
        ("ization", "ize"),
        ("ingly", ""),
        ("edly", ""),
        ("ation", "ate"),
        ("ness", ""),
        ("ments", "ment"),
        ("ies", "y"),
        ("ing", ""),
        ("ed", ""),
        ("es", ""),
        ("ly", ""),
        ("s", ""),
    ] {
        if let Some(base) = w.strip_suffix(suffix) {
            // Count chars, not bytes: a single non-BMP scalar is four
            // bytes but only one character of stem.
            if base.chars().count() + replace.len() >= 3 {
                // "running" -> "runn" -> collapse doubled final consonant.
                let mut out = format!("{base}{replace}");
                let mut tail = out.chars().rev();
                let last = tail.next();
                let prev = tail.next();
                // Compare whole chars and only collapse ASCII consonants.
                // A byte-level comparison here ate entire scalars whose
                // UTF-8 encoding ends in two equal bytes (e.g. 𒀀,
                // U+12000 = F0 92 80 80), emptying the stem.
                if replace.is_empty()
                    && last.is_some()
                    && last == prev
                    && last.is_some_and(|c| {
                        c.is_ascii_alphabetic()
                            && !matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 's' | 'l')
                    })
                {
                    out.pop();
                }
                return out;
            }
        }
    }
    w.to_owned()
}

#[cfg(test)]
mod tests {
    use super::stem;

    #[test]
    fn plural_and_verb_forms() {
        assert_eq!(stem("screens"), "screen");
        assert_eq!(stem("batteries"), "battery");
        assert_eq!(stem("charging"), "charg");
        assert_eq!(stem("worked"), "work");
        assert_eq!(stem("quickly"), "quick");
    }

    #[test]
    fn doubled_consonant_collapse() {
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("stopped"), "stop");
        // 'll' and vowels are not collapsed.
        assert_eq!(stem("calling"), "call");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("good"), "good");
        assert_eq!(stem("apps"), "apps");
    }

    #[test]
    fn no_over_stemming() {
        // Never produce fewer than 3 characters: "using" would stem to
        // "us", so it stays intact.
        assert_eq!(stem("using"), "using");
        assert!(stem("doctors").len() >= 3);
    }
}
