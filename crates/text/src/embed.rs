//! Hashed bag-of-words sentence embeddings.
//!
//! A fixed-dimension, vocabulary-free sentence representation: each token
//! (and each token bigram) is hashed into one of `dim` buckets with a
//! sign hash (feature hashing à la Weinberger et al.). The result is the
//! deterministic stand-in for the paper's doc2vec sentence vectors — the
//! downstream regression only needs *some* fixed-size featurization.

/// Feature-hashing sentence embedder.
#[derive(Debug, Clone, Copy)]
pub struct HashedBow {
    dim: usize,
    /// Also hash adjacent-token bigrams (captures "not good" ≠ "good").
    pub use_bigrams: bool,
}

impl HashedBow {
    /// Create an embedder with `dim` buckets (power of two recommended).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        HashedBow {
            dim,
            use_bigrams: true,
        }
    }

    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed a tokenized sentence into an L2-normalized vector.
    pub fn embed(&self, tokens: &[String]) -> Vec<f64> {
        let mut v = vec![0.0f64; self.dim];
        for t in tokens {
            self.bump(&mut v, t);
        }
        if self.use_bigrams {
            for pair in tokens.windows(2) {
                let joined = format!("{} {}", pair[0], pair[1]);
                self.bump(&mut v, &joined);
            }
        }
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-12 {
            for x in &mut v {
                *x /= n;
            }
        }
        v
    }

    fn bump(&self, v: &mut [f64], feature: &str) {
        let h = fnv1a(feature.as_bytes());
        let bucket = (h % self.dim as u64) as usize;
        // An independent bit decides the sign, keeping hashed features
        // approximately unbiased.
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[bucket] += sign;
    }
}

/// FNV-1a 64-bit hash — tiny, fast, deterministic across runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        crate::tokenize(s)
    }

    #[test]
    fn deterministic_and_normalized() {
        let e = HashedBow::new(64);
        let a = e.embed(&toks("the screen is great"));
        let b = e.embed(&toks("the screen is great"));
        assert_eq!(a, b);
        let n: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_sentences_differ() {
        let e = HashedBow::new(128);
        let a = e.embed(&toks("great screen"));
        let b = e.embed(&toks("terrible battery"));
        assert_ne!(a, b);
    }

    #[test]
    fn bigrams_distinguish_negation() {
        let e = HashedBow::new(256);
        let pos = e.embed(&toks("good camera"));
        let neg = e.embed(&toks("not good camera"));
        assert_ne!(pos, neg);
    }

    #[test]
    fn empty_sentence_is_zero_vector() {
        let e = HashedBow::new(32);
        let v = e.embed(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.len(), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = HashedBow::new(0);
    }
}
