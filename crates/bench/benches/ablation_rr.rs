//! Randomized-rounding trials ablation: cost of the best of T samples of
//! one LP solution as T grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osa_bench::quant_workload;
use osa_core::{RandomizedRounding, Summarizer};

fn bench_rr(c: &mut Criterion) {
    let w = quant_workload(1, 60, 53);
    let graph = w.items[0].graph(&w.hierarchy, 0.5, osa_core::Granularity::Pairs);
    let mut group = c.benchmark_group("ablation/rr-trials");
    group.sample_size(10);
    for trials in [1usize, 4, 16] {
        let rr = RandomizedRounding { seed: 9, trials };
        eprintln!("trials={trials}: cost {}", rr.summarize(&graph, 6).cost);
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, _| {
            b.iter(|| rr.summarize(&graph, 6))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rr);
criterion_main!(benches);
