//! JSON (de)serialization of hierarchies.
//!
//! The on-disk representation is a flat node/edge list (not the internal
//! arena), which keeps the format stable, diff-able and independent of the
//! in-memory layout:
//!
//! ```json
//! {
//!   "nodes": [ { "name": "phone", "terms": ["phone", "cellphone"] }, ... ],
//!   "edges": [ [0, 1], [0, 2], ... ]
//! }
//! ```

use osa_json::Value;

use crate::{Hierarchy, HierarchyBuilder, NodeId, OntologyError};

/// Build the document tree for a hierarchy. Public so the corpus
/// snapshot format in `osa-datasets` can embed it as a nested object.
pub fn to_value(h: &Hierarchy) -> Value {
    let nodes = h
        .nodes()
        .map(|n| {
            Value::Object(vec![
                ("name".into(), Value::from(h.name(n))),
                (
                    "terms".into(),
                    Value::Array(h.terms(n).iter().map(|t| Value::from(t.as_str())).collect()),
                ),
            ])
        })
        .collect();
    let edges = h
        .nodes()
        .flat_map(|p| {
            h.children(p)
                .iter()
                .map(move |c| Value::Array(vec![Value::from(p.0), Value::from(c.0)]))
        })
        .collect();
    Value::Object(vec![
        ("nodes".into(), Value::Array(nodes)),
        ("edges".into(), Value::Array(edges)),
    ])
}

/// Serialize a hierarchy to a pretty-printed JSON string.
pub fn to_json(h: &Hierarchy) -> String {
    osa_json::to_string_pretty(&to_value(h))
}

fn bad(msg: &str) -> OntologyError {
    OntologyError::Serde(msg.to_owned())
}

/// Rebuild a hierarchy from a parsed document tree, re-validating every
/// rooted-DAG invariant.
pub fn from_value(doc: &Value) -> Result<Hierarchy, OntologyError> {
    let nodes = doc
        .get("nodes")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("document must have a 'nodes' array"))?;
    let edges = doc
        .get("edges")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("document must have an 'edges' array"))?;
    let mut b = HierarchyBuilder::new();
    for node in nodes {
        let name = node
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("node must have a string 'name'"))?;
        let terms = node
            .get("terms")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("node must have a 'terms' array"))?
            .iter()
            .map(|t| {
                t.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| bad("terms must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        b.add_node_with_terms(name, &terms);
    }
    let n = nodes.len() as u64;
    for edge in edges {
        let pair = edge.as_array().ok_or_else(|| bad("edge must be a pair"))?;
        let (p, c) = match pair {
            [p, c] => (
                p.as_u64()
                    .ok_or_else(|| bad("edge index must be an integer"))?,
                c.as_u64()
                    .ok_or_else(|| bad("edge index must be an integer"))?,
            ),
            _ => return Err(bad("edge must be a [parent, child] pair")),
        };
        if p >= n || c >= n {
            return Err(OntologyError::UnknownNode);
        }
        b.add_edge(NodeId(p as u32), NodeId(c as u32))?;
    }
    b.build()
}

/// Parse a hierarchy from its JSON representation, re-validating every
/// rooted-DAG invariant.
pub fn from_json(json: &str) -> Result<Hierarchy, OntologyError> {
    let doc = osa_json::parse(json).map_err(|e| OntologyError::Serde(e.to_string()))?;
    from_value(&doc)
}

/// Write a hierarchy to a file as JSON.
pub fn save(h: &Hierarchy, path: &std::path::Path) -> Result<(), OntologyError> {
    std::fs::write(path, to_json(h))?;
    Ok(())
}

/// Load a hierarchy from a JSON file.
pub fn load(path: &std::path::Path) -> Result<Hierarchy, OntologyError> {
    from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node_with_terms("phone", &["phone", "cellphone"]);
        let s = b.add_node("screen");
        let bat = b.add_node_with_terms("battery", &["battery life"]);
        let res = b.add_node("resolution");
        b.add_edge(r, s).unwrap();
        b.add_edge(r, bat).unwrap();
        b.add_edge(s, res).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let h = sample();
        let h2 = from_json(&to_json(&h)).unwrap();
        assert_eq!(h.node_count(), h2.node_count());
        assert_eq!(h.edge_count(), h2.edge_count());
        assert_eq!(h.name(h.root()), h2.name(h2.root()));
        for n in h.nodes() {
            let m = h2.node_by_name(h.name(n)).unwrap();
            assert_eq!(h.terms(n), h2.terms(m));
            assert_eq!(h.depth(n), h2.depth(m));
        }
    }

    #[test]
    fn rejects_out_of_range_edges() {
        let json = r#"{ "nodes": [{"name":"r","terms":["r"]}], "edges": [[0, 7]] }"#;
        assert!(matches!(from_json(json), Err(OntologyError::UnknownNode)));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(from_json("{"), Err(OntologyError::Serde(_))));
    }

    #[test]
    fn file_roundtrip() {
        let h = sample();
        let dir = std::env::temp_dir().join("osa_ontology_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.json");
        save(&h, &path).unwrap();
        let h2 = load(&path).unwrap();
        assert_eq!(h.node_count(), h2.node_count());
        std::fs::remove_file(&path).ok();
    }
}
