//! The immutable rooted-DAG hierarchy and its query operations.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

use crate::{AncestorIndex, AncestorScratch, SegmentIndex};

/// Identifier of a concept node inside a [`Hierarchy`].
///
/// Node ids are dense indices (`0..node_count`), so they can be used to
/// index per-node side tables without hashing. They are only meaningful
/// with respect to the hierarchy that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a `NodeId` from a raw index.
    ///
    /// Useful when reading ids back from serialized experiment output;
    /// passing an out-of-range index to hierarchy methods panics.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable concept hierarchy: a DAG with a single root, where edges
/// point from general to specific concepts.
///
/// Construct one with [`HierarchyBuilder`](crate::HierarchyBuilder) or load
/// one with [`io::from_json`](crate::io::from_json). All query methods are
/// `O(reachable subgraph)` or better and never allocate more than their
/// output.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    pub(crate) names: Vec<String>,
    pub(crate) terms: Vec<Vec<String>>,
    /// Adjacency as CSR arenas (offsets + one flat entry array per
    /// direction) instead of per-node `Vec`s: construction allocates a
    /// constant number of arrays regardless of node count, and slice
    /// access stays `O(1)`.
    pub(crate) parent_off: Vec<u32>,
    pub(crate) parent_dat: Vec<NodeId>,
    pub(crate) child_off: Vec<u32>,
    pub(crate) child_dat: Vec<NodeId>,
    /// The original edge insertion sequence, retained verbatim from the
    /// builder. Replaying it through a fresh builder reproduces this
    /// hierarchy bit for bit (CSR row orders included) — the contract
    /// artifact serialization relies on.
    pub(crate) edge_list: Vec<(NodeId, NodeId)>,
    pub(crate) root: NodeId,
    /// Shortest directed distance from the root, per node.
    pub(crate) depth: Vec<u32>,
    pub(crate) by_name: HashMap<String, NodeId>,
    /// Lazily built ancestor-closure index (see [`AncestorIndex`]).
    /// Computed at most once per hierarchy; cloning clones the cache.
    pub(crate) ancestor_index: OnceLock<AncestorIndex>,
    /// Lazily built compressed segment index (see [`SegmentIndex`]).
    pub(crate) segments: OnceLock<SegmentIndex>,
}

impl Hierarchy {
    /// Number of concept nodes (including the root).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// The unique root concept.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Canonical name of a node.
    #[inline]
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// Surface terms (lexicon entries) attached to a node. Always contains
    /// at least the canonical name unless explicitly cleared by a builder.
    #[inline]
    pub fn terms(&self, n: NodeId) -> &[String] {
        &self.terms[n.index()]
    }

    /// Look a node up by its canonical name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Direct parents (more general concepts) of a node.
    #[inline]
    pub fn parents(&self, n: NodeId) -> &[NodeId] {
        let i = n.index();
        &self.parent_dat[self.parent_off[i] as usize..self.parent_off[i + 1] as usize]
    }

    /// Direct children (more specific concepts) of a node.
    #[inline]
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        let i = n.index();
        &self.child_dat[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// Shortest directed distance from the root to `n`, in edges.
    #[inline]
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// Maximum node depth (the `Δ` of the paper's Theorem 4).
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Iterate over all node ids in dense order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Is `a` an ancestor of `b`? Every node is an ancestor of itself
    /// (distance 0), matching the paper's coverage semantics where a pair
    /// covers pairs on the *same* concept.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.dist_up(b, a).is_some()
    }

    /// Shortest directed path length from `a` down to `b`, or `None` if
    /// `a` is not an ancestor of `b`. `dist_down(n, n) == Some(0)`.
    pub fn dist_down(&self, a: NodeId, b: NodeId) -> Option<u32> {
        self.dist_up(b, a)
    }

    /// Shortest path length walking *up* (child-to-parent) from `from` to
    /// `to`. Equivalent to `dist_down(to, from)`.
    pub fn dist_up(&self, from: NodeId, to: NodeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        // Upward BFS; the ancestor set is typically tiny, so a HashMap of
        // visited distances beats a dense array over the whole hierarchy.
        let mut seen: HashMap<NodeId, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        seen.insert(from, 0);
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            let d = seen[&n];
            for &p in self.parents(n) {
                if p == to {
                    return Some(d + 1);
                }
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(p) {
                    e.insert(d + 1);
                    queue.push_back(p);
                }
            }
        }
        None
    }

    /// All ancestors of `n` (including `n` itself at distance 0) together
    /// with the shortest directed path length from the ancestor *down* to
    /// `n`.
    ///
    /// This is the workhorse of the paper's Section 4.1 initialization
    /// phase: for each concept-sentiment pair we walk the ancestors of its
    /// concept and connect it to candidate pairs bucketed under each
    /// ancestor. Computed with an upward BFS, so distances are exact
    /// shortest paths even in multi-parent DAGs.
    pub fn ancestors_with_dist(&self, n: NodeId) -> Vec<(NodeId, u32)> {
        let mut seen: HashMap<NodeId, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        seen.insert(n, 0);
        queue.push_back(n);
        let mut out = vec![(n, 0)];
        while let Some(cur) = queue.pop_front() {
            let d = seen[&cur];
            for &p in self.parents(cur) {
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(p) {
                    e.insert(d + 1);
                    out.push((p, d + 1));
                    queue.push_back(p);
                }
            }
        }
        out
    }

    /// The precomputed ancestor closure of this hierarchy, built on first
    /// use and cached for the hierarchy's lifetime (thread-safe).
    ///
    /// Prefer this over repeated [`ancestors_with_dist`] calls: after the
    /// one-time topological sweep, each query is a slice borrow. This is
    /// what the `osa-core` coverage-graph builder walks per target pair.
    ///
    /// [`ancestors_with_dist`]: Self::ancestors_with_dist
    pub fn ancestor_index(&self) -> &AncestorIndex {
        self.ancestor_index
            .get_or_init(|| AncestorIndex::build(self))
    }

    /// The compressed segment index of this hierarchy, built on first use
    /// and cached for the hierarchy's lifetime (thread-safe). The
    /// memory-sublinear alternative to [`ancestor_index`]: `O(n)` state,
    /// `O(log n)` locate per query, no closure ever materialized.
    ///
    /// [`ancestor_index`]: Self::ancestor_index
    pub fn segment_index(&self) -> &SegmentIndex {
        self.segments.get_or_init(|| SegmentIndex::build(self))
    }

    /// Seed the segment-index cache with a prebuilt (e.g. deserialized)
    /// index, skipping the `O(n + e)` build on first query. A no-op when
    /// the cache is already populated. `index` must describe this very
    /// hierarchy — artifact loaders validate that via
    /// [`SegmentIndex::from_parts`] before calling.
    pub fn prime_segment_index(&self, index: SegmentIndex) {
        let _ = self.segments.set(index);
    }

    /// [`ancestors_with_dist`](Self::ancestors_with_dist) into
    /// caller-owned buffers: identical output (content *and* BFS
    /// discovery order), but no per-call allocation once `scratch` and
    /// `out` have warmed up. For callers that walk many nodes of the same
    /// hierarchy, [`ancestor_index`](Self::ancestor_index) is faster
    /// still.
    pub fn ancestors_with_dist_into(
        &self,
        n: NodeId,
        scratch: &mut AncestorScratch,
        out: &mut Vec<(NodeId, u32)>,
    ) {
        out.clear();
        let nodes = self.node_count();
        if scratch.dist.len() < nodes {
            scratch.dist.resize(nodes, u32::MAX);
        }
        scratch.queue.clear();
        scratch.touched.clear();
        scratch.dist[n.index()] = 0;
        scratch.touched.push(n.0);
        scratch.queue.push_back(n.0);
        out.push((n, 0));
        while let Some(cur) = scratch.queue.pop_front() {
            let d = scratch.dist[cur as usize];
            for &p in self.parents(NodeId(cur)) {
                if scratch.dist[p.index()] == u32::MAX {
                    scratch.dist[p.index()] = d + 1;
                    scratch.touched.push(p.0);
                    out.push((p, d + 1));
                    scratch.queue.push_back(p.0);
                }
            }
        }
        // Dense table reset via the touched list keeps the walk
        // O(ancestors), independent of the hierarchy size.
        for &t in &scratch.touched {
            scratch.dist[t as usize] = u32::MAX;
        }
    }

    /// All descendants of `n` (including `n` itself at distance 0) with
    /// shortest downward distances, via downward BFS.
    pub fn descendants_with_dist(&self, n: NodeId) -> Vec<(NodeId, u32)> {
        let mut seen: HashMap<NodeId, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        seen.insert(n, 0);
        queue.push_back(n);
        let mut out = vec![(n, 0)];
        while let Some(cur) = queue.pop_front() {
            let d = seen[&cur];
            for &c in self.children(cur) {
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(c) {
                    e.insert(d + 1);
                    out.push((c, d + 1));
                    queue.push_back(c);
                }
            }
        }
        out
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.child_dat.len()
    }

    /// The edges in original insertion order. Feeding these (with the
    /// nodes in id order) through a [`HierarchyBuilder`] reconstructs an
    /// identical hierarchy — identical adjacency row orders, hence
    /// identical topological order and downstream summaries. Serializers
    /// must persist this sequence rather than re-deriving edges from the
    /// adjacency.
    ///
    /// [`HierarchyBuilder`]: crate::HierarchyBuilder
    pub fn edge_list(&self) -> &[(NodeId, NodeId)] {
        &self.edge_list
    }

    /// A topological order of the nodes (parents before children).
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n)
            .map(|i| (self.parent_off[i + 1] - self.parent_off[i]) as usize)
            .collect();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for (i, &d) in indeg.iter().enumerate() {
            if d == 0 {
                queue.push_back(NodeId(i as u32));
            }
        }
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &c in self.children(u) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push_back(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "hierarchy invariant: acyclic");
        order
    }

    /// Extract the sub-hierarchy rooted at `new_root`: the induced DAG on
    /// `new_root` and all its descendants, as a fresh [`Hierarchy`]
    /// (names and terms preserved). Useful for per-category summaries
    /// ("summarize only the battery opinions").
    pub fn subgraph(&self, new_root: NodeId) -> Hierarchy {
        let keep: Vec<NodeId> = self
            .descendants_with_dist(new_root)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let mut b = crate::HierarchyBuilder::new();
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        for &n in &keep {
            let id = b.add_node_with_terms(self.name(n), self.terms(n));
            map.insert(n, id);
        }
        let mut seen_children: Vec<NodeId> = Vec::new();
        for &n in &keep {
            // All children of a kept node are descendants of new_root. A
            // malformed children list may repeat an entry; the induced
            // DAG keeps a single edge rather than tripping the builder's
            // duplicate-edge validation.
            seen_children.clear();
            for &c in self.children(n) {
                if seen_children.contains(&c) {
                    continue;
                }
                seen_children.push(c);
                b.add_edge(map[&n], map[&c]).expect("induced edge is fresh");
            }
        }
        b.build()
            .expect("induced subgraph keeps the rooted-DAG invariants")
    }

    /// Render an ASCII tree rooted at the hierarchy root (multi-parent
    /// nodes are printed under each parent; used by the Fig. 3 harness).
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.render_rec(self.root, 0, &mut out);
        out
    }

    fn render_rec(&self, n: NodeId, indent: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "{}{}", "  ".repeat(indent), self.name(n));
        let mut kids: Vec<NodeId> = self.children(n).to_vec();
        kids.sort_by(|a, b| self.name(*a).cmp(self.name(*b)));
        for c in kids {
            self.render_rec(c, indent + 1, out);
        }
    }

    /// Test-only: dent the adjacency by listing `parent -> child` a second
    /// time, re-encoding both CSR arenas — the builder rejects duplicate
    /// edges, so regression tests for malformed listings (the PR 3
    /// `subgraph` class) must inject them in-crate.
    #[cfg(test)]
    pub(crate) fn inject_duplicate_edge(&mut self, parent: NodeId, child: NodeId) {
        fn push_row(off: &mut [u32], dat: &mut Vec<NodeId>, at: NodeId, extra: NodeId) {
            let end = off[at.index() + 1] as usize;
            dat.insert(end, extra);
            for o in off.iter_mut().skip(at.index() + 1) {
                *o += 1;
            }
        }
        push_row(&mut self.child_off, &mut self.child_dat, parent, child);
        push_row(&mut self.parent_off, &mut self.parent_dat, child, parent);
        self.edge_list.push((parent, child));
        self.ancestor_index = OnceLock::new();
        self.segments = OnceLock::new();
    }
}

#[cfg(test)]
mod tests {
    use crate::HierarchyBuilder;

    /// A small diamond:        r
    ///                        / \
    ///                       a   b
    ///                        \ / \
    ///                         c   d
    fn diamond() -> (crate::Hierarchy, Vec<crate::NodeId>) {
        let mut b = HierarchyBuilder::new();
        let r = b.add_node("r");
        let a = b.add_node("a");
        let bb = b.add_node("b");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_edge(r, a).unwrap();
        b.add_edge(r, bb).unwrap();
        b.add_edge(a, c).unwrap();
        b.add_edge(bb, c).unwrap();
        b.add_edge(bb, d).unwrap();
        (b.build().unwrap(), vec![r, a, bb, c, d])
    }

    #[test]
    fn self_is_ancestor_at_distance_zero() {
        let (h, ids) = diamond();
        for &n in &ids {
            assert!(h.is_ancestor(n, n));
            assert_eq!(h.dist_down(n, n), Some(0));
        }
    }

    #[test]
    fn diamond_distances() {
        let (h, ids) = diamond();
        let (r, a, b, c, d) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        assert_eq!(h.dist_down(r, c), Some(2));
        assert_eq!(h.dist_down(a, c), Some(1));
        assert_eq!(h.dist_down(b, c), Some(1));
        assert_eq!(h.dist_down(a, d), None);
        assert_eq!(h.dist_down(c, r), None, "distance is directed");
        assert_eq!(h.depth(d), 2);
        assert_eq!(h.depth(c), 2);
        assert_eq!(h.max_depth(), 2);
    }

    #[test]
    fn ancestors_with_dist_takes_shortest_path() {
        // r -> a -> b -> c  and r -> c directly: shortest r..c distance is 1.
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a = bl.add_node("a");
        let b = bl.add_node("b");
        let c = bl.add_node("c");
        bl.add_edge(r, a).unwrap();
        bl.add_edge(a, b).unwrap();
        bl.add_edge(b, c).unwrap();
        bl.add_edge(r, c).unwrap();
        let h = bl.build().unwrap();
        let anc = h.ancestors_with_dist(c);
        let dist_of = |n| anc.iter().find(|(m, _)| *m == n).map(|&(_, d)| d);
        assert_eq!(dist_of(r), Some(1));
        assert_eq!(dist_of(b), Some(1));
        assert_eq!(dist_of(a), Some(2));
        assert_eq!(dist_of(c), Some(0));
        assert_eq!(h.depth(c), 1);
    }

    #[test]
    fn descendants_mirror_ancestors() {
        let (h, _) = diamond();
        for n in h.nodes() {
            for (m, d) in h.descendants_with_dist(n) {
                assert_eq!(h.dist_down(n, m), Some(d));
                assert!(h
                    .ancestors_with_dist(m)
                    .iter()
                    .any(|&(x, dd)| x == n && dd == d));
            }
        }
    }

    #[test]
    fn topological_order_is_consistent() {
        let (h, _) = diamond();
        let order = h.topological_order();
        assert_eq!(order.len(), h.node_count());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in h.nodes() {
            for &c in h.children(n) {
                assert!(pos[&n] < pos[&c]);
            }
        }
    }

    #[test]
    fn name_lookup_roundtrip() {
        let (h, ids) = diamond();
        for &n in &ids {
            assert_eq!(h.node_by_name(h.name(n)), Some(n));
        }
        assert_eq!(h.node_by_name("nope"), None);
    }

    #[test]
    fn edge_count_counts_directed_edges() {
        let (h, _) = diamond();
        assert_eq!(h.edge_count(), 5);
    }

    #[test]
    fn subgraph_keeps_descendants_and_structure() {
        let (h, ids) = diamond();
        let b = ids[2];
        let sub = h.subgraph(b);
        assert_eq!(sub.node_count(), 3); // b, c, d
        assert_eq!(sub.name(sub.root()), "b");
        let c2 = sub.node_by_name("c").unwrap();
        let d2 = sub.node_by_name("d").unwrap();
        assert_eq!(sub.depth(c2), 1);
        assert_eq!(sub.depth(d2), 1);
        assert!(sub.node_by_name("a").is_none());
    }

    #[test]
    fn subgraph_of_root_is_whole_hierarchy() {
        let (h, _) = diamond();
        let sub = h.subgraph(h.root());
        assert_eq!(sub.node_count(), h.node_count());
        assert_eq!(sub.edge_count(), h.edge_count());
    }

    #[test]
    fn subgraph_dedupes_duplicate_child_listings() {
        // The builder rejects duplicate edges, so dent a valid hierarchy
        // in-crate: list r -> a twice. `subgraph` used to panic on the
        // second induced copy ("induced edge is fresh").
        let mut bl = HierarchyBuilder::new();
        let r = bl.add_node("r");
        let a = bl.add_node("a");
        let c = bl.add_node("c");
        bl.add_edge(r, a).unwrap();
        bl.add_edge(a, c).unwrap();
        let mut h = bl.build().unwrap();
        h.inject_duplicate_edge(r, a);

        let sub = h.subgraph(r);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2, "duplicate listing induces one edge");
        let sub_a = sub.subgraph(sub.node_by_name("a").unwrap());
        assert_eq!(sub_a.node_count(), 2);
    }

    #[test]
    fn subgraph_of_leaf_is_singleton() {
        let (h, ids) = diamond();
        let sub = h.subgraph(ids[4]);
        assert_eq!(sub.node_count(), 1);
        assert_eq!(sub.name(sub.root()), "d");
    }

    #[test]
    fn render_ascii_contains_all_names() {
        let (h, ids) = diamond();
        let s = h.render_ascii();
        for &n in &ids {
            assert!(s.contains(h.name(n)));
        }
    }
}
