//! End-to-end tests of the `osars` CLI binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn osars(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_osars"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_corpus(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("osars_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn generate(path: &Path) {
    let out = osars(&[
        "generate",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--seed",
        "7",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn help_prints_usage() {
    let out = osars(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("summarize"));
}

#[test]
fn no_args_prints_usage() {
    let out = osars(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = osars(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_stats_hierarchy_roundtrip() {
    let path = tmp_corpus("roundtrip.json");
    generate(&path);

    let out = osars(&["stats", "--corpus", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("#Items"), "{text}");
    assert!(text.contains("30"), "phones_small has 30 items: {text}");

    let out = osars(&["hierarchy", "--corpus", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phone"));
    assert!(text.contains("battery life"));
}

#[test]
fn summarize_sentences_with_greedy() {
    let path = tmp_corpus("summarize.json");
    generate(&path);
    let out = osars(&[
        "summarize",
        "--corpus",
        path.to_str().unwrap(),
        "--k",
        "3",
        "--algorithm",
        "greedy",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("greedy selected 3"), "{text}");
    assert_eq!(text.matches("  • ").count(), 3, "{text}");
}

#[test]
fn summarize_pairs_with_local_search() {
    let path = tmp_corpus("pairs.json");
    generate(&path);
    let out = osars(&[
        "summarize",
        "--corpus",
        path.to_str().unwrap(),
        "--granularity",
        "pairs",
        "--algorithm",
        "local-search",
        "--k",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("local-search selected 2"), "{text}");
    assert!(text.contains("= +") || text.contains("= -"), "{text}");
}

#[test]
fn evaluate_compares_methods() {
    let path = tmp_corpus("evaluate.json");
    generate(&path);
    let out = osars(&[
        "evaluate",
        "--corpus",
        path.to_str().unwrap(),
        "--items",
        "2",
        "--k",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for method in [
        "greedy (ours)",
        "most-popular",
        "textrank",
        "lexrank",
        "lsa",
    ] {
        assert!(text.contains(method), "missing {method}: {text}");
    }
}

#[test]
fn missing_required_flag_is_reported() {
    let out = osars(&["generate", "--domain", "phones"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out is required"));
}

#[test]
fn bad_flag_value_is_reported() {
    let path = tmp_corpus("badflag.json");
    generate(&path);
    let out = osars(&[
        "summarize",
        "--corpus",
        path.to_str().unwrap(),
        "--k",
        "banana",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}

#[test]
fn focus_restricts_to_subtree() {
    let path = tmp_corpus("focus.json");
    generate(&path);
    let out = osars(&[
        "summarize",
        "--corpus",
        path.to_str().unwrap(),
        "--focus",
        "battery",
        "--k",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("focused on 'battery'"), "{text}");

    // Unknown concepts are rejected.
    let out = osars(&[
        "summarize",
        "--corpus",
        path.to_str().unwrap(),
        "--focus",
        "warp-drive",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown concept"));
}

#[test]
fn explain_prints_coverage_shares() {
    let path = tmp_corpus("explain.json");
    generate(&path);
    let out = osars(&[
        "summarize",
        "--corpus",
        path.to_str().unwrap(),
        "--k",
        "2",
        "--explain",
        "true",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serves"), "{text}");
    assert!(text.contains("root serves the remaining"), "{text}");
}

// --- observability ---------------------------------------------------------

/// Counter lines of a metrics JSONL file, excluding the schedule-
/// dependent `runtime.*` counters (all but `runtime.items.completed`).
fn invariant_counter_lines(jsonl: &str) -> Vec<String> {
    jsonl
        .lines()
        .filter(|l| l.contains("\"t\":\"counter\""))
        .filter(|l| {
            !l.contains("\"name\":\"runtime.") || l.contains("\"name\":\"runtime.items.completed\"")
        })
        .map(str::to_owned)
        .collect()
}

#[test]
fn help_lists_observability_flags() {
    let out = osars(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Pin the flag inventory: a removed or renamed flag must fail here.
    for needle in [
        "--metrics FILE",
        "--trace",
        "--trace-out FILE",
        "--slow-ms N",
        "/debug/traces",
        "check-metrics",
        "--domain",
        "--jobs N",
        "METRICS:",
        "--graph-impl indexed|naive",
        "--extract-impl interned|naive",
        "EXTRACT:",
        "small|full|large",
    ] {
        assert!(text.contains(needle), "help is missing '{needle}':\n{text}");
    }
}

#[test]
fn graph_impls_produce_byte_identical_stdout() {
    // The indexed/parallel builder is a drop-in for the naive oracle:
    // whole-corpus summaries must match byte-for-byte, for any --jobs.
    let run = |graph_impl: &str, jobs: &str| {
        let out = osars(&[
            "summarize",
            "--domain",
            "phones",
            "--scale",
            "small",
            "--item",
            "all",
            "--granularity",
            "pairs",
            "--graph-impl",
            graph_impl,
            "--jobs",
            jobs,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let naive = run("naive", "1");
    assert_eq!(naive, run("indexed", "1"), "indexed != naive");
    assert_eq!(naive, run("indexed", "8"), "indexed(jobs=8) != naive");
}

#[test]
fn extract_impls_produce_byte_identical_stdout() {
    // The interned automaton pipeline is a drop-in for the naive
    // trie-walk oracle on both summarize paths: whole-corpus batch
    // summaries for any --jobs, and the single-item path.
    let batch = |extract_impl: &str, jobs: &str| {
        let out = osars(&[
            "summarize",
            "--domain",
            "phones",
            "--scale",
            "small",
            "--item",
            "all",
            "--extract-impl",
            extract_impl,
            "--jobs",
            jobs,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let naive = batch("naive", "1");
    assert_eq!(naive, batch("interned", "1"), "interned != naive");
    assert_eq!(naive, batch("interned", "8"), "interned(jobs=8) != naive");

    // The single-item path prints the solver's wall-clock µs on the
    // header line; mask that (it varies run to run, for any impl) and
    // require everything else — candidate counts, costs, sentences — to
    // match exactly.
    let single = |extract_impl: &str| {
        let out = osars(&[
            "summarize",
            "--domain",
            "doctors",
            "--scale",
            "small",
            "--item",
            "0",
            "--extract-impl",
            extract_impl,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        text.lines()
            .map(|l| match (l.find(" in "), l.find("µs;")) {
                (Some(a), Some(b)) if a < b => {
                    format!("{} in _µs;{}", &l[..a], &l[b + "µs;".len()..])
                }
                _ => l.to_owned(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        single("naive"),
        single("interned"),
        "single-item interned != naive"
    );
}

#[test]
fn unknown_extract_impl_is_rejected() {
    let out = osars(&[
        "summarize",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--extract-impl",
        "telepathic",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown extract impl"));
}

#[test]
fn extract_counters_are_reported_and_jobs_invariant() {
    // The interned engine's counters (intern table size, automaton
    // states, stem-cache hits/misses) are pure functions of corpus +
    // hierarchy, so their sums must not depend on --jobs.
    let m1 = tmp_corpus("extract1_metrics.jsonl");
    let m8 = tmp_corpus("extract8_metrics.jsonl");
    for (jobs, path) in [("1", &m1), ("8", &m8)] {
        let out = osars(&[
            "summarize",
            "--domain",
            "phones",
            "--scale",
            "small",
            "--item",
            "all",
            "--jobs",
            jobs,
            "--metrics",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let j1 = std::fs::read_to_string(&m1).unwrap();
    let j8 = std::fs::read_to_string(&m8).unwrap();
    for counter in [
        "extract.intern.entries",
        "extract.automaton.states",
        "extract.stem_cache.hits",
        "extract.stem_cache.misses",
    ] {
        let line_of = |jsonl: &str| {
            jsonl
                .lines()
                .find(|l| {
                    l.contains("\"t\":\"counter\"")
                        && l.contains(&format!("\"name\":\"{counter}\""))
                })
                .map(str::to_owned)
        };
        let a = line_of(&j1);
        assert!(a.is_some(), "no '{counter}' counter in:\n{j1}");
        assert_eq!(a, line_of(&j8), "'{counter}' depends on --jobs");
    }
}

#[test]
fn unknown_graph_impl_is_rejected() {
    let out = osars(&[
        "summarize",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--graph-impl",
        "quantum",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown graph impl"));
}

#[test]
fn evaluate_metrics_emits_valid_jsonl_with_spans() {
    let metrics = tmp_corpus("eval_metrics.jsonl");
    let out = osars(&[
        "evaluate",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--items",
        "1",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(&metrics).unwrap();
    for span in ["extract", "graph.build", "solve.greedy"] {
        assert!(
            jsonl.lines().any(
                |l| l.contains("\"t\":\"span\"") && l.contains(&format!("\"name\":\"{span}\""))
            ),
            "no '{span}' span in:\n{jsonl}"
        );
    }
    // The file passes the binary's own validator.
    let check = osars(&["check-metrics", "--metrics", metrics.to_str().unwrap()]);
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let stdout = String::from_utf8_lossy(&check.stdout);
    assert!(stdout.contains("ok:"), "{stdout}");
    // The validator re-renders the snapshot to Prometheus text and
    // cross-checks the quantile/count/sum lines against the records.
    assert!(stdout.contains("prometheus round-trip"), "{stdout}");
}

#[test]
fn trace_out_batch_writes_chrome_json_without_perturbing_stdout() {
    let trace = tmp_corpus("batch_trace.json");
    let base = [
        "summarize",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--item",
        "all",
        "--jobs",
        "2",
    ];
    let plain = osars(&base);
    assert!(plain.status.success());
    let mut args = base.to_vec();
    args.extend_from_slice(&["--trace-out", trace.to_str().unwrap()]);
    let traced = osars(&args);
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    assert_eq!(
        plain.stdout, traced.stdout,
        "--trace-out must not perturb stdout"
    );
    assert!(
        String::from_utf8_lossy(&traced.stderr).contains("chrome trace_event"),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );

    // The export is valid Chrome trace_event JSON: one complete event
    // per span, with a root per item on its own track (tid).
    let text = std::fs::read_to_string(&trace).unwrap();
    let events = osars::json::parse(&text).expect("valid JSON");
    let events = events.as_array().expect("trace_event array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    let roots = names.iter().filter(|n| **n == "summarize_one").count();
    assert_eq!(roots, 30, "one root span per phones-small item");
    for stage in ["extract", "graph.build", "solve.greedy"] {
        assert!(names.contains(&stage), "missing {stage} events");
    }
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(ev.get("ts").and_then(osars::json::Value::as_f64).is_some());
        assert!(ev.get("dur").and_then(osars::json::Value::as_f64).is_some());
    }
}

#[test]
fn trace_out_single_item_writes_one_tree() {
    let trace = tmp_corpus("single_trace.json");
    let base = [
        "summarize",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--item",
        "0",
    ];
    let plain = osars(&base);
    assert!(plain.status.success());
    let mut args = base.to_vec();
    args.extend_from_slice(&["--trace-out", trace.to_str().unwrap()]);
    let traced = osars(&args);
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );
    // The single-item header embeds a wall time ("in 219µs") that varies
    // run to run with or without tracing; blank it before comparing.
    let normalize = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .map(|l| match (l.find(" in "), l.find("µs;")) {
                (Some(a), Some(b)) if a < b => {
                    format!("{} in Xµs;{}", &l[..a], &l[b + "µs;".len()..])
                }
                _ => l.to_owned(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        normalize(&plain.stdout),
        normalize(&traced.stdout),
        "--trace-out must not perturb stdout (timings aside)"
    );

    let text = std::fs::read_to_string(&trace).unwrap();
    let events = osars::json::parse(&text).expect("valid JSON");
    let events = events.as_array().expect("trace_event array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    for required in ["summarize", "extract", "graph.build", "solve.greedy"] {
        assert!(names.contains(&required), "missing {required} in {names:?}");
    }
}

#[test]
fn check_metrics_rejects_invalid_files() {
    let bad = tmp_corpus("bad_metrics.jsonl");
    std::fs::write(&bad, "this is not json\n").unwrap();
    let out = osars(&["check-metrics", "--metrics", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid JSON"));

    let missing_name = tmp_corpus("nameless_metrics.jsonl");
    std::fs::write(&missing_name, "{\"t\":\"span\",\"us\":1.5}\n").unwrap();
    let out = osars(&["check-metrics", "--metrics", missing_name.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing string field 'name'"));
}

#[test]
fn summarize_stdout_is_byte_identical_with_metrics_enabled() {
    let metrics = tmp_corpus("batch_metrics.jsonl");
    let plain = osars(&[
        "summarize",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--item",
        "all",
        "--jobs",
        "2",
    ]);
    assert!(plain.status.success());
    let observed = osars(&[
        "summarize",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--item",
        "all",
        "--jobs",
        "2",
        "--trace",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(observed.status.success());
    assert_eq!(
        plain.stdout, observed.stdout,
        "metrics/trace must not perturb stdout"
    );
    // --trace renders the per-stage table and span mirror on stderr only.
    let err = String::from_utf8_lossy(&observed.stderr);
    assert!(err.contains("[osa-obs]"), "{err}");
    assert!(err.contains("counter/gauge"), "{err}");
}

#[test]
fn counter_totals_are_jobs_invariant_via_cli() {
    let m1 = tmp_corpus("jobs1_metrics.jsonl");
    let m8 = tmp_corpus("jobs8_metrics.jsonl");
    for (jobs, path) in [("1", &m1), ("8", &m8)] {
        let out = osars(&[
            "summarize",
            "--domain",
            "phones",
            "--scale",
            "small",
            "--item",
            "all",
            "--jobs",
            jobs,
            "--metrics",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let c1 = invariant_counter_lines(&std::fs::read_to_string(&m1).unwrap());
    let c8 = invariant_counter_lines(&std::fs::read_to_string(&m8).unwrap());
    assert!(!c1.is_empty(), "expected counter lines in the snapshot");
    assert_eq!(c1, c8, "deterministic counters must not depend on --jobs");
}

#[test]
fn trace_is_a_bare_switch() {
    // `--trace` takes no value: flags after it must still parse.
    let out = osars(&[
        "summarize",
        "--trace",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--k",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[osa-obs] extract"), "{err}");
}

#[test]
fn evaluate_stdout_is_jobs_invariant() {
    // The evaluation table aggregates per-item errors in item order, so
    // the worker count must never leak into stdout.
    let run = |jobs: &str| {
        let out = osars(&[
            "evaluate", "--domain", "phones", "--scale", "small", "--items", "3", "--jobs", jobs,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    assert_eq!(serial, run("4"), "evaluate stdout depends on --jobs");
}

#[test]
fn check_subcommand_is_deterministic_and_passes() {
    let run = || {
        let out = osars(&["check", "--seed", "11", "--cases", "3"]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let text = String::from_utf8_lossy(&first);
    assert!(
        text.contains("check: seed 11, 3 cases, faults off"),
        "{text}"
    );
    assert!(text.contains("summary: 3/3 cases passed"), "{text}");
    // Same seed ⇒ byte-identical report.
    assert_eq!(first, run(), "check report is not deterministic");
}

#[test]
fn check_faults_is_a_bare_switch() {
    let out = osars(&["check", "--faults", "--seed", "11", "--cases", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("faults on"), "{text}");
    assert!(text.contains("summary: 2/2 cases passed"), "{text}");
}

/// `osars check --edits` runs the incremental-vs-rebuild differential
/// oracle (incremental artifact updates must be byte-identical to a
/// from-scratch rebuild) and stays byte-deterministic across runs.
#[test]
fn check_edits_is_deterministic_and_passes() {
    let run = || {
        let out = osars(&["check", "--edits", "--seed", "9", "--cases", "2"]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let text = String::from_utf8_lossy(&first);
    assert!(text.contains("edits on"), "{text}");
    assert!(text.contains("summary: 2/2 cases passed"), "{text}");
    assert_eq!(first, run(), "edits report is not deterministic");
}

/// `osars bench-incremental` asserts incremental == rebuild byte
/// identity on every update and writes the latency report.
#[test]
fn bench_incremental_writes_report_and_asserts_equality() {
    let out_path = tmp_corpus("bench_incremental.json");
    let out = osars(&[
        "bench-incremental",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--updates",
        "5",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&out_path).expect("report written");
    let doc = osars::json::parse(&report).expect("valid JSON report");
    for field in [
        "updates",
        "incremental_p50_us",
        "rebuild_p50_us",
        "speedup_p50",
    ] {
        assert!(
            doc.get(field)
                .and_then(osars::json::Value::as_f64)
                .is_some(),
            "missing {field}: {report}"
        );
    }
    assert_eq!(
        doc.get("updates").and_then(osars::json::Value::as_u64),
        Some(5)
    );
}

#[test]
fn domain_fallback_requires_corpus_or_domain() {
    let out = osars(&["summarize"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--corpus (or --domain)"));
}

// --- hardened error paths ---------------------------------------------------

#[test]
fn non_finite_or_negative_eps_is_rejected() {
    // `f64::from_str` happily parses NaN/inf/negatives; the CLI must
    // not hand those to the pipeline on any eps-taking subcommand.
    for cmd in ["summarize", "evaluate", "serve"] {
        for eps in ["nan", "inf", "-inf", "-0.5", "NaN"] {
            let out = osars(&[cmd, "--domain", "phones", "--scale", "small", "--eps", eps]);
            assert!(!out.status.success(), "{cmd} accepted --eps {eps}");
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(
                err.contains("--eps must be a finite non-negative number"),
                "{cmd} --eps {eps}: {err}"
            );
        }
    }
}

#[test]
fn eps_parse_failure_is_a_clean_error() {
    let out = osars(&[
        "summarize",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--eps",
        "banana",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--eps"), "{err}");
    assert!(err.contains("cannot parse"), "{err}");
}

#[test]
fn missing_corpus_file_is_a_clean_error() {
    let out = osars(&["summarize", "--corpus", "/nonexistent/corpus.json"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("loading '/nonexistent/corpus.json'"), "{err}");
}

#[test]
fn loadgen_requires_addr_and_fails_cleanly_when_unreachable() {
    let out = osars(&["loadgen"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr is required"));

    // Nothing listens on this port: a transport failure must be a clean
    // nonzero exit, not a panic.
    let out = osars(&["loadgen", "--addr", "127.0.0.1:1", "--duration-secs", "1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("load-generating against '127.0.0.1:1'"),
        "{err}"
    );
}

#[test]
fn serve_rejects_bad_configuration_before_binding() {
    let out = osars(&[
        "serve",
        "--domain",
        "phones",
        "--scale",
        "small",
        "--algorithm",
        "quantum",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm 'quantum'"));

    let out = osars(&["serve"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--corpus (or --domain)"));
}

#[test]
fn help_lists_serve_and_loadgen() {
    let out = osars(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "osars serve",
        "osars loadgen",
        "SERVE:",
        "LOADGEN:",
        "--queue-depth N",
        "--deadline-ms N",
        "--panic-every N",
        "BENCH_serve.json",
    ] {
        assert!(text.contains(needle), "help is missing '{needle}':\n{text}");
    }
}
