//! Template-based synthetic review corpora with planted ground truth.

use osa_core::Pair;
use osa_ontology::{Hierarchy, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of a synthetic corpus, calibrated per dataset to the
/// paper's Table 1.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of items (doctors / phones).
    pub items: usize,
    /// Minimum reviews per item.
    pub min_reviews: usize,
    /// Maximum reviews per item.
    pub max_reviews: usize,
    /// Target mean reviews per item (exponential tail above the minimum).
    pub mean_reviews: f64,
    /// Target mean sentences per review (≥ 1).
    pub mean_sentences: f64,
    /// Probability that a sentence mentions an aspect (vs. filler text).
    pub aspect_sentence_prob: f64,
}

impl CorpusConfig {
    /// Table 1, doctor reviews: 1000 doctors, 68,686 reviews (mean 68.7,
    /// min 43, max 354), 4.87 sentences per review.
    pub fn doctors_full() -> Self {
        CorpusConfig {
            items: 1000,
            min_reviews: 43,
            max_reviews: 354,
            mean_reviews: 68.7,
            mean_sentences: 4.87,
            aspect_sentence_prob: 0.72,
        }
    }

    /// Table 1, cell-phone reviews: 60 phones, 33,578 reviews (mean
    /// 559.6, min 102, max 3200), 3.81 sentences per review.
    pub fn phones_full() -> Self {
        CorpusConfig {
            items: 60,
            min_reviews: 102,
            max_reviews: 3200,
            mean_reviews: 559.6,
            mean_sentences: 3.81,
            aspect_sentence_prob: 0.72,
        }
    }

    /// A laptop-scale doctor corpus for the per-item algorithm benchmarks
    /// (same per-review shape, fewer items/reviews).
    pub fn doctors_small() -> Self {
        CorpusConfig {
            items: 40,
            min_reviews: 30,
            max_reviews: 90,
            mean_reviews: 50.0,
            mean_sentences: 4.87,
            aspect_sentence_prob: 0.72,
        }
    }

    /// A laptop-scale phone corpus for the qualitative (Fig. 6)
    /// experiments.
    pub fn phones_small() -> Self {
        CorpusConfig {
            items: 30,
            min_reviews: 40,
            max_reviews: 120,
            mean_reviews: 70.0,
            mean_sentences: 3.81,
            aspect_sentence_prob: 0.72,
        }
    }

    /// A build-stage stress corpus (`--scale large`): review-heavy items
    /// sized so the coverage-graph construction, not extraction or the
    /// solver, dominates — used to benchmark the indexed builder.
    pub fn doctors_large() -> Self {
        CorpusConfig {
            items: 120,
            min_reviews: 60,
            max_reviews: 240,
            mean_reviews: 110.0,
            mean_sentences: 4.87,
            aspect_sentence_prob: 0.72,
        }
    }

    /// The phone-domain `--scale large` counterpart of
    /// [`doctors_large`](Self::doctors_large): fewer items, denser
    /// per-item review sets.
    pub fn phones_large() -> Self {
        CorpusConfig {
            items: 40,
            min_reviews: 80,
            max_reviews: 400,
            mean_reviews: 150.0,
            mean_sentences: 3.81,
            aspect_sentence_prob: 0.72,
        }
    }
}

/// One synthetic review.
#[derive(Debug, Clone)]
pub struct Review {
    /// The review text (English sentences the full pipeline can process).
    pub text: String,
    /// Ground truth: the concept-sentiment pairs planted into the text,
    /// one per aspect mention.
    pub planted: Vec<Pair>,
}

/// One item (a doctor or a phone) with its reviews.
#[derive(Debug, Clone)]
pub struct Item {
    /// Display name.
    pub name: String,
    /// The item's reviews.
    pub reviews: Vec<Review>,
}

/// A full synthetic corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Corpus label ("doctor reviews" / "cell phone reviews").
    pub name: String,
    /// The concept hierarchy reviews are written against.
    pub hierarchy: Hierarchy,
    /// The items.
    pub items: Vec<Item>,
}

/// Adjective banks per planted sentiment level. Every word sits in the
/// `osa-text` lexicon at exactly this strength, so the extraction
/// pipeline recovers the planted sentiment (± sentence-averaging noise).
const LEVELS: &[(f64, &[&str])] = &[
    (1.0, &["amazing", "fantastic", "perfect", "outstanding"]),
    (0.75, &["great", "impressive", "terrific"]),
    (0.5, &["good", "nice", "solid", "reliable"]),
    (0.25, &["decent", "fine", "acceptable"]),
    (-0.25, &["mediocre", "underwhelming", "lacking"]),
    (-0.5, &["bad", "poor", "disappointing"]),
    (-0.75, &["terrible", "awful", "horrible"]),
    (-1.0, &["atrocious", "abysmal", "appalling"]),
];

const FILLERS: &[&str] = &[
    "I visited in march",
    "This was my second time here",
    "My cousin told me about this",
    "I have been coming here for two years",
    "I ordered it online last month",
    "It arrived on a tuesday",
    "I read many reviews before deciding",
    "I will update this review later",
];

fn quantize(target: f64) -> (f64, usize) {
    let mut best = 0usize;
    let mut gap = f64::INFINITY;
    for (i, &(level, _)) in LEVELS.iter().enumerate() {
        let g = (level - target).abs();
        if g < gap {
            gap = g;
            best = i;
        }
    }
    (LEVELS[best].0, best)
}

impl Corpus {
    /// Generate a corpus over `hierarchy` with the given shape, fully
    /// deterministic in `seed`.
    ///
    /// Every item gets a latent per-aspect quality profile; sentences
    /// sample around it, so summaries have real structure to find
    /// (consistent praise for some aspects, complaints about others).
    ///
    /// The aspect pool is every non-root concept — the right default for
    /// the curated hierarchies. For SNOMED-scale ontologies use
    /// [`generate_over_aspects`](Self::generate_over_aspects) with a
    /// sampled pool: per-item profiles are sized by the pool, and a
    /// 300k-wide profile per item would dwarf the reviews themselves.
    pub fn generate(name: &str, hierarchy: Hierarchy, cfg: &CorpusConfig, seed: u64) -> Corpus {
        // Aspect pool: all non-root concepts.
        let aspects: Vec<NodeId> = hierarchy
            .nodes()
            .filter(|&n| n != hierarchy.root())
            .collect();
        Self::generate_over_aspects(name, hierarchy, aspects, cfg, seed)
    }

    /// [`generate`](Self::generate) with an explicit aspect pool.
    ///
    /// The RNG draw sequence depends only on `seed` and the pool, so
    /// `generate` (which passes all non-root concepts) produces exactly
    /// the corpora it always did.
    pub fn generate_over_aspects(
        name: &str,
        hierarchy: Hierarchy,
        aspects: Vec<NodeId>,
        cfg: &CorpusConfig,
        seed: u64,
    ) -> Corpus {
        assert!(cfg.items > 0, "corpus needs at least one item");
        assert!(cfg.min_reviews >= 1 && cfg.min_reviews <= cfg.max_reviews);
        let mut rng = StdRng::seed_from_u64(seed);
        assert!(!aspects.is_empty(), "hierarchy must have non-root concepts");

        let mut items = Vec::with_capacity(cfg.items);
        for idx in 0..cfg.items {
            // Latent quality per aspect (positively skewed like real
            // reviews) and popularity weight per aspect.
            let quality: Vec<f64> = aspects
                .iter()
                .map(|_| (rng.gen_range(-1.0..1.0f64) * 0.6 + 0.25).clamp(-1.0, 1.0))
                .collect();
            let weight: Vec<f64> = aspects.iter().map(|_| -rng.gen::<f64>().ln()).collect();
            let wsum: f64 = weight.iter().sum();

            let n_reviews =
                sample_count(&mut rng, cfg.min_reviews, cfg.max_reviews, cfg.mean_reviews);
            let mut reviews = Vec::with_capacity(n_reviews);
            for _ in 0..n_reviews {
                reviews.push(generate_review(
                    &mut rng, &hierarchy, &aspects, &quality, &weight, wsum, cfg,
                ));
            }
            items.push(Item {
                name: format!("{name} item {idx}"),
                reviews,
            });
        }

        Corpus {
            name: name.to_owned(),
            hierarchy,
            items,
        }
    }

    /// Convenience: the doctor corpus on [`doctor_hierarchy`](crate::doctor_hierarchy).
    pub fn doctors(cfg: &CorpusConfig, seed: u64) -> Corpus {
        Corpus::generate("doctor reviews", crate::doctor_hierarchy(), cfg, seed)
    }

    /// Convenience: the phone corpus on [`phone_hierarchy`](crate::phone_hierarchy).
    pub fn phones(cfg: &CorpusConfig, seed: u64) -> Corpus {
        Corpus::generate("cell phone reviews", crate::phone_hierarchy(), cfg, seed)
    }

    /// Total number of reviews across items.
    pub fn total_reviews(&self) -> usize {
        self.items.iter().map(|i| i.reviews.len()).sum()
    }

    /// Iterate items with their stable indices — the identity the batch
    /// engine keys per-item work (and per-item RNG seeds) on.
    pub fn indexed_items(&self) -> impl ExactSizeIterator<Item = (usize, &Item)> {
        self.items.iter().enumerate()
    }
}

/// `min + Exp(mean − min)`, clamped to `max`.
fn sample_count(rng: &mut StdRng, min: usize, max: usize, mean: f64) -> usize {
    let tail = (mean - min as f64).max(0.0);
    let draw = if tail > 0.0 {
        -rng.gen::<f64>().max(1e-12).ln() * tail
    } else {
        0.0
    };
    ((min as f64 + draw).round() as usize).clamp(min, max)
}

fn generate_review(
    rng: &mut StdRng,
    h: &Hierarchy,
    aspects: &[NodeId],
    quality: &[f64],
    weight: &[f64],
    wsum: f64,
    cfg: &CorpusConfig,
) -> Review {
    let n_sentences = sample_count(rng, 1, 40, cfg.mean_sentences);
    let mut sentences = Vec::with_capacity(n_sentences);
    let mut planted = Vec::new();
    for _ in 0..n_sentences {
        if rng.gen::<f64>() < cfg.aspect_sentence_prob {
            // Weighted aspect choice.
            let mut t = rng.gen::<f64>() * wsum;
            let mut ai = 0usize;
            for (i, &w) in weight.iter().enumerate() {
                if t < w {
                    ai = i;
                    break;
                }
                t -= w;
            }
            let target = (quality[ai] + rng.gen_range(-0.3..0.3)).clamp(-1.0, 1.0);
            let (level, li) = quantize(target);
            let bank = LEVELS[li].1;
            let adj = bank[rng.gen_range(0..bank.len())];
            let aspect = aspects[ai];
            let terms = h.terms(aspect);
            let term = &terms[rng.gen_range(0..terms.len())];
            let sentence = match rng.gen_range(0..4u8) {
                0 => format!("The {term} is {adj}."),
                1 => format!("In my experience the {term} was {adj}."),
                2 => {
                    let mut c = adj.chars();
                    let cap = c
                        .next()
                        .map(|f| f.to_uppercase().collect::<String>() + c.as_str());
                    format!("{} {term}.", cap.unwrap_or_else(|| adj.to_owned()))
                }
                _ => format!("The {term} seems {adj}."),
            };
            sentences.push(sentence);
            planted.push(Pair::new(aspect, level));
        } else {
            sentences.push(format!("{}.", FILLERS[rng.gen_range(0..FILLERS.len())]));
        }
    }
    Review {
        text: sentences.join(" "),
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig {
            items: 5,
            min_reviews: 3,
            max_reviews: 10,
            mean_reviews: 5.0,
            mean_sentences: 4.0,
            aspect_sentence_prob: 0.8,
        }
    }

    #[test]
    fn generate_is_generate_over_aspects_with_the_full_pool() {
        // The aspect-pool refactor must not move a single RNG draw for
        // the existing presets: passing all non-root concepts explicitly
        // reproduces `generate` byte for byte.
        let h = crate::phone_hierarchy();
        let aspects: Vec<_> = h.nodes().filter(|&n| n != h.root()).collect();
        let a = Corpus::generate("cell phone reviews", h.clone(), &small(), 7);
        let b = Corpus::generate_over_aspects("cell phone reviews", h, aspects, &small(), 7);
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.reviews.len(), y.reviews.len());
            for (rx, ry) in x.reviews.iter().zip(&y.reviews) {
                assert_eq!(rx.text, ry.text);
                assert_eq!(rx.planted, ry.planted);
            }
        }
    }

    #[test]
    fn sampled_pool_restricts_planted_aspects() {
        let h = crate::synthetic_ontology(&crate::SyntheticOntologyConfig::default(), 3);
        let pool: Vec<_> = h.nodes().filter(|&n| n != h.root()).take(32).collect();
        let c = Corpus::generate_over_aspects("synthetic", h, pool.clone(), &small(), 5);
        let allowed: std::collections::HashSet<_> = pool.into_iter().collect();
        for item in &c.items {
            for r in &item.reviews {
                for p in &r.planted {
                    assert!(allowed.contains(&p.concept));
                }
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Corpus::phones(&small(), 7);
        let b = Corpus::phones(&small(), 7);
        assert_eq!(a.total_reviews(), b.total_reviews());
        assert_eq!(a.items[0].reviews[0].text, b.items[0].reviews[0].text);
    }

    #[test]
    fn large_presets_sit_between_small_and_full_item_counts() {
        let dl = CorpusConfig::doctors_large();
        assert!(dl.items > CorpusConfig::doctors_small().items);
        assert!(dl.items < CorpusConfig::doctors_full().items);
        assert!(dl.min_reviews <= dl.max_reviews);
        let pl = CorpusConfig::phones_large();
        assert!(pl.items > CorpusConfig::phones_small().items);
        assert!(pl.items < CorpusConfig::phones_full().items);
        assert!(pl.mean_reviews >= pl.min_reviews as f64);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::phones(&small(), 1);
        let b = Corpus::phones(&small(), 2);
        assert_ne!(a.items[0].reviews[0].text, b.items[0].reviews[0].text);
    }

    #[test]
    fn review_counts_respect_bounds() {
        let c = Corpus::doctors(&small(), 3);
        assert_eq!(c.items.len(), 5);
        for item in &c.items {
            assert!(item.reviews.len() >= 3 && item.reviews.len() <= 10);
        }
    }

    #[test]
    fn planted_pairs_reference_non_root_concepts() {
        let c = Corpus::phones(&small(), 11);
        let root = c.hierarchy.root();
        let mut total = 0;
        for item in &c.items {
            for r in &item.reviews {
                for p in &r.planted {
                    assert_ne!(p.concept, root);
                    assert!((-1.0..=1.0).contains(&p.sentiment));
                    total += 1;
                }
            }
        }
        assert!(total > 0, "aspect sentences exist");
    }

    #[test]
    fn planted_terms_appear_in_text() {
        let c = Corpus::phones(&small(), 13);
        // Each planted concept's surface term was embedded in the text:
        // at least one of the concept's terms occurs (lowercased) there.
        let r = &c.items[0].reviews[0];
        for p in &r.planted {
            let text = r.text.to_lowercase();
            assert!(
                c.hierarchy
                    .terms(p.concept)
                    .iter()
                    .any(|t| text.contains(&t.to_lowercase())),
                "no term of {:?} in {:?}",
                c.hierarchy.name(p.concept),
                r.text
            );
        }
    }

    #[test]
    fn quantize_snaps_to_nearest_level() {
        assert_eq!(quantize(0.6).0, 0.5);
        assert_eq!(quantize(0.9).0, 1.0);
        assert_eq!(quantize(-0.6).0, -0.5);
        assert_eq!(quantize(0.0).0, 0.25); // first closest in scan order
    }

    #[test]
    fn mean_sentences_roughly_calibrated() {
        let cfg = CorpusConfig {
            items: 20,
            ..small()
        };
        let c = Corpus::doctors(&cfg, 5);
        let mut sentences = 0usize;
        let mut reviews = 0usize;
        for item in &c.items {
            for r in &item.reviews {
                sentences += osa_text::split_sentences(&r.text).len();
                reviews += 1;
            }
        }
        let mean = sentences as f64 / reviews as f64;
        assert!((2.5..=6.0).contains(&mean), "mean sentences {mean}");
    }
}
