//! The interned extraction fast path.
//!
//! [`InternedExtractor`] precompiles everything the per-sentence hot loop
//! needs into integer-indexed tables over one shared token vocabulary:
//!
//! * a [`TokenInterner`] holding every concept-term token, every lexicon
//!   word (opinion entries, stems, negators, intensifiers, downtoners)
//!   and the stem of each — closed under stemming, so each shared ID's
//!   stem is a precomputed shared ID ([`shared stem`] table),
//! * two [`IdAutomaton`]s (exact and stem-normalized concept terms) that
//!   replace the per-position `Trie<String>` walk of
//!   [`ConceptMatcher`](crate::ConceptMatcher), and
//! * dense `Vec`-indexed lexicon tables replacing the per-token
//!   `HashMap<String, f64>` probes of
//!   [`SentimentLexicon::score_tokens`](crate::SentimentLexicon::score_tokens).
//!
//! Out-of-vocabulary review tokens are interned into a per-item local
//! tail kept in [`ExtractScratch`]; their stems are memoized once per
//! distinct word per worker (`stem_memo`), so stemming never runs twice
//! for the same surface form on a worker. All outputs — mentions,
//! sentiments, token identity — are defined purely by token *string*
//! equality, so they are byte-identical to the naive trie/HashMap oracle
//! regardless of worker count or item order.
//!
//! [`shared stem`]: InternedExtractor::new

use std::collections::HashMap;

use osa_ontology::{Hierarchy, NodeId};

use crate::automaton::IdAutomaton;
use crate::intern::TokenInterner;
use crate::lexicon::{SentimentLexicon, NEGATION_DAMP, SHIFTER_WINDOW};
use crate::matcher::ConceptMention;
use crate::stem::stem;
use crate::tokenize::tokenize_into;

/// Sentinel for "stem not yet resolved" in per-item local tables.
const UNRESOLVED: u32 = u32::MAX;

/// Per-worker reusable state for the interned extraction path.
///
/// Holds the tokenization buffers, the per-item local interner tail for
/// out-of-vocabulary words, automaton scan scratch and the per-item
/// vocabulary remap. Designed to live in a worker's scratch slot: buffers
/// are recycled across items via [`begin_item`](Self::begin_item) (epoch
/// stamping, no O(vocabulary) clearing), and the worker-lifetime stem
/// memo keeps amortizing across items.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    // Tokenization: lowercased sentence text + token byte spans.
    text_buf: String,
    spans: Vec<(u32, u32)>,
    /// Interned IDs of the current sentence's tokens.
    token_ids: Vec<u32>,
    /// Interned IDs of each token's stem, parallel to `token_ids`.
    stem_ids: Vec<u32>,
    // Per-item local interner for out-of-vocabulary words; local index
    // `l` is global ID `shared_len + l`.
    local_map: HashMap<String, u32>,
    local_strings: Vec<String>,
    /// Global stem ID per local entry (`UNRESOLVED` until the word occurs
    /// as a token).
    local_stem: Vec<u32>,
    /// Worker-lifetime word → stem memo (pure-function cache; survives
    /// across items, which is safe precisely because it is pure).
    stem_memo: HashMap<String, String>,
    // Automaton scan scratch.
    best: Vec<(u32, u32)>,
    matches: Vec<(usize, usize, NodeId)>,
    used: Vec<bool>,
    mentions: Vec<ConceptMention>,
    // Per-item vocabulary remap: shared IDs are epoch-stamped so nothing
    // vocabulary-sized is cleared between items.
    item_of_shared: Vec<u32>,
    item_epoch_shared: Vec<u64>,
    item_of_local: Vec<u32>,
    epoch: u64,
    stem_hits: u64,
    stem_misses: u64,
}

impl ExtractScratch {
    /// Start a new item: bumps the remap epoch, clears the per-item local
    /// interner and zeroes the stem-cache counters.
    pub fn begin_item(&mut self) {
        self.epoch += 1;
        self.local_map.clear();
        self.local_strings.clear();
        self.local_stem.clear();
        self.item_of_local.clear();
        self.stem_hits = 0;
        self.stem_misses = 0;
    }

    /// Finish an item: flushes the per-item stem-cache hit/miss counts to
    /// the metrics registry. The counts are a deterministic function of
    /// the item alone, so their corpus totals are jobs-invariant.
    pub fn finish_item(&mut self) {
        let obs = osa_obs::global();
        obs.add("extract.stem_cache.hits", self.stem_hits);
        obs.add("extract.stem_cache.misses", self.stem_misses);
        self.stem_hits = 0;
        self.stem_misses = 0;
    }

    /// Number of tokens in the current sentence.
    pub fn num_tokens(&self) -> usize {
        self.token_ids.len()
    }

    /// Global ID of the current sentence's `i`-th token.
    pub fn token_id(&self, i: usize) -> u32 {
        self.token_ids[i]
    }

    /// The mentions found by the last [`InternedExtractor::find`] call.
    pub fn mentions(&self) -> &[ConceptMention] {
        &self.mentions
    }
}

/// The precompiled interned extraction engine. Build once per
/// hierarchy/lexicon (it is read-only and shareable across workers);
/// per-sentence work goes through an [`ExtractScratch`].
#[derive(Debug, Clone)]
pub struct InternedExtractor {
    vocab: TokenInterner,
    shared_len: u32,
    /// `shared_stem[id]` is the shared ID of `stem(resolve(id))`.
    shared_stem: Vec<u32>,
    exact: IdAutomaton<NodeId>,
    stemmed: IdAutomaton<NodeId>,
    word_strength: Vec<Option<f64>>,
    stem_strength: Vec<Option<f64>>,
    negator: Vec<bool>,
    intensifier: Vec<Option<f64>>,
    downtoner: Vec<Option<f64>>,
}

impl InternedExtractor {
    /// Compile the shared vocabulary, concept automatons and lexicon
    /// tables from a hierarchy and lexicon.
    ///
    /// Mirrors [`ConceptMatcher::from_hierarchy`]: the root concept is
    /// excluded, every non-root term is inserted both verbatim and
    /// stem-normalized, and duplicate term phrases keep the last node.
    /// Reports `extract.intern.entries` and `extract.automaton.states`
    /// to the metrics registry (once per build, hence jobs-invariant).
    ///
    /// [`ConceptMatcher::from_hierarchy`]: crate::ConceptMatcher::from_hierarchy
    pub fn new(h: &Hierarchy, lexicon: &SentimentLexicon) -> Self {
        let mut vocab = TokenInterner::new();
        let mut exact_pats: Vec<(Vec<u32>, NodeId)> = Vec::new();
        let mut stem_pats: Vec<(Vec<u32>, NodeId)> = Vec::new();
        for node in h.nodes() {
            if node == h.root() {
                continue;
            }
            for term in h.terms(node) {
                let toks = crate::tokenize(term);
                if toks.is_empty() {
                    continue;
                }
                let ids: Vec<u32> = toks.iter().map(|t| vocab.intern(t)).collect();
                let sids: Vec<u32> = toks.iter().map(|t| vocab.intern(&stem(t))).collect();
                exact_pats.push((ids, node));
                stem_pats.push((sids, node));
            }
        }

        // Intern the whole lexicon vocabulary (sorted for run-to-run
        // stable ID assignment), then record the table entries.
        let words: Vec<(u32, f64)> = lexicon
            .words_sorted()
            .into_iter()
            .map(|(w, s)| (vocab.intern(w), s))
            .collect();
        let stems: Vec<(u32, f64)> = lexicon
            .stems_sorted()
            .into_iter()
            .map(|(w, s)| (vocab.intern(w), s))
            .collect();
        let negators: Vec<u32> = lexicon
            .negator_words()
            .iter()
            .map(|w| vocab.intern(w))
            .collect();
        let intensifiers: Vec<(u32, f64)> = lexicon
            .intensifiers_sorted()
            .into_iter()
            .map(|(w, b)| (vocab.intern(w), b))
            .collect();
        let downtoners: Vec<(u32, f64)> = lexicon
            .downtoners_sorted()
            .into_iter()
            .map(|(w, d)| (vocab.intern(w), d))
            .collect();

        // Close the vocabulary under stemming so every shared ID has a
        // precomputed shared stem ID. Terminates because `stem` either
        // returns its input or something strictly shorter.
        let mut shared_stem: Vec<u32> = Vec::new();
        let mut i = 0u32;
        while (i as usize) < vocab.len() {
            let s = stem(vocab.resolve(i));
            let sid = vocab.intern(&s);
            shared_stem.push(sid);
            i += 1;
        }
        debug_assert_eq!(shared_stem.len(), vocab.len());

        let shared_len = vocab.len() as u32;
        let mut word_strength = vec![None; shared_len as usize];
        for (id, s) in words {
            word_strength[id as usize] = Some(s);
        }
        let mut stem_strength = vec![None; shared_len as usize];
        for (id, s) in stems {
            stem_strength[id as usize] = Some(s);
        }
        let mut negator = vec![false; shared_len as usize];
        for id in negators {
            negator[id as usize] = true;
        }
        let mut intensifier = vec![None; shared_len as usize];
        for (id, b) in intensifiers {
            intensifier[id as usize] = Some(b);
        }
        let mut downtoner = vec![None; shared_len as usize];
        for (id, d) in downtoners {
            downtoner[id as usize] = Some(d);
        }

        let exact = IdAutomaton::build(exact_pats);
        let stemmed = IdAutomaton::build(stem_pats);
        let obs = osa_obs::global();
        obs.add("extract.intern.entries", shared_len.into());
        obs.add(
            "extract.automaton.states",
            (exact.num_states() + stemmed.num_states()) as u64,
        );

        InternedExtractor {
            vocab,
            shared_len,
            shared_stem,
            exact,
            stemmed,
            word_strength,
            stem_strength,
            negator,
            intensifier,
            downtoner,
        }
    }

    /// Size of the shared (build-time) vocabulary.
    pub fn vocab_len(&self) -> usize {
        self.shared_len as usize
    }

    /// Total states across the exact and stemmed automatons.
    pub fn automaton_states(&self) -> usize {
        self.exact.num_states() + self.stemmed.num_states()
    }

    /// Tokenize one sentence into `scratch`, resolving every token to a
    /// global ID (shared, or per-item local for out-of-vocabulary words)
    /// and its stem ID. Shared stems are precomputed; local stems are
    /// computed once per distinct word per item, backed by the worker's
    /// string-level stem memo.
    pub fn tokenize_sentence(&self, text: &str, scratch: &mut ExtractScratch) {
        let ExtractScratch {
            text_buf,
            spans,
            token_ids,
            stem_ids,
            local_map,
            local_strings,
            local_stem,
            stem_memo,
            stem_hits,
            stem_misses,
            ..
        } = scratch;
        tokenize_into(text, text_buf, spans);
        token_ids.clear();
        stem_ids.clear();
        for &(a, b) in spans.iter() {
            let word = &text_buf[a as usize..b as usize];
            if let Some(id) = self.vocab.get(word) {
                *stem_hits += 1;
                token_ids.push(id);
                stem_ids.push(self.shared_stem[id as usize]);
                continue;
            }
            let lidx = match local_map.get(word) {
                Some(&l) => l,
                None => {
                    let l = local_strings.len() as u32;
                    local_map.insert(word.to_owned(), l);
                    local_strings.push(word.to_owned());
                    local_stem.push(UNRESOLVED);
                    l
                }
            };
            if local_stem[lidx as usize] == UNRESOLVED {
                *stem_misses += 1;
                let sid = if let Some(s) = stem_memo.get(word) {
                    resolve_or_intern_local(
                        &self.vocab,
                        self.shared_len,
                        local_map,
                        local_strings,
                        local_stem,
                        s,
                    )
                } else {
                    let s = stem(word);
                    let sid = resolve_or_intern_local(
                        &self.vocab,
                        self.shared_len,
                        local_map,
                        local_strings,
                        local_stem,
                        &s,
                    );
                    stem_memo.insert(word.to_owned(), s);
                    sid
                };
                local_stem[lidx as usize] = sid;
            } else {
                *stem_hits += 1;
            }
            token_ids.push(self.shared_len + lidx);
            stem_ids.push(local_stem[lidx as usize]);
        }
    }

    /// The token text behind a global ID, for the current item.
    pub fn token_str<'a>(&'a self, scratch: &'a ExtractScratch, id: u32) -> &'a str {
        if id < self.shared_len {
            self.vocab.resolve(id)
        } else {
            &scratch.local_strings[(id - self.shared_len) as usize]
        }
    }

    /// Find all non-overlapping concept mentions in the current sentence,
    /// into `scratch.mentions()`. Exact-form matches first, then
    /// stem-normalized matches on positions the exact pass left
    /// uncovered — the same two-pass policy as
    /// [`ConceptMatcher::find`](crate::ConceptMatcher::find).
    pub fn find(&self, scratch: &mut ExtractScratch) {
        let ExtractScratch {
            token_ids,
            stem_ids,
            best,
            matches,
            used,
            mentions,
            ..
        } = scratch;
        mentions.clear();
        self.exact.scan_into(token_ids, best, matches);
        used.clear();
        used.resize(token_ids.len(), false);
        for &(start, len, concept) in matches.iter() {
            mentions.push(ConceptMention {
                concept,
                start,
                len,
            });
            for u in used.iter_mut().skip(start).take(len) {
                *u = true;
            }
        }
        self.stemmed.scan_into(stem_ids, best, matches);
        for &(start, len, concept) in matches.iter() {
            if used[start..start + len].iter().any(|&u| u) {
                continue;
            }
            mentions.push(ConceptMention {
                concept,
                start,
                len,
            });
        }
        mentions.sort_by_key(|m| m.start);
        osa_obs::global().add("text.concept_matches", mentions.len() as u64);
    }

    /// Lexicon-score the current sentence in `[-1, 1]`, bit-identical to
    /// [`SentimentLexicon::score_tokens`] on the same token text (same
    /// lookups, same floating-point operation order).
    ///
    /// [`SentimentLexicon::score_tokens`]: crate::SentimentLexicon::score_tokens
    pub fn score(&self, scratch: &ExtractScratch) -> f64 {
        let ids = &scratch.token_ids;
        let stems = &scratch.stem_ids;
        let mut total = 0.0;
        let mut hits = 0usize;
        for i in 0..ids.len() {
            let Some(base) = self.strength(ids[i], stems[i]) else {
                continue;
            };
            let mut v = base;
            let lo = i.saturating_sub(SHIFTER_WINDOW);
            let mut negated = false;
            let mut scale = 1.0;
            for &p in &ids[lo..i] {
                if table(&self.negator, p) == Some(&true) {
                    negated = !negated;
                } else if let Some(&Some(b)) = table(&self.intensifier, p) {
                    scale *= b;
                } else if let Some(&Some(d)) = table(&self.downtoner, p) {
                    scale *= d;
                }
            }
            v *= scale;
            if negated {
                v = -v * NEGATION_DAMP;
            }
            total += v.clamp(-1.0, 1.0);
            hits += 1;
        }
        osa_obs::global().add("text.lexicon_hits", hits as u64);
        if hits == 0 {
            0.0
        } else {
            (total / hits as f64).clamp(-1.0, 1.0)
        }
    }

    /// Opinion strength of a token: exact form first, then stem — the
    /// interned mirror of [`SentimentLexicon::word_strength`].
    ///
    /// [`SentimentLexicon::word_strength`]: crate::SentimentLexicon::word_strength
    fn strength(&self, id: u32, stem_id: u32) -> Option<f64> {
        if let Some(&Some(s)) = table(&self.word_strength, id) {
            return Some(s);
        }
        match table(&self.stem_strength, stem_id) {
            Some(&Some(s)) => Some(s),
            _ => None,
        }
    }

    /// Remap the current sentence's global token IDs to per-item IDs,
    /// appending first occurrences to the item's token `pool`. The
    /// per-item numbering is first-occurrence order over the item's token
    /// stream — a function of the text alone, so the naive oracle
    /// produces the identical pool and IDs.
    pub fn item_token_ids(&self, scratch: &mut ExtractScratch, pool: &mut Vec<String>) -> Vec<u32> {
        if scratch.item_of_shared.len() < self.shared_len as usize {
            scratch.item_of_shared.resize(self.shared_len as usize, 0);
            scratch
                .item_epoch_shared
                .resize(self.shared_len as usize, 0);
        }
        scratch
            .item_of_local
            .resize(scratch.local_strings.len(), UNRESOLVED);
        let mut out = Vec::with_capacity(scratch.token_ids.len());
        for k in 0..scratch.token_ids.len() {
            let gid = scratch.token_ids[k];
            let iid = if gid < self.shared_len {
                let g = gid as usize;
                if scratch.item_epoch_shared[g] == scratch.epoch {
                    scratch.item_of_shared[g]
                } else {
                    let id = pool.len() as u32;
                    pool.push(self.vocab.resolve(gid).to_owned());
                    scratch.item_epoch_shared[g] = scratch.epoch;
                    scratch.item_of_shared[g] = id;
                    id
                }
            } else {
                let l = (gid - self.shared_len) as usize;
                if scratch.item_of_local[l] == UNRESOLVED {
                    let id = pool.len() as u32;
                    pool.push(scratch.local_strings[l].clone());
                    scratch.item_of_local[l] = id;
                    id
                } else {
                    scratch.item_of_local[l]
                }
            };
            out.push(iid);
        }
        out
    }
}

/// Resolve a stem string to a global ID: shared vocabulary first, then
/// the per-item local tail (interning it there if new). A local entry
/// created for a stem gets its own stem lazily, only if the word later
/// occurs as a token.
fn resolve_or_intern_local(
    vocab: &TokenInterner,
    shared_len: u32,
    local_map: &mut HashMap<String, u32>,
    local_strings: &mut Vec<String>,
    local_stem: &mut Vec<u32>,
    s: &str,
) -> u32 {
    if let Some(id) = vocab.get(s) {
        return id;
    }
    match local_map.get(s) {
        Some(&l) => shared_len + l,
        None => {
            let l = local_strings.len() as u32;
            local_map.insert(s.to_owned(), l);
            local_strings.push(s.to_owned());
            local_stem.push(UNRESOLVED);
            shared_len + l
        }
    }
}

/// Bounds-checked dense-table probe: local IDs (beyond the shared range)
/// fall off the end and read as "absent".
fn table<T>(t: &[T], id: u32) -> Option<&T> {
    t.get(id as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tokenize, ConceptMatcher};
    use osa_ontology::HierarchyBuilder;

    fn phone() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node_with_terms("phone", &["phone", "cellphone"]);
        let screen = b.add_node_with_terms("screen", &["screen", "display"]);
        let color = b.add_node_with_terms("screen color", &["display color", "screen color"]);
        let battery = b.add_node_with_terms("battery", &["battery", "battery life"]);
        b.add_edge(root, screen).unwrap();
        b.add_edge(screen, color).unwrap();
        b.add_edge(root, battery).unwrap();
        b.build().unwrap()
    }

    fn check_sentence(h: &Hierarchy, sentence: &str) {
        let lexicon = SentimentLexicon::default();
        let matcher = ConceptMatcher::from_hierarchy(h);
        let ie = InternedExtractor::new(h, &lexicon);
        let mut scratch = ExtractScratch::default();
        scratch.begin_item();
        ie.tokenize_sentence(sentence, &mut scratch);

        let tokens = tokenize(sentence);
        assert_eq!(scratch.num_tokens(), tokens.len(), "{sentence:?}");
        for (i, t) in tokens.iter().enumerate() {
            assert_eq!(ie.token_str(&scratch, scratch.token_id(i)), t);
        }

        ie.find(&mut scratch);
        assert_eq!(
            scratch.mentions(),
            &matcher.find(&tokens)[..],
            "{sentence:?}"
        );

        let got = ie.score(&scratch);
        let want = lexicon.score_tokens(&tokens);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{sentence:?}: {got} vs {want}"
        );
    }

    #[test]
    fn mentions_and_scores_match_the_oracle() {
        let h = phone();
        for s in [
            "The display color is stunning",
            "battery life is bad but the screen is great",
            "the screens are bright",
            "battery life",
            "not very good battery life",
            "I love this phone",
            "",
            "   !!! ---",
            "zzyzx quuxish blargh displays",
            "écran brillant 𝑨𝑩 batteries",
        ] {
            check_sentence(&h, s);
        }
    }

    #[test]
    fn local_words_get_stable_ids_within_an_item() {
        let h = phone();
        let ie = InternedExtractor::new(&h, &SentimentLexicon::default());
        let mut scratch = ExtractScratch::default();
        scratch.begin_item();
        ie.tokenize_sentence("frobnicated widget", &mut scratch);
        let first = (scratch.token_id(0), scratch.token_id(1));
        ie.tokenize_sentence("widget frobnicated again", &mut scratch);
        assert_eq!(scratch.token_id(0), first.1);
        assert_eq!(scratch.token_id(1), first.0);
        // IDs equal ⇔ strings equal, shared and local alike.
        assert_ne!(scratch.token_id(2), first.0);
        assert_ne!(scratch.token_id(2), first.1);
    }

    #[test]
    fn item_pool_is_first_occurrence_order() {
        let h = phone();
        let ie = InternedExtractor::new(&h, &SentimentLexicon::default());
        let mut scratch = ExtractScratch::default();
        let mut pool = Vec::new();
        scratch.begin_item();
        ie.tokenize_sentence("great screen great zorp", &mut scratch);
        let ids = ie.item_token_ids(&mut scratch, &mut pool);
        assert_eq!(pool, vec!["great", "screen", "zorp"]);
        assert_eq!(ids, vec![0, 1, 0, 2]);
        // A fresh item restarts the numbering even with a reused scratch.
        let mut pool2 = Vec::new();
        scratch.begin_item();
        ie.tokenize_sentence("zorp screen", &mut scratch);
        let ids2 = ie.item_token_ids(&mut scratch, &mut pool2);
        assert_eq!(pool2, vec!["zorp", "screen"]);
        assert_eq!(ids2, vec![0, 1]);
    }

    #[test]
    fn stem_cache_counts_cover_every_token() {
        let h = phone();
        let ie = InternedExtractor::new(&h, &SentimentLexicon::default());
        let mut scratch = ExtractScratch::default();
        scratch.begin_item();
        ie.tokenize_sentence("splendiferous screens splendiferous", &mut scratch);
        // "screens" is OOV too (only "screen" is shared) — both OOV words
        // miss once; the repeat of "splendiferous" hits.
        assert_eq!(scratch.stem_hits + scratch.stem_misses, 3);
        assert_eq!(scratch.stem_misses, 2);
    }

    #[test]
    fn build_is_deterministic() {
        let h = phone();
        let a = InternedExtractor::new(&h, &SentimentLexicon::default());
        let b = InternedExtractor::new(&h, &SentimentLexicon::default());
        assert_eq!(a.vocab_len(), b.vocab_len());
        assert_eq!(a.automaton_states(), b.automaton_states());
        assert_eq!(a.shared_stem, b.shared_stem);
        assert_eq!(a.word_strength, b.word_strength);
    }
}
