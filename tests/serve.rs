//! End-to-end tests of the `osars serve` daemon: the served-vs-CLI
//! differential (a summary over HTTP must be byte-identical to the same
//! item's block in `osars summarize --item all` stdout), LRU/epoch
//! cache semantics under concurrent clients, panic isolation, and
//! queue backpressure/deadlines.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;
use std::time::Duration;

use osars::datasets::{Corpus, CorpusConfig};
use osars::serve::{serve, ServeOptions, ServerHandle};

fn phones_small() -> Corpus {
    Corpus::phones(&CorpusConfig::phones_small(), 42)
}

fn start(opts: ServeOptions) -> ServerHandle {
    serve(phones_small(), "127.0.0.1:0", opts).expect("bind ephemeral port")
}

/// One blocking HTTP exchange over a fresh connection; returns
/// `(status, headers lowercased, body)`.
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: HashMap<String, String> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    (status, headers, payload.to_owned())
}

fn get(addr: std::net::SocketAddr, target: &str) -> (u16, HashMap<String, String>, String) {
    request(addr, "GET", target, None)
}

/// The `"text"` field of a summary response — the exact CLI rendering.
fn summary_text(body: &str) -> String {
    osars::json::parse(body)
        .expect("valid JSON body")
        .get("text")
        .and_then(|v| v.as_str().map(str::to_owned))
        .unwrap_or_else(|| panic!("no 'text' field in: {body}"))
}

fn epoch_of(body: &str) -> u64 {
    osars::json::parse(body)
        .expect("valid JSON body")
        .get("epoch")
        .and_then(osars::json::Value::as_u64)
        .expect("numeric epoch")
}

// --- served-vs-CLI differential --------------------------------------------

/// Concatenating the served `"text"` fields over every item must equal
/// `osars summarize --item all` stdout byte-for-byte, for every
/// graph-impl × extract-impl combination and any `--jobs`.
#[test]
fn served_summaries_match_cli_stdout_across_impls() {
    let handle = start(ServeOptions::default());
    let addr = handle.addr();
    let (_, _, health) = get(addr, "/healthz");
    let items = osars::json::parse(&health)
        .unwrap()
        .get("items")
        .and_then(osars::json::Value::as_u64)
        .expect("item count") as usize;
    assert!(items > 0);

    for (graph, extract, jobs) in [
        ("indexed", "interned", "1"),
        ("indexed", "naive", "3"),
        ("naive", "interned", "8"),
        ("naive", "naive", "1"),
    ] {
        let cli = Command::new(env!("CARGO_BIN_EXE_osars"))
            .args([
                "summarize",
                "--domain",
                "phones",
                "--scale",
                "small",
                "--item",
                "all",
                "--graph-impl",
                graph,
                "--extract-impl",
                extract,
                "--jobs",
                jobs,
            ])
            .output()
            .expect("run osars summarize");
        assert!(
            cli.status.success(),
            "{}",
            String::from_utf8_lossy(&cli.stderr)
        );
        let expected = String::from_utf8(cli.stdout).expect("UTF-8 stdout");

        let mut served = String::new();
        for item in 0..items {
            let (status, _, body) = get(
                addr,
                &format!("/summary/{item}?graph-impl={graph}&extract-impl={extract}"),
            );
            assert_eq!(status, 200, "item {item} ({graph}/{extract}): {body}");
            served.push_str(&summary_text(&body));
        }
        assert_eq!(
            served, expected,
            "served summaries diverge from CLI stdout for {graph}/{extract} --jobs {jobs}"
        );
    }
    handle.shutdown();
}

// --- cache & epochs ---------------------------------------------------------

#[test]
fn lru_cache_hits_and_epoch_invalidation_under_concurrent_clients() {
    let handle = start(ServeOptions::default());
    let addr = handle.addr();

    // Cold → miss, warm → hit, byte-identical bodies.
    let (s1, h1, b1) = get(addr, "/summary/0?k=3");
    assert_eq!(s1, 200);
    assert_eq!(h1.get("x-osars-cache").map(String::as_str), Some("miss"));
    let (s2, h2, b2) = get(addr, "/summary/0?k=3");
    assert_eq!(s2, 200);
    assert_eq!(h2.get("x-osars-cache").map(String::as_str), Some("hit"));
    assert_eq!(b1, b2, "cache hit must serve the identical body");
    assert_eq!(epoch_of(&b1), 0);

    // Concurrent clients racing an ingest: every response must be a
    // consistent epoch-0 or epoch-1 body, never a torn mix.
    let ingest_body =
        r#"{"item":0,"reviews":["battery life is excellent","screen is too dim at night"]}"#;
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut bodies = Vec::new();
                for _ in 0..10 {
                    let (status, _, body) = get(addr, "/summary/0?k=3");
                    assert_eq!(status, 200, "{body}");
                    bodies.push(body);
                }
                bodies
            })
        })
        .collect();
    let (si, _, bi) = request(addr, "POST", "/reviews", Some(ingest_body));
    assert_eq!(si, 200, "{bi}");
    assert_eq!(epoch_of(&bi), 1);

    let mut by_epoch: HashMap<u64, String> = HashMap::new();
    for r in readers {
        for body in r.join().expect("reader thread") {
            let e = epoch_of(&body);
            assert!(e <= 1, "impossible epoch {e}");
            let prev = by_epoch.entry(e).or_insert_with(|| body.clone());
            assert_eq!(*prev, body, "two different bodies claim epoch {e}");
        }
    }

    // After the bump: a miss (old key is unreachable), new epoch, and
    // the re-request is a hit again.
    let (s3, h3, b3) = get(addr, "/summary/0?k=3");
    assert_eq!(s3, 200);
    assert_eq!(epoch_of(&b3), 1);
    assert_ne!(b1, b3, "epoch bump must change the response body");
    let (s4, h4, b4) = get(addr, "/summary/0?k=3");
    assert_eq!(s4, 200);
    assert_eq!(h4.get("x-osars-cache").map(String::as_str), Some("hit"));
    assert_eq!(b3, b4);
    // The post-bump cold request may race the reader threads above, so
    // only its *hit* flag is unasserted; h3 must still be present.
    assert!(h3.contains_key("x-osars-cache"));
    handle.shutdown();
}

#[test]
fn post_reviews_rejects_bad_input() {
    let handle = start(ServeOptions::default());
    let addr = handle.addr();
    for (body, why) in [
        ("not json", "malformed JSON"),
        (r#"{"reviews":["x"]}"#, "missing item"),
        (r#"{"item":0,"reviews":[]}"#, "empty reviews"),
        (r#"{"item":0,"reviews":[42]}"#, "non-string review"),
    ] {
        let (status, _, b) = request(addr, "POST", "/reviews", Some(body));
        assert_eq!(status, 400, "{why}: {b}");
    }
    let (status, _, _) = request(
        addr,
        "POST",
        "/reviews",
        Some(r#"{"item":9999,"reviews":["x"]}"#),
    );
    assert_eq!(status, 404, "out-of-range item");
    assert_eq!(
        handle.epoch(),
        0,
        "rejected ingests must not bump the epoch"
    );
    handle.shutdown();
}

// --- panic isolation --------------------------------------------------------

#[test]
fn poisoned_request_answers_500_and_the_daemon_keeps_serving() {
    osars::serve::quiet_injected_panics();
    let handle = start(ServeOptions::default());
    let addr = handle.addr();

    let (s0, _, before) = get(addr, "/summary/1");
    assert_eq!(s0, 200);

    for _ in 0..3 {
        let (status, _, body) = get(addr, "/summary/1?inject=panic");
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("injected panic"), "{body}");
    }

    // Same worker pool, same scratch lineage — the answer afterwards is
    // byte-identical to the answer before the poison.
    let (s1, _, after) = get(addr, "/summary/1");
    assert_eq!(s1, 200);
    assert_eq!(before, after, "poisoned requests must not perturb results");
    handle.shutdown();
}

// --- backpressure & deadlines ----------------------------------------------

#[test]
fn full_queue_answers_503_and_stale_jobs_answer_504() {
    let handle = start(ServeOptions {
        workers: 1,
        queue_depth: 1,
        deadline_ms: 100,
        cache_capacity: 0, // every request must reach the worker
        ..ServeOptions::default()
    });
    let addr = handle.addr();

    // Occupy the single worker.
    let busy = std::thread::spawn(move || get(addr, "/summary/0?inject=delay:600"));
    std::thread::sleep(Duration::from_millis(150));
    // Fill the queue's single slot; by the time the worker frees up,
    // this job is past its 100ms deadline.
    let stale = std::thread::spawn(move || get(addr, "/summary/1"));
    std::thread::sleep(Duration::from_millis(150));
    // Queue full → immediate refusal.
    let (s_reject, _, b_reject) = get(addr, "/summary/2");
    assert_eq!(s_reject, 503, "{b_reject}");

    let (s_busy, _, _) = busy.join().expect("busy thread");
    assert_eq!(s_busy, 200);
    let (s_stale, _, b_stale) = stale.join().expect("stale thread");
    assert_eq!(s_stale, 504, "{b_stale}");
    handle.shutdown();
}

// --- plumbing ---------------------------------------------------------------

#[test]
fn healthz_metrics_and_error_routes() {
    let handle = start(ServeOptions::default());
    let addr = handle.addr();

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let health = osars::json::parse(&body).expect("healthz JSON");
    assert_eq!(
        health.get("ok").and_then(|v| match v {
            osars::json::Value::Bool(b) => Some(*b),
            _ => None,
        }),
        Some(true)
    );

    // Generate one summary so the serve metrics have samples.
    let (s, _, _) = get(addr, "/summary/0");
    assert_eq!(s, 200);
    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("osars_serve_requests_total"), "{metrics}");
    assert!(metrics.contains("osars_serve_request_us"), "{metrics}");
    assert!(metrics.contains("quantile=\"0.99\""), "{metrics}");

    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "POST", "/healthz", None);
    assert_eq!(status, 405);
    let (status, _, body) = get(addr, "/summary/not-a-number");
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = get(addr, "/summary/0?eps=nan");
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = get(addr, "/summary/99999");
    assert_eq!(status, 404, "{body}");
    handle.shutdown();
}
