//! # osa-datasets
//!
//! Synthetic datasets calibrated to the paper's Table 1, plus the
//! concept hierarchies and the text-to-pairs extraction pipeline.
//!
//! The paper evaluates on two proprietary crawls: 68,686 vitals.com
//! doctor reviews (1000 doctors) and 33,578 Amazon cell-phone reviews
//! (60 phones). Neither is redistributable, so this crate synthesizes
//! review corpora with *planted* concept-sentiment ground truth whose
//! shape statistics match Table 1:
//!
//! * [`phone_hierarchy`] — a reconstruction of the Fig. 3 cell-phone
//!   aspect hierarchy (the figure's structure: a root with category
//!   aspects and specific sub-aspects),
//! * [`doctor_hierarchy`] — a curated medical-service concept hierarchy
//!   standing in for the SNOMED CT fragment MetaMap would hit,
//! * [`synthetic_ontology`] — a configurable SNOMED-scale random DAG for
//!   the quantitative (Figs. 4–5) benchmarks,
//! * [`Corpus::generate`] — template-based review synthesis over a
//!   hierarchy (every review is real English the `osa-text` pipeline can
//!   process end to end),
//! * [`extract_item`] — the extraction pipeline: sentences → concept
//!   mentions (trie matcher) → sentence sentiment (lexicon) → pairs,
//! * [`table1_stats`] — the Table 1 characteristics of a corpus,
//! * [`sample_pairs`] / [`sample_grouped_pairs`] — direct pair sampling
//!   on a hierarchy for solver-scale experiments.

//! ## Example
//!
//! ```
//! use osa_datasets::{extract_item, Corpus, CorpusConfig};
//! use osa_text::{ConceptMatcher, SentimentLexicon};
//!
//! let cfg = CorpusConfig { items: 1, ..CorpusConfig::phones_small() };
//! let corpus = Corpus::phones(&cfg, 7);
//! let matcher = ConceptMatcher::from_hierarchy(&corpus.hierarchy);
//! let extracted = extract_item(&corpus.items[0], &matcher, &SentimentLexicon::default());
//! assert!(!extracted.pairs.is_empty());
//! ```

#![warn(missing_docs)]

mod corpus;
mod hierarchies;
pub mod io;
pub mod noise;
mod pipeline;
mod stats;
mod synth;

pub use corpus::{Corpus, CorpusConfig, Item, Review};
pub use hierarchies::{doctor_hierarchy, phone_hierarchy};
pub use io::{corpus_from_json, corpus_to_json, load_corpus, save_corpus, CorpusIoError};
pub use pipeline::{
    extract_append, extract_item, extract_item_with, extract_truncate, train_regressor,
    ExtractImpl, ExtractedItem, ExtractedSentence, Extractor, SentimentModel,
};
pub use stats::{table1_stats, Table1Stats};
pub use synth::{
    huge_corpus, sample_grouped_pairs, sample_pairs, synthetic_ontology, SyntheticOntologyConfig,
};
