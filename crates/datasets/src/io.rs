//! JSON persistence for corpora.
//!
//! Snapshots let an experiment run against the *exact* corpus of an
//! earlier run (generation is already deterministic in the seed, but a
//! snapshot survives generator changes). The format stores the hierarchy
//! via `osa_ontology::io` and the reviews with their planted ground
//! truth, referencing concepts by name (stable across arena layouts).

use osa_core::Pair;
use serde::{Deserialize, Serialize};

use crate::{Corpus, Item, Review};

/// Error type for corpus (de)serialization.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying JSON failure.
    Serde(String),
    /// Hierarchy document failure.
    Ontology(osa_ontology::OntologyError),
    /// A review references a concept name missing from the hierarchy.
    UnknownConcept(String),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Serde(e) => write!(f, "corpus serialization error: {e}"),
            Self::Ontology(e) => write!(f, "corpus hierarchy error: {e}"),
            Self::UnknownConcept(c) => write!(f, "planted pair references unknown concept '{c}'"),
            Self::Io(e) => write!(f, "corpus i/o error: {e}"),
        }
    }
}

impl std::error::Error for CorpusIoError {}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct ReviewDoc {
    text: String,
    /// `(concept name, sentiment)` ground truth.
    planted: Vec<(String, f64)>,
}

#[derive(Serialize, Deserialize)]
struct ItemDoc {
    name: String,
    reviews: Vec<ReviewDoc>,
}

#[derive(Serialize, Deserialize)]
struct CorpusDoc {
    name: String,
    /// The hierarchy in `osa_ontology::io` JSON form (nested document).
    hierarchy: serde_json::Value,
    items: Vec<ItemDoc>,
}

/// Serialize a corpus to JSON.
pub fn corpus_to_json(c: &Corpus) -> String {
    let doc = CorpusDoc {
        name: c.name.clone(),
        hierarchy: serde_json::from_str(&osa_ontology::io::to_json(&c.hierarchy))
            .expect("hierarchy JSON is valid"),
        items: c
            .items
            .iter()
            .map(|item| ItemDoc {
                name: item.name.clone(),
                reviews: item
                    .reviews
                    .iter()
                    .map(|r| ReviewDoc {
                        text: r.text.clone(),
                        planted: r
                            .planted
                            .iter()
                            .map(|p| (c.hierarchy.name(p.concept).to_owned(), p.sentiment))
                            .collect(),
                    })
                    .collect(),
            })
            .collect(),
    };
    serde_json::to_string(&doc).expect("corpus document serializes")
}

/// Parse a corpus from its JSON representation.
pub fn corpus_from_json(json: &str) -> Result<Corpus, CorpusIoError> {
    let doc: CorpusDoc =
        serde_json::from_str(json).map_err(|e| CorpusIoError::Serde(e.to_string()))?;
    let hier_json =
        serde_json::to_string(&doc.hierarchy).map_err(|e| CorpusIoError::Serde(e.to_string()))?;
    let hierarchy = osa_ontology::io::from_json(&hier_json).map_err(CorpusIoError::Ontology)?;
    let mut items = Vec::with_capacity(doc.items.len());
    for item in doc.items {
        let mut reviews = Vec::with_capacity(item.reviews.len());
        for r in item.reviews {
            let mut planted = Vec::with_capacity(r.planted.len());
            for (name, s) in r.planted {
                let concept = hierarchy
                    .node_by_name(&name)
                    .ok_or(CorpusIoError::UnknownConcept(name))?;
                planted.push(Pair::new(concept, s));
            }
            reviews.push(Review {
                text: r.text,
                planted,
            });
        }
        items.push(Item {
            name: item.name,
            reviews,
        });
    }
    Ok(Corpus {
        name: doc.name,
        hierarchy,
        items,
    })
}

/// Write a corpus to a JSON file.
pub fn save_corpus(c: &Corpus, path: &std::path::Path) -> Result<(), CorpusIoError> {
    std::fs::write(path, corpus_to_json(c))?;
    Ok(())
}

/// Load a corpus from a JSON file.
pub fn load_corpus(path: &std::path::Path) -> Result<Corpus, CorpusIoError> {
    corpus_from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusConfig;

    fn tiny() -> Corpus {
        Corpus::phones(
            &CorpusConfig {
                items: 2,
                min_reviews: 2,
                max_reviews: 4,
                mean_reviews: 3.0,
                mean_sentences: 3.0,
                aspect_sentence_prob: 0.8,
            },
            5,
        )
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let c = tiny();
        let c2 = corpus_from_json(&corpus_to_json(&c)).unwrap();
        assert_eq!(c.name, c2.name);
        assert_eq!(c.items.len(), c2.items.len());
        assert_eq!(c.hierarchy.node_count(), c2.hierarchy.node_count());
        for (a, b) in c.items.iter().zip(&c2.items) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.reviews.len(), b.reviews.len());
            for (ra, rb) in a.reviews.iter().zip(&b.reviews) {
                assert_eq!(ra.text, rb.text);
                assert_eq!(ra.planted.len(), rb.planted.len());
                for (pa, pb) in ra.planted.iter().zip(&rb.planted) {
                    assert_eq!(
                        c.hierarchy.name(pa.concept),
                        c2.hierarchy.name(pb.concept)
                    );
                    assert_eq!(pa.sentiment, pb.sentiment);
                }
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let c = tiny();
        let dir = std::env::temp_dir().join("osa_corpus_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");
        save_corpus(&c, &path).unwrap();
        let c2 = load_corpus(&path).unwrap();
        assert_eq!(c.total_reviews(), c2.total_reviews());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unknown_concepts() {
        let c = tiny();
        let json = corpus_to_json(&c).replace("\"screen\"", "\"nonexistent-node\"");
        // Only planted references are validated; hierarchy names change
        // too with a blanket replace, so craft a minimal bad document.
        let bad = r#"{
            "name": "x",
            "hierarchy": {"nodes": [{"name": "r", "terms": ["r"]}], "edges": []},
            "items": [{"name": "i", "reviews": [{"text": "t", "planted": [["ghost", 0.5]]}]}]
        }"#;
        let _ = json;
        assert!(matches!(
            corpus_from_json(bad),
            Err(CorpusIoError::UnknownConcept(_))
        ));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(
            corpus_from_json("{"),
            Err(CorpusIoError::Serde(_))
        ));
    }
}
