//! Baseline summarizer throughput on one item's sentences.

use criterion::{criterion_group, criterion_main, Criterion};
use osa_baselines::{
    LexRank, LsaSummarizer, MostPopular, Proportional, SentenceRecord, SentenceSelector, TextRank,
};
use osa_datasets::{extract_item, Corpus, CorpusConfig};
use osa_text::{ConceptMatcher, SentimentLexicon};

fn bench_baselines(c: &mut Criterion) {
    let corpus = Corpus::phones(&CorpusConfig::phones_small(), 23);
    let matcher = ConceptMatcher::from_hierarchy(&corpus.hierarchy);
    let lexicon = SentimentLexicon::default();
    let ex = extract_item(&corpus.items[0], &matcher, &lexicon);
    let records: Vec<SentenceRecord> = ex
        .sentences
        .iter()
        .take(150)
        .enumerate()
        .map(|(si, s)| SentenceRecord {
            tokens: ex.sentence_tokens(si),
            pairs: s.pair_indices.iter().map(|&pi| ex.pairs[pi]).collect(),
        })
        .collect();
    let k = 6;
    let mut group = c.benchmark_group("baselines/150-sentences");
    group.sample_size(20);
    group.bench_function("most_popular", |b| {
        b.iter(|| MostPopular.select(&records, k))
    });
    group.bench_function("proportional", |b| {
        b.iter(|| Proportional.select(&records, k))
    });
    group.bench_function("textrank", |b| b.iter(|| TextRank.select(&records, k)));
    group.bench_function("lexrank", |b| {
        b.iter(|| LexRank::default().select(&records, k))
    });
    group.bench_function("lsa", |b| {
        b.iter(|| LsaSummarizer::default().select(&records, k))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
