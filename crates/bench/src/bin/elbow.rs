//! Section 5.3 reproduction: selecting the sentiment threshold ε with the
//! elbow method. Sweeps ε, averages the covered-pair fraction across
//! doctor items, and reports the knee of the curve (the paper selects
//! ε = 0.5).

use osa_bench::write_csv;
use osa_datasets::{extract_item, Corpus, CorpusConfig};
use osa_eval::{covered_fraction, elbow};
use osa_text::{ConceptMatcher, SentimentLexicon};

fn main() {
    let corpus = Corpus::doctors(&CorpusConfig::doctors_small(), 17);
    let matcher = ConceptMatcher::from_hierarchy(&corpus.hierarchy);
    let lexicon = SentimentLexicon::default();

    let extracted: Vec<_> = corpus
        .items
        .iter()
        .map(|i| extract_item(i, &matcher, &lexicon))
        .collect();

    println!("=== §5.3: epsilon selection by the elbow method (doctor reviews) ===\n");
    let sweep: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
    let mut points = Vec::with_capacity(sweep.len());
    let mut csv = Vec::new();
    println!("{:>8} {:>18}", "eps", "covered fraction");
    for &eps in &sweep {
        let mean: f64 = extracted
            .iter()
            .map(|ex| covered_fraction(&corpus.hierarchy, &ex.pairs, eps))
            .sum::<f64>()
            / extracted.len() as f64;
        println!("{eps:>8.2} {mean:>18.4}");
        csv.push(format!("{eps:.2},{mean:.5}"));
        points.push((eps, mean));
    }
    match elbow(&points) {
        Some(i) => println!("\nelbow at eps = {:.2} (paper selects 0.5)", points[i].0),
        None => println!("\nno elbow found (degenerate curve)"),
    }
    write_csv("elbow.csv", "eps,covered_fraction", &csv);
}
