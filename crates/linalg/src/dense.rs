//! Dense row-major matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// Indexing is `m[(r, c)]`. All shape mismatches panic — these matrices
/// back deterministic numeric kernels where a shape error is a programming
/// bug, not a runtime condition.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice of rows.
    ///
    /// # Panics
    /// If rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` out into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// If `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "shape mismatch in matmul");
        let mut out = Mat::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "shape mismatch in matvec");
        (0..self.rows).map(|r| crate::dot(self.row(r), v)).collect()
    }

    /// `self + other`, elementwise.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut m = self.clone();
        for (a, b) in m.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        m
    }

    /// `self * s`, elementwise.
    pub fn scale(&self, s: f64) -> Mat {
        let mut m = self.clone();
        for a in &mut m.data {
            *a *= s;
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Mat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Mat::from_rows(&[vec![1.0, -1.0], vec![2.0, 0.5]]);
        let v = vec![3.0, 4.0];
        assert_eq!(a.matvec(&v), vec![-1.0, 8.0]);
    }

    #[test]
    fn add_scale_frobenius() {
        let a = Mat::from_rows(&[vec![3.0, 4.0]]);
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
        let b = a.add(&a.scale(-1.0));
        assert_eq!(b.frobenius(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn col_extraction() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }
}
