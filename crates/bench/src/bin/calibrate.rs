//! Internal calibration tool: sizes and times one instance per
//! granularity so the Figs. 4–5 parameters can be chosen sensibly.
//! Not part of the paper's experiment set.

use osa_bench::{granularity_label, quant_workload, run_timed};
use osa_core::{Granularity, GreedySummarizer, IlpSummarizer, RandomizedRounding};

fn main() {
    let mean_pairs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    let w = quant_workload(2, mean_pairs, 42);
    for item in &w.items {
        println!("item: {} pairs", item.pairs.len());
        for g in [
            Granularity::Pairs,
            Granularity::Sentences,
            Granularity::Reviews,
        ] {
            let cg = item.graph(&w.hierarchy, 0.5, g);
            let k = 5;
            let (gs, gt) = run_timed(&GreedySummarizer, &cg, k);
            let (rs, rt) = run_timed(&RandomizedRounding::with_seed(1), &cg, k);
            let (is, it) = run_timed(&IlpSummarizer, &cg, k);
            println!(
                "  {:<13} |U|={:<4} |E|={:<6} greedy {:>8.0}us c={:<5} rr {:>10.0}us c={:<5} ilp {:>10.0}us c={}",
                granularity_label(g),
                cg.num_candidates(),
                cg.num_edges(),
                gt,
                gs.cost,
                rt,
                rs.cost,
                it,
                is.cost
            );
        }
    }
}
