//! Rule-based continuous sentiment scoring.
//!
//! The paper estimates a continuous sentiment in `[-1, 1]` for every
//! sentence and assigns it to each concept the sentence mentions. This
//! module is the deterministic scorer: an embedded graded opinion lexicon
//! (general + medical + consumer-electronics vocabulary) combined with
//! the classic valence-shifter rules of lexicon-based sentiment analysis
//! (Taboada et al., 2011):
//!
//! * **negators** ("not", "never", …) flip and dampen the next opinion
//!   word,
//! * **intensifiers** ("very", "extremely", …) scale it up,
//! * **downtoners** ("somewhat", "slightly", …) scale it down.
//!
//! The sentence score is the average of its (shifted) opinion-word
//! strengths, clamped to `[-1, 1]`.

use std::collections::HashMap;

use crate::stem::stem;

/// How far back (in tokens) a valence shifter can act on an opinion word.
pub(crate) const SHIFTER_WINDOW: usize = 3;
/// Flipped polarity is also dampened: "not great" is mildly negative, not
/// the mirror image of "great".
pub(crate) const NEGATION_DAMP: f64 = 0.65;

/// Graded opinion lexicon entries: `(word, strength)` with strength in
/// `[-1, 1]`. Strengths follow a 4-level scheme (±0.25 weak, ±0.5
/// moderate, ±0.75 strong, ±1.0 extreme).
const ENTRIES: &[(&str, f64)] = &[
    // --- extreme positive ---
    ("amazing", 1.0),
    ("awesome", 1.0),
    ("excellent", 1.0),
    ("exceptional", 1.0),
    ("fantastic", 1.0),
    ("flawless", 1.0),
    ("incredible", 1.0),
    ("outstanding", 1.0),
    ("perfect", 1.0),
    ("phenomenal", 1.0),
    ("superb", 1.0),
    ("wonderful", 1.0),
    ("brilliant", 1.0),
    ("stellar", 1.0),
    ("magnificent", 1.0),
    ("miracle", 1.0),
    // --- strong positive ---
    ("great", 0.75),
    ("love", 0.75),
    ("loved", 0.75),
    ("impressive", 0.75),
    ("beautiful", 0.75),
    ("delighted", 0.75),
    ("thrilled", 0.75),
    ("best", 0.75),
    ("terrific", 0.75),
    ("gorgeous", 0.75),
    ("superior", 0.75),
    ("remarkable", 0.75),
    ("caring", 0.75),
    ("compassionate", 0.75),
    ("thorough", 0.75),
    ("attentive", 0.75),
    ("knowledgeable", 0.75),
    ("skilled", 0.75),
    ("professional", 0.75),
    ("courteous", 0.75),
    ("crisp", 0.75),
    ("vibrant", 0.75),
    ("blazing", 0.75),
    ("snappy", 0.75),
    ("recommend", 0.75),
    ("recommended", 0.75),
    ("favorite", 0.75),
    ("happy", 0.75),
    // --- moderate positive ---
    ("good", 0.5),
    ("nice", 0.5),
    ("solid", 0.5),
    ("pleasant", 0.5),
    ("friendly", 0.5),
    ("helpful", 0.5),
    ("responsive", 0.5),
    ("smooth", 0.5),
    ("fast", 0.5),
    ("quick", 0.5),
    ("sharp", 0.5),
    ("bright", 0.5),
    ("clear", 0.5),
    ("comfortable", 0.5),
    ("clean", 0.5),
    ("reliable", 0.5),
    ("sturdy", 0.5),
    ("durable", 0.5),
    ("efficient", 0.5),
    ("effective", 0.5),
    ("satisfied", 0.5),
    ("pleased", 0.5),
    ("gentle", 0.5),
    ("patient", 0.5),
    ("kind", 0.5),
    ("polite", 0.5),
    ("punctual", 0.5),
    ("accurate", 0.5),
    ("affordable", 0.5),
    ("worth", 0.5),
    ("improved", 0.5),
    ("improvement", 0.5),
    ("enjoy", 0.5),
    ("enjoyed", 0.5),
    ("like", 0.5),
    ("liked", 0.5),
    ("works", 0.5),
    ("healed", 0.5),
    ("recovered", 0.5),
    ("relieved", 0.5),
    ("useful", 0.5),
    ("premium", 0.5),
    ("stylish", 0.5),
    ("sleek", 0.5),
    ("elegant", 0.5),
    ("rich", 0.5),
    ("loud", 0.5),
    ("spacious", 0.5),
    ("generous", 0.5),
    ("smart", 0.5),
    // --- weak positive ---
    ("fine", 0.25),
    ("okay", 0.25),
    ("ok", 0.25),
    ("decent", 0.25),
    ("adequate", 0.25),
    ("acceptable", 0.25),
    ("reasonable", 0.25),
    ("fair", 0.25),
    ("usable", 0.25),
    ("average", 0.1),
    ("standard", 0.1),
    ("normal", 0.1),
    // --- weak negative ---
    ("mediocre", -0.25),
    ("underwhelming", -0.25),
    ("lacking", -0.25),
    ("dated", -0.25),
    ("bland", -0.25),
    ("dim", -0.25),
    ("plain", -0.25),
    ("noisy", -0.25),
    ("stiff", -0.25),
    ("pricey", -0.25),
    ("expensive", -0.25),
    ("bulky", -0.25),
    ("heavy", -0.25),
    ("loose", -0.25),
    ("basic", -0.25),
    ("limited", -0.25),
    ("bored", -0.25),
    // --- moderate negative ---
    ("bad", -0.5),
    ("poor", -0.5),
    ("slow", -0.5),
    ("laggy", -0.5),
    ("lag", -0.5),
    ("weak", -0.5),
    ("flimsy", -0.5),
    ("cheap", -0.5),
    ("fragile", -0.5),
    ("blurry", -0.5),
    ("grainy", -0.5),
    ("dull", -0.5),
    ("uncomfortable", -0.5),
    ("dirty", -0.5),
    ("rude", -0.5),
    ("dismissive", -0.5),
    ("unhelpful", -0.5),
    ("cold", -0.5),
    ("late", -0.5),
    ("delayed", -0.5),
    ("crowded", -0.5),
    ("confusing", -0.5),
    ("disappointing", -0.5),
    ("disappointed", -0.5),
    ("annoying", -0.5),
    ("annoyed", -0.5),
    ("frustrating", -0.5),
    ("frustrated", -0.5),
    ("unreliable", -0.5),
    ("buggy", -0.5),
    ("glitchy", -0.5),
    ("overheats", -0.5),
    ("overheating", -0.5),
    ("drains", -0.5),
    ("drain", -0.5),
    ("cracked", -0.5),
    ("scratches", -0.5),
    ("scratched", -0.5),
    ("misdiagnosed", -0.5),
    ("dismisses", -0.5),
    ("ignored", -0.5),
    ("ignores", -0.5),
    ("pain", -0.5),
    ("painful", -0.5),
    ("hurt", -0.5),
    ("hurts", -0.5),
    ("sick", -0.5),
    ("worse", -0.5),
    ("wrong", -0.5),
    ("problem", -0.5),
    ("problems", -0.5),
    ("issue", -0.5),
    ("issues", -0.5),
    ("complaint", -0.5),
    ("broken", -0.5),
    ("breaks", -0.5),
    ("fails", -0.5),
    ("failed", -0.5),
    ("failure", -0.5),
    ("freezes", -0.5),
    ("freeze", -0.5),
    ("crashes", -0.5),
    ("crash", -0.5),
    ("defective", -0.5),
    ("defect", -0.5),
    ("faulty", -0.5),
    ("malfunction", -0.5),
    // --- strong negative ---
    ("terrible", -0.75),
    ("awful", -0.75),
    ("horrible", -0.75),
    ("dreadful", -0.75),
    ("hate", -0.75),
    ("hated", -0.75),
    ("useless", -0.75),
    ("worthless", -0.75),
    ("unacceptable", -0.75),
    ("incompetent", -0.75),
    ("negligent", -0.75),
    ("careless", -0.75),
    ("arrogant", -0.75),
    ("condescending", -0.75),
    ("unprofessional", -0.75),
    ("disrespectful", -0.75),
    ("unbearable", -0.75),
    ("miserable", -0.75),
    ("regret", -0.75),
    ("avoid", -0.75),
    ("refund", -0.75),
    ("garbage", -0.75),
    ("junk", -0.75),
    ("scam", -0.75),
    ("ripoff", -0.75),
    // --- extreme negative ---
    ("worst", -1.0),
    ("atrocious", -1.0),
    ("abysmal", -1.0),
    ("disaster", -1.0),
    ("disastrous", -1.0),
    ("nightmare", -1.0),
    ("dangerous", -1.0),
    ("malpractice", -1.0),
    ("horrific", -1.0),
    ("appalling", -1.0),
    ("unusable", -1.0),
];

/// Negation words that flip the polarity of a following opinion word.
const NEGATORS: &[&str] = &[
    "not",
    "no",
    "never",
    "none",
    "neither",
    "nor",
    "nobody",
    "nothing",
    "hardly",
    "barely",
    "scarcely",
    "without",
    "don't",
    "doesn't",
    "didn't",
    "isn't",
    "wasn't",
    "aren't",
    "weren't",
    "won't",
    "wouldn't",
    "can't",
    "cannot",
    "couldn't",
    "shouldn't",
    "ain't",
    "haven't",
    "hasn't",
    "hadn't",
];

/// Intensifiers and their multiplicative boost.
const INTENSIFIERS: &[(&str, f64)] = &[
    ("very", 1.3),
    ("really", 1.3),
    ("extremely", 1.6),
    ("incredibly", 1.6),
    ("absolutely", 1.5),
    ("totally", 1.4),
    ("completely", 1.4),
    ("super", 1.4),
    ("so", 1.25),
    ("highly", 1.3),
    ("exceptionally", 1.6),
    ("remarkably", 1.4),
    ("insanely", 1.6),
    ("truly", 1.3),
    ("especially", 1.2),
];

/// Downtoners and their multiplicative damping.
const DOWNTONERS: &[(&str, f64)] = &[
    ("somewhat", 0.6),
    ("slightly", 0.5),
    ("little", 0.6),
    ("bit", 0.6),
    ("kinda", 0.6),
    ("kind", 0.7),
    ("sort", 0.7),
    ("rather", 0.8),
    ("fairly", 0.8),
    ("mildly", 0.5),
    ("marginally", 0.5),
    ("almost", 0.8),
];

/// A graded sentiment lexicon plus valence-shifter rules.
///
/// Cloneable and cheap to share; build once with
/// [`SentimentLexicon::default`] and reuse across sentences.
#[derive(Debug, Clone)]
pub struct SentimentLexicon {
    words: HashMap<String, f64>,
    stems: HashMap<String, f64>,
    negators: Vec<&'static str>,
    intensifiers: HashMap<&'static str, f64>,
    downtoners: HashMap<&'static str, f64>,
}

impl Default for SentimentLexicon {
    fn default() -> Self {
        let words: HashMap<String, f64> = ENTRIES.iter().map(|&(w, s)| (w.to_owned(), s)).collect();
        // Secondary index by stem, so inflected forms ("impressively",
        // "drained") still hit. Exact-form entries win on conflict, and
        // stem collisions between entries resolve in declaration order —
        // iterating the `words` map here would tie the winner to per-map
        // hash seeding instead.
        let mut stems: HashMap<String, f64> = HashMap::new();
        for &(w, s) in ENTRIES {
            stems.entry(stem(w)).or_insert(s);
        }
        SentimentLexicon {
            words,
            stems,
            negators: NEGATORS.to_vec(),
            intensifiers: INTENSIFIERS.iter().copied().collect(),
            downtoners: DOWNTONERS.iter().copied().collect(),
        }
    }
}

impl SentimentLexicon {
    /// Number of distinct opinion words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the lexicon is empty (never, for the default lexicon).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Strength of a single word, if it is an opinion word (exact form
    /// first, then stem).
    pub fn word_strength(&self, word: &str) -> Option<f64> {
        self.words
            .get(word)
            .or_else(|| self.stems.get(&stem(word)))
            .copied()
    }

    /// Is `word` an opinion word (directly or via its stem)?
    pub fn is_opinion_word(&self, word: &str) -> bool {
        self.word_strength(word).is_some()
    }

    /// Score a tokenized sentence in `[-1, 1]`.
    ///
    /// Zero means neutral: either no opinion words, or opinions that
    /// cancel out.
    pub fn score_tokens(&self, tokens: &[String]) -> f64 {
        let mut total = 0.0;
        let mut hits = 0usize;
        for (i, tok) in tokens.iter().enumerate() {
            let Some(base) = self.word_strength(tok) else {
                continue;
            };
            let mut v = base;
            // Scan the shifter window immediately before the opinion word;
            // the nearest shifter of each kind wins.
            let lo = i.saturating_sub(SHIFTER_WINDOW);
            let mut negated = false;
            let mut scale = 1.0;
            for prev in tokens[lo..i].iter() {
                let p = prev.as_str();
                if self.negators.contains(&p) {
                    negated = !negated;
                } else if let Some(&b) = self.intensifiers.get(p) {
                    scale *= b;
                } else if let Some(&d) = self.downtoners.get(p) {
                    scale *= d;
                }
            }
            v *= scale;
            if negated {
                v = -v * NEGATION_DAMP;
            }
            total += v.clamp(-1.0, 1.0);
            hits += 1;
        }
        osa_obs::global().add("text.lexicon_hits", hits as u64);
        if hits == 0 {
            0.0
        } else {
            (total / hits as f64).clamp(-1.0, 1.0)
        }
    }

    /// Convenience: tokenize and score a raw sentence.
    pub fn score_sentence(&self, sentence: &str) -> f64 {
        self.score_tokens(&crate::tokenize(sentence))
    }

    /// Exact-form entries sorted by word, for deterministic table builds
    /// in the interned extractor.
    pub(crate) fn words_sorted(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self.words.iter().map(|(w, &s)| (w.as_str(), s)).collect();
        v.sort_by_key(|&(w, _)| w);
        v
    }

    /// Stem-index entries sorted by stem.
    pub(crate) fn stems_sorted(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self.stems.iter().map(|(w, &s)| (w.as_str(), s)).collect();
        v.sort_by_key(|&(w, _)| w);
        v
    }

    /// The negator word list, in declaration order.
    pub(crate) fn negator_words(&self) -> &[&'static str] {
        &self.negators
    }

    /// Intensifier entries sorted by word.
    pub(crate) fn intensifiers_sorted(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self.intensifiers.iter().map(|(&w, &b)| (w, b)).collect();
        v.sort_by_key(|&(w, _)| w);
        v
    }

    /// Downtoner entries sorted by word.
    pub(crate) fn downtoners_sorted(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self.downtoners.iter().map(|(&w, &d)| (w, d)).collect();
        v.sort_by_key(|&(w, _)| w);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> SentimentLexicon {
        SentimentLexicon::default()
    }

    #[test]
    fn polarity_basics() {
        let l = lex();
        assert!(l.score_sentence("The screen is great") > 0.5);
        assert!(l.score_sentence("The battery is terrible") < -0.5);
        assert_eq!(l.score_sentence("The phone has a screen"), 0.0);
    }

    #[test]
    fn graded_strengths_are_ordered() {
        let l = lex();
        let perfect = l.score_sentence("perfect display");
        let good = l.score_sentence("good display");
        let ok = l.score_sentence("okay display");
        assert!(perfect > good && good > ok && ok > 0.0);
    }

    #[test]
    fn negation_flips_and_dampens() {
        let l = lex();
        let pos = l.score_sentence("the camera is good");
        let neg = l.score_sentence("the camera is not good");
        assert!(pos > 0.0);
        assert!(neg < 0.0);
        assert!(neg.abs() < pos.abs(), "negation dampens: {neg} vs {pos}");
    }

    #[test]
    fn double_negation_cancels() {
        let l = lex();
        assert!(l.score_sentence("it is not not good") > 0.0);
    }

    #[test]
    fn intensifiers_and_downtoners() {
        let l = lex();
        let plain = l.score_sentence("the doctor was helpful");
        let very = l.score_sentence("the doctor was very helpful");
        let somewhat = l.score_sentence("the doctor was somewhat helpful");
        assert!(very > plain, "{very} > {plain}");
        assert!(somewhat < plain, "{somewhat} < {plain}");
        assert!(somewhat > 0.0);
    }

    #[test]
    fn negated_intensifier_combination() {
        let l = lex();
        // "not very good" → flipped and dampened, mildly negative.
        let s = l.score_sentence("not very good");
        assert!(s < 0.0 && s > -0.75, "got {s}");
    }

    #[test]
    fn scores_are_clamped() {
        let l = lex();
        let s = l.score_sentence("extremely incredibly absolutely amazing");
        assert!(s <= 1.0);
        let s = l.score_sentence("extremely absolutely atrocious disaster nightmare");
        assert!(s >= -1.0);
    }

    #[test]
    fn stemmed_forms_hit_lexicon() {
        let l = lex();
        // "recommending" is not an entry, but stems to "recommend".
        assert!(l.is_opinion_word("recommending"));
        assert!(l.word_strength("loving").is_some());
    }

    #[test]
    fn shifter_window_is_limited() {
        let l = lex();
        // Negator 4+ tokens away must not flip the opinion word.
        let far = l.score_sentence("not that it matters the screen looks great");
        assert!(far > 0.0);
    }

    #[test]
    fn mixed_sentence_averages() {
        let l = lex();
        let s = l.score_sentence("great screen but terrible battery");
        assert!(s.abs() < 0.3, "balanced sentence ≈ neutral, got {s}");
    }

    #[test]
    fn lexicon_is_nonempty_and_bounded() {
        let l = lex();
        assert!(l.len() > 200);
        assert!(!l.is_empty());
        for (w, s) in super::ENTRIES {
            assert!((-1.0..=1.0).contains(s), "{w} strength out of range");
        }
    }
}
