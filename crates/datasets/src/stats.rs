//! Table 1: dataset characteristics.

use crate::Corpus;

/// The five rows of the paper's Table 1 for one corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Stats {
    /// Number of items.
    pub items: usize,
    /// Total number of reviews.
    pub reviews: usize,
    /// Minimum reviews per item.
    pub min_reviews_per_item: usize,
    /// Maximum reviews per item.
    pub max_reviews_per_item: usize,
    /// Mean sentences per review.
    pub avg_sentences_per_review: f64,
}

/// Compute the Table 1 statistics of a corpus (sentence counts via the
/// real sentence splitter, exactly as the extraction pipeline sees them).
pub fn table1_stats(corpus: &Corpus) -> Table1Stats {
    let mut reviews = 0usize;
    let mut sentences = 0usize;
    let mut min_r = usize::MAX;
    let mut max_r = 0usize;
    for item in &corpus.items {
        let r = item.reviews.len();
        min_r = min_r.min(r);
        max_r = max_r.max(r);
        reviews += r;
        for review in &item.reviews {
            sentences += osa_text::split_sentences(&review.text).len();
        }
    }
    Table1Stats {
        items: corpus.items.len(),
        reviews,
        min_reviews_per_item: if corpus.items.is_empty() { 0 } else { min_r },
        max_reviews_per_item: max_r,
        avg_sentences_per_review: if reviews == 0 {
            0.0
        } else {
            sentences as f64 / reviews as f64
        },
    }
}

impl std::fmt::Display for Table1Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "#Items:                      {}", self.items)?;
        writeln!(f, "#Reviews:                    {}", self.reviews)?;
        writeln!(
            f,
            "Min #reviews per item:       {}",
            self.min_reviews_per_item
        )?;
        writeln!(
            f,
            "Max #reviews per item:       {}",
            self.max_reviews_per_item
        )?;
        write!(
            f,
            "Average #sentences per review: {:.2}",
            self.avg_sentences_per_review
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corpus, CorpusConfig};

    #[test]
    fn stats_reflect_generated_corpus() {
        let cfg = CorpusConfig {
            items: 6,
            min_reviews: 2,
            max_reviews: 9,
            mean_reviews: 4.0,
            mean_sentences: 3.0,
            aspect_sentence_prob: 0.7,
        };
        let c = Corpus::doctors(&cfg, 9);
        let s = table1_stats(&c);
        assert_eq!(s.items, 6);
        assert_eq!(s.reviews, c.total_reviews());
        assert!(s.min_reviews_per_item >= 2);
        assert!(s.max_reviews_per_item <= 9);
        assert!(s.avg_sentences_per_review >= 1.0);
        let text = s.to_string();
        assert!(text.contains("#Reviews"));
    }
}
