//! Compressed sparse row matrices.
//!
//! Term×sentence count matrices are extremely sparse; the LSA and LexRank
//! baselines build them in triplet form and convert to CSR for row
//! iteration and densification.

use crate::Mat;

/// A compressed-sparse-row matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Build from (row, col, value) triplets. Duplicate coordinates are
    /// summed; explicit zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(usize, usize, f64)>) -> Csr {
        t.retain(|&(r, c, v)| {
            assert!(r < rows && c < cols, "triplet out of bounds");
            v != 0.0
        });
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c as u32).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate the non-zeros of row `r` as `(col, value)`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Read a single entry (O(row nnz)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r).find(|&(cc, _)| cc == c).map_or(0.0, |(_, v)| v)
    }

    /// Sparse matrix × dense vector.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).map(|(c, x)| x * v[c]).sum())
            .collect()
    }

    /// Densify into a [`Mat`].
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// L2 norm of a column (O(nnz) scan).
    pub fn col_norm(&self, c: usize) -> f64 {
        let mut s = 0.0;
        for r in 0..self.rows {
            let v = self.get(r, c);
            s += v * v;
        }
        s.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_roundtrip_dense() {
        let t = vec![(0, 1, 2.0), (1, 0, -1.0), (2, 2, 3.5)];
        let m = Csr::from_triplets(3, 3, t);
        assert_eq!(m.nnz(), 3);
        let d = m.to_dense();
        assert_eq!(d[(0, 1)], 2.0);
        assert_eq!(d[(1, 0)], -1.0);
        assert_eq!(d[(2, 2)], 3.5);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn duplicates_sum_zeros_drop() {
        let t = vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)];
        let m = Csr::from_triplets(2, 2, t);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let t = vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, -3.0)];
        let m = Csr::from_triplets(2, 3, t);
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&v), m.to_dense().matvec(&v));
    }

    #[test]
    fn row_iteration_in_column_order() {
        let t = vec![(0, 2, 1.0), (0, 0, 2.0)];
        let m = Csr::from_triplets(1, 3, t);
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(0, 2.0), (2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplet_panics() {
        let _ = Csr::from_triplets(1, 1, vec![(0, 5, 1.0)]);
    }

    #[test]
    fn col_norm_matches_manual() {
        let t = vec![(0, 0, 3.0), (1, 0, 4.0)];
        let m = Csr::from_triplets(2, 1, t);
        assert!((m.col_norm(0) - 5.0).abs() < 1e-12);
    }
}
