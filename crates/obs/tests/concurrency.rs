//! Merge-under-concurrency guarantees (ISSUE 2, satellite 3).
//!
//! Counters must be *exact* under contention — N threads hammering one
//! registry lose no increments — and histogram merge must be
//! associative, so per-worker histograms can be folded into a global one
//! in any grouping without changing the result.

use osa_obs::{RawHistogram, Registry};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn counter_totals_are_exact_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let reg = Arc::new(Registry::new());
    reg.set_enabled(true);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                // Mix the name-based path and a cached handle, plus a
                // second shared counter, to contend on both the registry
                // lock and the atomic cells themselves.
                let handle = reg.counter("hammer.cached");
                for i in 0..PER_THREAD {
                    reg.add("hammer.named", 1);
                    handle.incr();
                    if i % 2 == 0 {
                        reg.add("hammer.evens", 2);
                    }
                }
                reg.set_gauge("hammer.last_thread", t as i64);
            });
        }
    });

    let snap = reg.snapshot();
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    let expected = (THREADS as u64) * PER_THREAD;
    assert_eq!(get("hammer.named"), expected);
    assert_eq!(get("hammer.cached"), expected);
    assert_eq!(get("hammer.evens"), expected); // 2 × PER_THREAD/2 per thread
    let (_, last) = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "hammer.last_thread")
        .expect("gauge present");
    assert!((0..THREADS as i64).contains(last));
}

#[test]
fn concurrent_histogram_records_lose_no_samples() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 2_000;

    let reg = Arc::new(Registry::new());
    reg.set_enabled(true);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let h = reg.histogram("hammer.hist");
                for i in 0..PER_THREAD {
                    h.record((t * PER_THREAD + i) as f64);
                }
            });
        }
    });

    let data = reg.histogram("hammer.hist").data();
    assert_eq!(data.count(), THREADS * PER_THREAD);
    // Every sample value 0..N appears exactly once regardless of
    // interleaving: the total is the triangular number.
    let n = (THREADS * PER_THREAD) as f64;
    assert_eq!(data.total(), n * (n - 1.0) / 2.0);
}

fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..1_000_000).prop_map(|v| v as f64 / 7.0), 0..=64)
}

fn hist_of(samples: &[f64]) -> RawHistogram {
    let mut h = RawHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn histogram_merge_is_associative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.count(), a.len() + b.len() + c.len());
        // Percentiles agree with a direct nearest-rank computation on
        // the concatenation.
        let mut all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        all.sort_by(|x, y| x.partial_cmp(y).unwrap());
        if !all.is_empty() {
            for p in [0.0, 25.0, 50.0, 95.0, 100.0] {
                let rank = ((p / 100.0 * all.len() as f64).ceil() as usize)
                    .clamp(1, all.len());
                prop_assert_eq!(left.percentile(p), Some(all[rank - 1]));
            }
        } else {
            prop_assert_eq!(left.percentile(50.0), None);
        }
    }

    /// Scraping a snapshot while writers are mid-flight must only ever
    /// observe consistent prefixes: bounded count, sums/extrema inside
    /// the final envelope, quantiles between min and max. The final
    /// scrape is *exact* — the reservoir bounds memory, never the
    /// count/sum/min/max bookkeeping.
    #[test]
    fn scrapes_during_concurrent_records_see_consistent_prefixes(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u32..1_000_000, 1..=400),
            2..=4,
        ),
    ) {
        let expected_count: usize = batches.iter().map(Vec::len).sum();
        // Integer-valued samples: f64 summation is exact in any order.
        let expected_sum: f64 = batches.iter().flatten().map(|&v| f64::from(v)).sum();
        let expected_min = f64::from(*batches.iter().flatten().min().unwrap());
        let expected_max = f64::from(*batches.iter().flatten().max().unwrap());

        let reg = Arc::new(Registry::new());
        reg.set_enabled(true);
        std::thread::scope(|scope| {
            for batch in &batches {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let h = reg.histogram("scrape.hist");
                    for &v in batch {
                        h.record(f64::from(v));
                    }
                });
            }
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let mut last_count = 0usize;
                for _ in 0..100 {
                    let snap = reg.snapshot();
                    let Some((_, h)) = snap
                        .histograms
                        .iter()
                        .find(|(n, _)| n == "scrape.hist")
                    else {
                        continue; // no sample landed yet
                    };
                    assert!(h.count >= last_count, "count went backwards");
                    assert!(h.count <= expected_count, "count overshot");
                    last_count = h.count;
                    if h.count == 0 {
                        continue;
                    }
                    assert!(h.min >= expected_min && h.max <= expected_max);
                    assert!(h.min <= h.max);
                    assert!(h.total <= expected_sum + 1e-9);
                    assert!((h.mean - h.total / h.count as f64).abs() < 1e-9);
                    for q in [h.p50, h.p95, h.p99] {
                        assert!(q >= h.min && q <= h.max, "quantile outside extrema");
                    }
                }
            });
        });

        let snap = reg.snapshot();
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "scrape.hist")
            .expect("histogram present after writers finish");
        prop_assert_eq!(h.count, expected_count);
        prop_assert_eq!(h.total, expected_sum);
        prop_assert_eq!(h.min, expected_min);
        prop_assert_eq!(h.max, expected_max);
    }

    #[test]
    fn merge_identity_is_the_empty_histogram(a in arb_samples()) {
        let ha = hist_of(&a);
        let mut left = ha.clone();
        left.merge(&RawHistogram::new());
        let mut right = RawHistogram::new();
        right.merge(&ha);
        prop_assert_eq!(&left, &ha);
        prop_assert_eq!(&right, &ha);
    }
}
