//! Always-on flight recorder: a fixed-capacity ring of completed request
//! traces with **tail sampling** — the keep/drop decision is made after
//! the request finishes, when its status and duration are known.
//!
//! Error responses (status ≥ 500: panics, queue rejections, expired
//! deadlines) and slow requests (total time at or above the configured
//! threshold) are always kept. Everything else is kept probabilistically
//! by a seeded LCG, so a busy daemon retains a representative sample of
//! healthy traffic without unbounded memory. The LCG advances only on
//! probabilistic decisions: forced keeps never perturb the sample
//! sequence, which makes the retained set a deterministic function of
//! `(seed, offer sequence)` — pinned by tests.

use std::collections::VecDeque;
use std::sync::Mutex;

use osa_obs::TraceTree;

/// Traces retained at once; the oldest is evicted when a new one lands.
pub const DEFAULT_CAPACITY: usize = 256;

/// Healthy-traffic sampling rate: one trace kept per this many offers.
pub const SAMPLE_ONE_IN: u64 = 8;

/// Why a completed trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Status ≥ 500 — panic, overload rejection, or expired deadline.
    Error,
    /// Total duration at or above the slow threshold.
    Slow,
    /// Won the probabilistic sample.
    Sampled,
}

impl KeepReason {
    /// Stable lowercase name, used in JSON bodies and metric names.
    pub fn name(self) -> &'static str {
        match self {
            KeepReason::Error => "error",
            KeepReason::Slow => "slow",
            KeepReason::Sampled => "sampled",
        }
    }
}

/// One retained request trace with its response metadata.
#[derive(Debug, Clone)]
pub struct CompletedTrace {
    /// Trace id (the daemon's monotonic request sequence number).
    pub id: u64,
    /// Request path (with the significant query parameters).
    pub path: String,
    /// Final HTTP status of the response.
    pub status: u16,
    /// Root-span duration in microseconds.
    pub total_us: u64,
    /// Why the recorder kept this trace.
    pub reason: KeepReason,
    /// The full span tree.
    pub tree: TraceTree,
}

struct RecorderInner {
    ring: VecDeque<CompletedTrace>,
    offered: u64,
    kept: u64,
    rng: u64,
}

/// The recorder itself: one mutex-guarded ring per daemon.
pub struct FlightRecorder {
    capacity: usize,
    slow_us: u64,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` traces, treating requests of
    /// `slow_us` microseconds or more as always-keep, and sampling the
    /// rest from `seed`.
    pub fn new(capacity: usize, slow_us: u64, seed: u64) -> Self {
        FlightRecorder {
            capacity,
            slow_us,
            inner: Mutex::new(RecorderInner {
                ring: VecDeque::with_capacity(capacity.min(64)),
                offered: 0,
                kept: 0,
                // A zero LCG state would be a fixed point; displace it.
                rng: seed ^ 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    /// Offer a completed trace. Returns the keep reason when retained,
    /// `None` when sampled out. Never blocks on anything but the ring
    /// mutex; a poisoned mutex (a panicking connection thread) is
    /// recovered rather than propagated.
    pub fn offer(
        &self,
        id: u64,
        path: String,
        status: u16,
        total_us: u64,
        tree: TraceTree,
    ) -> Option<KeepReason> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.offered += 1;
        let reason = if status >= 500 {
            KeepReason::Error
        } else if self.slow_us > 0 && total_us >= self.slow_us {
            KeepReason::Slow
        } else {
            // MMIX LCG step; only probabilistic offers advance it.
            inner.rng = inner
                .rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if !(inner.rng >> 33).is_multiple_of(SAMPLE_ONE_IN) {
                return None;
            }
            KeepReason::Sampled
        };
        if self.capacity == 0 {
            return None;
        }
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.kept += 1;
        inner.ring.push_back(CompletedTrace {
            id,
            path,
            status,
            total_us,
            reason,
            tree,
        });
        Some(reason)
    }

    /// Up to `n` most recent retained traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<CompletedTrace> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.iter().rev().take(n).cloned().collect()
    }

    /// The retained trace with this id, if it has not been evicted.
    pub fn find(&self, id: u64) -> Option<CompletedTrace> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.iter().find(|t| t.id == id).cloned()
    }

    /// `(offered, kept)` lifetime totals.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.offered, inner.kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(id: u64) -> TraceTree {
        let t = osa_obs::Trace::new(id);
        {
            let _root = t.span("serve.request");
        }
        t.tree()
    }

    fn offer_fast(r: &FlightRecorder, id: u64) -> Option<KeepReason> {
        r.offer(id, format!("/summary/{id}"), 200, 100, tree(id))
    }

    #[test]
    fn errors_and_slow_requests_are_always_kept() {
        let r = FlightRecorder::new(16, 50_000, 7);
        for id in 0..200u64 {
            let (status, total) = match id % 3 {
                0 => (500, 10),
                1 => (504, 10),
                _ => (200, 60_000),
            };
            let reason = r.offer(id, "/summary/0".into(), status, total, tree(id));
            let expect = if status >= 500 {
                KeepReason::Error
            } else {
                KeepReason::Slow
            };
            assert_eq!(reason, Some(expect), "id {id}");
        }
        let recent = r.recent(16);
        assert_eq!(recent.len(), 16, "ring is bounded");
        assert_eq!(recent[0].id, 199, "newest first");
    }

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let kept = |seed: u64| -> Vec<u64> {
            let r = FlightRecorder::new(1024, 0, seed);
            (0..1000u64)
                .filter(|&id| offer_fast(&r, id).is_some())
                .collect()
        };
        let a = kept(42);
        assert_eq!(a, kept(42), "same seed, same retained set");
        assert_ne!(a, kept(43), "different seed, different sample");
        // Roughly 1-in-SAMPLE_ONE_IN of healthy traffic survives.
        assert!(a.len() > 60 && a.len() < 250, "kept {} of 1000", a.len());
    }

    #[test]
    fn forced_keeps_do_not_perturb_the_sample_sequence() {
        let sampled_only = {
            let r = FlightRecorder::new(4096, 0, 5);
            (0..500u64)
                .filter(|&id| offer_fast(&r, id).is_some())
                .collect::<Vec<_>>()
        };
        // Interleave an error offer before every probabilistic one; the
        // set of sampled ids must be unchanged.
        let r = FlightRecorder::new(4096, 0, 5);
        let mut sampled = Vec::new();
        for id in 0..500u64 {
            assert_eq!(
                r.offer(10_000 + id, "/summary/0".into(), 500, 1, tree(id)),
                Some(KeepReason::Error)
            );
            if offer_fast(&r, id).is_some() {
                sampled.push(id);
            }
        }
        assert_eq!(sampled, sampled_only);
    }

    #[test]
    fn find_sees_retained_ids_until_eviction() {
        let r = FlightRecorder::new(2, 0, 1);
        r.offer(1, "/summary/1".into(), 500, 1, tree(1));
        r.offer(2, "/summary/2".into(), 500, 1, tree(2));
        assert!(r.find(1).is_some());
        r.offer(3, "/summary/3".into(), 500, 1, tree(3));
        assert!(r.find(1).is_none(), "evicted");
        assert!(r.find(2).is_some() && r.find(3).is_some());
        assert_eq!(r.stats(), (3, 3));
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let r = FlightRecorder::new(0, 0, 1);
        assert_eq!(r.offer(1, "/x".into(), 500, 1, tree(1)), None);
        assert!(r.recent(10).is_empty());
    }
}
