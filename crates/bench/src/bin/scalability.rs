//! Scalability check for the paper's §4.1/§4.4 complexity claims:
//! initialization is near-linear in |P| (small mean ancestor count), and
//! greedy's post-initialization time is dominated by initialization.
//!
//! Sweeps |P| over a 30k-node synthetic ontology and prints init time,
//! per-pair init time (should stay ~flat), graph size and greedy time.

use osa_bench::{jobs_flag, write_csv};
use osa_core::{CoverageGraph, GreedySummarizer, Summarizer};
use osa_datasets::{sample_pairs, synthetic_ontology, SyntheticOntologyConfig};
use osa_eval::Stopwatch;
use osa_ontology::HierarchyStats;
use osa_runtime::{item_seed, BatchJob};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let h = synthetic_ontology(
        &SyntheticOntologyConfig {
            nodes: 30_000,
            levels: 9,
            multi_parent_prob: 0.15,
        },
        71,
    );
    let stats = HierarchyStats::compute(&h);
    println!(
        "ontology: {} nodes, {} edges, depth {}, mean ancestors {:.2}\n",
        stats.nodes, stats.edges, stats.max_depth, stats.mean_ancestors
    );
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>12} {:>12}",
        "|P|", "init µs", "µs/pair", "|E|", "greedy µs", "cost(k=10)"
    );

    let mut csv = Vec::new();
    let sizes = [1_000usize, 2_000, 5_000, 10_000, 20_000, 50_000];
    // Each size draws its pairs from an independent RNG seeded by
    // (72, size-index), so the sweep can run on the worker pool without
    // the sizes contending for one sequential RNG stream. With
    // --jobs > 1 the timing columns measure contended wall time — use
    // the default --jobs 1 for clean per-size timings.
    let jobs = jobs_flag();
    let report = BatchJob::new(&sizes).jobs(jobs).run(|_, si, &n| {
        // Cluster count scales with |P| so per-concept bucket sizes stay
        // bounded — the regime of the paper's near-linearity argument
        // (more reviews of one doctor mention more *topics*, not
        // infinitely deeper piles on one topic). Initialization is
        // output-sensitive: O(|P| · mean-ancestors + |E|).
        let clusters = (n / 250).max(8);
        let mut rng = StdRng::seed_from_u64(item_seed(72, si as u64));
        let pairs = sample_pairs(&h, n, clusters, &mut rng);
        let (graph, init_us) = Stopwatch::time(|| CoverageGraph::for_pairs(&h, &pairs, 0.5));
        let (summary, greedy_us) = Stopwatch::time(|| GreedySummarizer.summarize(&graph, 10));
        (init_us, graph.num_edges(), greedy_us, summary.cost)
    });
    for (&n, &(init_us, edges, greedy_us, cost)) in sizes.iter().zip(&report.results) {
        println!(
            "{n:>8} {init_us:>12.0} {:>14.3} {edges:>10} {greedy_us:>12.0} {cost:>12}",
            init_us / n as f64,
        );
        csv.push(format!("{n},{init_us:.0},{edges},{greedy_us:.0},{cost}"));
    }
    println!("\n(per-pair init time staying flat = near-linear initialization, §4.1)");
    write_csv(
        "scalability.csv",
        "pairs,init_us,edges,greedy_us,cost",
        &csv,
    );
}
