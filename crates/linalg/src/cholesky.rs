//! Cholesky factorization and SPD solves.
//!
//! Used by the ridge regression in `osa-text`: the normal-equations matrix
//! `XᵀX + λI` is symmetric positive definite for any `λ > 0`, so Cholesky
//! is the right (and fastest) factorization.

use crate::Mat;

/// Failure of the Cholesky factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not square.
    NotSquare,
    /// A non-positive pivot was encountered: the matrix is not positive
    /// definite (within numerical tolerance).
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotSquare => write!(f, "cholesky: matrix is not square"),
            Self::NotPositiveDefinite { pivot } => {
                write!(f, "cholesky: non-positive pivot at index {pivot}")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Compute the lower-triangular factor `L` with `L Lᵀ = a`.
///
/// Only the lower triangle of `a` is read.
pub fn cholesky_factor(a: &Mat) -> Result<Mat, CholeskyError> {
    if a.rows() != a.cols() {
        return Err(CholeskyError::NotSquare);
    }
    let n = a.rows();
    let mut l = Mat::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 1e-14 {
            return Err(CholeskyError::NotPositiveDefinite { pivot: j });
        }
        let dj = diag.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// Solve `a x = b` for symmetric positive definite `a` via Cholesky.
pub fn cholesky_solve(a: &Mat, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
    let l = cholesky_factor(a)?;
    let n = l.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_matrix() {
        // Classic SPD example.
        let a = Mat::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ]);
        let l = cholesky_factor(&a).unwrap();
        let expect = Mat::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![6.0, 1.0, 0.0],
            vec![-8.0, 5.0, 3.0],
        ]);
        assert!(l.max_abs_diff(&expect) < 1e-10);
        // Reconstruction L Lᵀ = A.
        assert!(l.matmul(&l.transpose()).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Mat::from_rows(&[
            vec![25.0, 15.0, -5.0],
            vec![15.0, 18.0, 0.0],
            vec![-5.0, 0.0, 11.0],
        ]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = cholesky_solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_spd() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(matches!(
            cholesky_factor(&a),
            Err(CholeskyError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(
            cholesky_factor(&Mat::zeros(2, 3)).unwrap_err(),
            CholeskyError::NotSquare
        );
    }

    #[test]
    fn ridge_normal_equations_are_spd() {
        // XᵀX is singular here (rank 1), but + λI makes it SPD.
        let x = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let xtx = x.transpose().matmul(&x);
        assert!(cholesky_factor(&xtx).is_err());
        let reg = xtx.add(&Mat::identity(2).scale(0.1));
        assert!(cholesky_factor(&reg).is_ok());
    }
}
