//! The fault-injection contract of `summarize_corpus`: with a seeded
//! `FaultPlan`, a batch containing injected panics and NaN corruptions
//! completes; the failed/retried accounting is a pure function of the
//! plan (jobs-invariant); and every surviving item's output is
//! byte-identical to the same item's output in a fault-free run.

use osa_datasets::{Corpus, CorpusConfig};
use osa_runtime::{
    quiet_injected_panics, render_item_summary, summarize_corpus, BatchOptions, Fault, FaultPlan,
    ItemSummary,
};

fn corpus(seed: u64, items: usize) -> Corpus {
    let cfg = CorpusConfig {
        items,
        min_reviews: 3,
        max_reviews: 8,
        mean_reviews: 5.0,
        mean_sentences: 3.5,
        aspect_sentence_prob: 0.8,
    };
    Corpus::doctors(&cfg, seed)
}

/// A plan aggressive enough that a 24-item corpus reliably sees every
/// fault class.
fn plan() -> FaultPlan {
    FaultPlan {
        seed: 99,
        transient_panic_rate: 0.2,
        sticky_panic_rate: 0.15,
        nan_rate: 0.15,
        delay_rate: 0.2,
        max_delay_micros: 200,
    }
}

fn by_item(results: &[ItemSummary]) -> std::collections::HashMap<usize, &ItemSummary> {
    results.iter().map(|s| (s.item, s)).collect()
}

#[test]
fn survivors_are_byte_identical_to_a_fault_free_run() {
    quiet_injected_panics();
    let corpus = corpus(21, 24);
    let clean = summarize_corpus(&corpus, &BatchOptions::default());
    let faulted = summarize_corpus(
        &corpus,
        &BatchOptions {
            fault_plan: Some(plan()),
            retries: 1,
            ..BatchOptions::default()
        },
    );
    assert!(
        !faulted.failed.is_empty(),
        "plan should produce at least one sticky failure on 24 items"
    );
    assert!(faulted.retried > 0, "plan should produce transient panics");
    assert_eq!(
        faulted.results.len() + faulted.failed.len(),
        corpus.items.len()
    );
    // Failed items are exactly those with a permanent fault under this
    // retry budget: sticky panics and NaN corruptions.
    let clean_by_item = by_item(&clean.results);
    for f in &faulted.failed {
        match plan().fault_for(f.item) {
            Fault::Panic { failing_attempts } => {
                assert_eq!(failing_attempts, u32::MAX, "item {}", f.item);
                assert!(f.message.contains("injected panic"), "{}", f.message);
            }
            Fault::NanSentiment { .. } => {
                assert!(f.message.contains("NaN sentiments"), "{}", f.message);
            }
            other => panic!("item {} failed under fault {other:?}", f.item),
        }
        assert_eq!(f.attempts, 2);
    }
    // Every survivor matches the fault-free run byte for byte.
    for s in &faulted.results {
        assert_eq!(
            render_item_summary(s),
            render_item_summary(clean_by_item[&s.item]),
            "item {} diverged under fault injection",
            s.item
        );
    }
}

#[test]
fn failure_accounting_is_jobs_invariant() {
    quiet_injected_panics();
    let corpus = corpus(5, 18);
    let run = |jobs| {
        summarize_corpus(
            &corpus,
            &BatchOptions {
                jobs,
                fault_plan: Some(plan()),
                retries: 1,
                ..BatchOptions::default()
            },
        )
    };
    let base = run(1);
    for jobs in [3, 8] {
        let r = run(jobs);
        assert_eq!(r.results, base.results, "jobs={jobs}");
        assert_eq!(r.failed, base.failed, "jobs={jobs}");
        assert_eq!(r.retried, base.retried, "jobs={jobs}");
    }
    // The stage-table footer renders the counts.
    let table = base.render_stage_table();
    assert!(
        table.contains(&format!("failed {}", base.failed.len())),
        "{table}"
    );
    assert!(
        table.contains(&format!("retried {}", base.retried)),
        "{table}"
    );
}

#[test]
fn nan_corruption_is_caught_not_propagated() {
    quiet_injected_panics();
    let corpus = corpus(8, 12);
    // Only NaN faults: every failure must come from the pipeline's
    // post-extraction NaN detection, and no NaN may reach a summary.
    let nan_only = FaultPlan {
        nan_rate: 1.0,
        ..FaultPlan::none(4)
    };
    let report = summarize_corpus(
        &corpus,
        &BatchOptions {
            fault_plan: Some(nan_only),
            retries: 0,
            ..BatchOptions::default()
        },
    );
    for f in &report.failed {
        assert!(f.message.contains("NaN sentiments"), "{}", f.message);
    }
    // Items with zero extracted pairs survive (corruption is a no-op).
    for s in &report.results {
        assert_eq!(s.num_pairs, 0, "item {} should have failed", s.item);
    }
}

#[test]
fn fault_free_plan_changes_nothing() {
    let corpus = corpus(13, 8);
    let clean = summarize_corpus(&corpus, &BatchOptions::default());
    let planned = summarize_corpus(
        &corpus,
        &BatchOptions {
            fault_plan: Some(FaultPlan::none(1)),
            ..BatchOptions::default()
        },
    );
    assert_eq!(clean.results, planned.results);
    assert!(planned.failed.is_empty());
    assert_eq!(planned.retried, 0);
}
