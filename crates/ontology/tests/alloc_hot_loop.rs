//! Pins the `HierarchyBuilder` hot-loop allocation fix: adding edges and
//! freezing a large DAG must perform a bounded number of heap
//! allocations (flat-arena growth only), never one-or-more per node.
//!
//! Before the CSR refactor, every `add_node` allocated two empty
//! `Vec<NodeId>`s and every `add_edge` could regrow two per-node vectors
//! — `O(n)` allocations for the adjacency alone. The arena builder does
//! a constant number of array allocations regardless of scale.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use osa_ontology::HierarchyBuilder;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn hot_loop_allocations_are_bounded_at_scale() {
    // A 50k-node multi-parent DAG — larger than the `--scale large`
    // ontology — built with a deterministic LCG.
    let n: u32 = 50_000;
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };

    let mut b = HierarchyBuilder::new();
    let ids: Vec<_> = (0..n).map(|i| b.add_node(&format!("n{i}"))).collect();

    // Node names/terms inherently allocate per node; the hot loop under
    // test is edge insertion plus `build()`.
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut edges = 0u64;
    for i in 1..n as usize {
        b.add_edge(ids[next(i as u64) as usize], ids[i]).unwrap();
        edges += 1;
        if next(100) < 20 {
            let p2 = next(i as u64) as usize;
            if b.add_edge(ids[p2], ids[i]).is_ok() {
                edges += 1;
            }
        }
    }
    let h = b.build().unwrap();
    let spent = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(h.node_count(), n as usize);
    assert_eq!(h.edge_count(), edges as usize);
    // ~60k edges: flat-vec + hash-set doubling plus a constant number of
    // arrays in build() lands well under 500 allocations. The per-node
    // regime this guards against would spend 100k+ here.
    assert!(
        spent < 2_000,
        "edge loop + build allocated {spent} times for {edges} edges; \
         expected bounded arena growth, not per-node allocation"
    );
}
