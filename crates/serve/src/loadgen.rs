//! `osars loadgen` — a minimal closed/open-loop HTTP load generator for
//! the daemon, over the same `std::net` sockets the server uses. Drives
//! `GET /summary/{item}` across `conns` keep-alive connections, cycling
//! item indices, optionally injecting a panicking request every Nth call
//! to prove the daemon keeps answering around poisoned work. Reports
//! nearest-rank p50/p95/p99 latency and achieved RPS (the
//! `BENCH_serve.json` payload).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Concurrent keep-alive connections.
    pub conns: usize,
    /// Total target request rate across all connections
    /// (`0` = closed-loop: each connection issues the next request as
    /// soon as the previous one answers — measures max sustained RPS).
    pub rps: u64,
    /// Wall-clock run length in seconds.
    pub duration_secs: u64,
    /// Extra query string appended to every request (no leading `?`),
    /// e.g. `k=4&algo=lazy`. Empty for server defaults.
    pub query: String,
    /// Inject `?inject=panic` on every Nth request (`0` = never). The
    /// poisoned requests must answer 500 while the rest answer 200.
    pub panic_every: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            conns: 4,
            rps: 0,
            duration_secs: 5,
            query: String::new(),
            panic_every: 0,
        }
    }
}

/// Aggregated results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests completed (any status).
    pub total: u64,
    /// Responses per status code, ascending by code.
    pub by_status: Vec<(u16, u64)>,
    /// Transport errors (connect/read/write failures).
    pub errors: u64,
    /// Nearest-rank latency percentiles over completed requests, in
    /// microseconds.
    pub p50_us: f64,
    /// 95th percentile latency (µs).
    pub p95_us: f64,
    /// 99th percentile latency (µs).
    pub p99_us: f64,
    /// Slowest single request (µs).
    pub max_us: f64,
    /// Completed requests divided by elapsed wall-clock.
    pub achieved_rps: f64,
    /// Actual elapsed seconds.
    pub elapsed_secs: f64,
    /// The configuration that produced this report.
    pub opts: LoadgenOptions,
}

impl LoadgenReport {
    /// Responses with the given status.
    pub fn count(&self, status: u16) -> u64 {
        self.by_status
            .iter()
            .find(|(s, _)| *s == status)
            .map_or(0, |(_, n)| *n)
    }

    /// The `BENCH_serve.json` payload.
    pub fn to_json(&self) -> String {
        use osa_json::Value;
        let statuses = Value::Object(
            self.by_status
                .iter()
                .map(|(s, n)| (s.to_string(), Value::Number(*n as f64)))
                .collect(),
        );
        let obj = Value::Object(vec![
            ("bench".to_owned(), Value::String("serve".to_owned())),
            ("conns".to_owned(), Value::Number(self.opts.conns as f64)),
            ("target_rps".to_owned(), Value::Number(self.opts.rps as f64)),
            (
                "panic_every".to_owned(),
                Value::Number(self.opts.panic_every as f64),
            ),
            ("query".to_owned(), Value::String(self.opts.query.clone())),
            ("total".to_owned(), Value::Number(self.total as f64)),
            ("statuses".to_owned(), statuses),
            ("errors".to_owned(), Value::Number(self.errors as f64)),
            ("p50_us".to_owned(), Value::Number(self.p50_us)),
            ("p95_us".to_owned(), Value::Number(self.p95_us)),
            ("p99_us".to_owned(), Value::Number(self.p99_us)),
            ("max_us".to_owned(), Value::Number(self.max_us)),
            ("achieved_rps".to_owned(), Value::Number(self.achieved_rps)),
            ("elapsed_secs".to_owned(), Value::Number(self.elapsed_secs)),
        ]);
        osa_json::to_string_pretty(&obj)
    }
}

/// One worker's tally, merged after the run.
#[derive(Default)]
struct ConnTally {
    latencies_us: Vec<f64>,
    statuses: Vec<(u16, u64)>,
    errors: u64,
}

impl ConnTally {
    fn record_status(&mut self, status: u16) {
        match self.statuses.iter_mut().find(|(s, _)| *s == status) {
            Some((_, n)) => *n += 1,
            None => self.statuses.push((status, 1)),
        }
    }
}

/// A tiny blocking HTTP/1.1 GET over an existing keep-alive connection.
/// Returns the status code; the body is read (to keep the connection
/// clean) and discarded.
fn http_get(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    host: &str,
    target: &str,
) -> std::io::Result<u16> {
    // One write per request: fragmented writes into an unbuffered socket
    // cost Nagle/delayed-ACK stalls (see `http::write_response`).
    writer.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: {host}\r\nConnection: keep-alive\r\n\r\n")
            .as_bytes(),
    )?;
    writer.flush()?;
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed in headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, val)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = val.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

/// Query `GET /healthz` once and return the corpus item count, so the
/// generator knows which item indices exist.
fn fetch_item_count(addr: &str) -> std::io::Result<usize> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    write!(
        writer,
        "GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    writer.flush()?;
    let mut response = Vec::new();
    reader.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    let items = osa_json::parse(body)
        .ok()
        .and_then(|v| v.get("items").and_then(osa_json::Value::as_u64))
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "healthz gave no item count",
            )
        })?;
    Ok(items as usize)
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Run the generator against a live daemon at `addr`
/// (e.g. `127.0.0.1:7878`).
pub fn run_loadgen(addr: &str, opts: &LoadgenOptions) -> std::io::Result<LoadgenReport> {
    let items = fetch_item_count(addr)?;
    if items == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "daemon reports an empty corpus",
        ));
    }
    let conns = opts.conns.max(1);
    let deadline = Instant::now() + Duration::from_secs(opts.duration_secs.max(1));
    // Open-loop pacing: each connection owns every conns-th request of
    // the global schedule, so per-connection interval = conns/rps.
    let interval = if opts.rps > 0 {
        Some(Duration::from_secs_f64(conns as f64 / opts.rps as f64))
    } else {
        None
    };
    let started = Instant::now();
    let tallies = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let opts = opts.clone();
                scope.spawn(move || conn_loop(addr, &opts, items, c, conns, deadline, interval))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect::<Vec<_>>()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies = Vec::new();
    let mut by_status: Vec<(u16, u64)> = Vec::new();
    let mut errors = 0;
    for t in tallies {
        latencies.extend(t.latencies_us);
        errors += t.errors;
        for (s, n) in t.statuses {
            match by_status.iter_mut().find(|(bs, _)| *bs == s) {
                Some((_, bn)) => *bn += n,
                None => by_status.push((s, n)),
            }
        }
    }
    by_status.sort_unstable_by_key(|(s, _)| *s);
    latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total = latencies.len() as u64;
    Ok(LoadgenReport {
        total,
        by_status,
        errors,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0.0),
        achieved_rps: if elapsed > 0.0 {
            total as f64 / elapsed
        } else {
            0.0
        },
        elapsed_secs: elapsed,
        opts: opts.clone(),
    })
}

#[allow(clippy::too_many_arguments)]
fn conn_loop(
    addr: &str,
    opts: &LoadgenOptions,
    items: usize,
    conn_id: usize,
    conns: usize,
    deadline: Instant,
    interval: Option<Duration>,
) -> ConnTally {
    let mut tally = ConnTally::default();
    let mut connection: Option<(BufReader<TcpStream>, TcpStream)> = None;
    // Global request sequence: connection c serves ticks c, c+conns, ...
    // so the panic_every cadence is exact across the fleet.
    let mut seq = conn_id as u64;
    let mut next_start = Instant::now();
    loop {
        if let Some(interval) = interval {
            let now = Instant::now();
            if next_start > now {
                std::thread::sleep(next_start - now);
            }
            next_start += interval;
        }
        if Instant::now() >= deadline {
            break;
        }
        if connection.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                    let _ = stream.set_nodelay(true);
                    match stream.try_clone() {
                        Ok(w) => connection = Some((BufReader::new(stream), w)),
                        Err(_) => {
                            tally.errors += 1;
                            continue;
                        }
                    }
                }
                Err(_) => {
                    tally.errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }
        }
        let item = (seq as usize) % items;
        let inject = opts.panic_every > 0 && seq % opts.panic_every == opts.panic_every - 1;
        let mut target = format!("/summary/{item}");
        let mut sep = '?';
        if !opts.query.is_empty() {
            target.push(sep);
            target.push_str(&opts.query);
            sep = '&';
        }
        if inject {
            target.push(sep);
            target.push_str("inject=panic");
        }
        let (reader, writer) = connection.as_mut().expect("connection just ensured");
        let start = Instant::now();
        match http_get(reader, writer, addr, &target) {
            Ok(status) => {
                tally.latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                tally.record_status(status);
            }
            Err(_) => {
                tally.errors += 1;
                connection = None; // reconnect next tick
            }
        }
        seq += conns as u64;
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn report_json_is_parseable() {
        let report = LoadgenReport {
            total: 10,
            by_status: vec![(200, 9), (500, 1)],
            errors: 0,
            p50_us: 120.0,
            p95_us: 340.0,
            p99_us: 900.0,
            max_us: 950.0,
            achieved_rps: 100.0,
            elapsed_secs: 0.1,
            opts: LoadgenOptions::default(),
        };
        let parsed = osa_json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("statuses")
                .and_then(|s| s.get("200"))
                .and_then(osa_json::Value::as_u64),
            Some(9)
        );
        assert_eq!(report.count(500), 1);
        assert_eq!(report.count(404), 0);
    }
}
