//! Jobs-invariance of the pipeline metrics: with observability enabled,
//! the deterministic algorithm counters must be identical whether the
//! batch ran on 1 worker or 8 — metrics observe, they never perturb.
//!
//! This file intentionally holds exactly **one** `#[test]`: it enables,
//! snapshots and resets the process-global `osa_obs` registry, which
//! would race with any sibling test running in the same process.

use osa_core::Granularity;
use osa_datasets::{Corpus, CorpusConfig};
use osa_runtime::{summarize_corpus, BatchAlgorithm, BatchOptions};

/// Counters whose totals are allowed to depend on the worker count:
/// everything `runtime.*` except `runtime.items.completed` (per-worker
/// scratch reuse and steal accounting follow the schedule, not the
/// algorithm).
fn schedule_independent(counters: Vec<(String, u64)>) -> Vec<(String, u64)> {
    counters
        .into_iter()
        .filter(|(name, _)| !name.starts_with("runtime.") || name == "runtime.items.completed")
        .collect()
}

#[test]
fn algorithm_counters_are_identical_across_worker_counts() {
    let corpus = Corpus::phones(&CorpusConfig::phones_small(), 42);
    let opts = |jobs: usize| BatchOptions {
        jobs,
        k: 5,
        eps: 0.5,
        granularity: Granularity::Sentences,
        algorithm: BatchAlgorithm::from_name("greedy").unwrap(),
        corpus_seed: 42,
        ..BatchOptions::default()
    };

    let obs = osa_obs::global();
    obs.set_enabled(true);
    obs.reset();
    let sequential = summarize_corpus(&corpus, &opts(1));
    let snap1 = obs.snapshot();

    obs.reset();
    let parallel = summarize_corpus(&corpus, &opts(8));
    let snap8 = obs.snapshot();
    obs.set_enabled(false);

    // The summaries themselves are byte-identical (the engine's core
    // determinism contract) …
    assert_eq!(sequential.results, parallel.results);
    // … and so is every schedule-independent counter total.
    let kept = schedule_independent(snap1.counters);
    assert_eq!(kept, schedule_independent(snap8.counters));
    // The invariant set is non-trivial: the pipeline really counted.
    assert!(
        kept.iter().any(|(n, v)| n == "greedy.gain_evals" && *v > 0),
        "expected greedy.gain_evals > 0 in {kept:?}"
    );
    assert!(
        kept.iter()
            .any(|(n, v)| n == "runtime.items.completed" && *v == corpus.items.len() as u64),
        "expected runtime.items.completed == item count in {kept:?}"
    );
}
