//! Doctor-review scenario: run all three algorithms (Greedy, Randomized
//! Rounding, exact ILP) on one synthetic doctor's reviews at every
//! problem granularity, comparing costs and wall-clock times — a
//! single-item version of the paper's Figs. 4–5 experiment.
//!
//! Run with: `cargo run --release --example doctor_reviews`

use osars::core::{
    CoverageGraph, Granularity, GreedySummarizer, IlpSummarizer, RandomizedRounding, Summarizer,
};
use osars::datasets::{extract_item, Corpus, CorpusConfig};
use osars::eval::Stopwatch;
use osars::text::{ConceptMatcher, SentimentLexicon};

const EPS: f64 = 0.5;
const K: usize = 5;

fn main() {
    let corpus = Corpus::doctors(&CorpusConfig::doctors_small(), 99);
    let matcher = ConceptMatcher::from_hierarchy(&corpus.hierarchy);
    let lexicon = SentimentLexicon::default();

    let item = &corpus.items[0];
    let ex = extract_item(item, &matcher, &lexicon);
    println!(
        "item '{}': {} reviews, {} sentences, {} extracted pairs\n",
        item.name,
        item.reviews.len(),
        ex.sentences.len(),
        ex.pairs.len()
    );

    let algorithms: Vec<(&str, Box<dyn Summarizer>)> = vec![
        ("greedy", Box::new(GreedySummarizer)),
        (
            "randomized-rounding",
            Box::new(RandomizedRounding::with_seed(5)),
        ),
        ("ilp (optimal)", Box::new(IlpSummarizer)),
    ];

    for (label, granularity, graph) in [
        (
            "k-Pairs",
            Granularity::Pairs,
            CoverageGraph::for_pairs(&corpus.hierarchy, &ex.pairs, EPS),
        ),
        (
            "k-Sentences",
            Granularity::Sentences,
            CoverageGraph::for_groups(
                &corpus.hierarchy,
                &ex.pairs,
                &ex.sentence_groups(),
                EPS,
                Granularity::Sentences,
            ),
        ),
        (
            "k-Reviews",
            Granularity::Reviews,
            CoverageGraph::for_groups(
                &corpus.hierarchy,
                &ex.pairs,
                &ex.review_groups(),
                EPS,
                Granularity::Reviews,
            ),
        ),
    ] {
        let _ = granularity;
        println!(
            "--- {label} Coverage (|U|={}, |W|={}, |E|={}, k={K}) ---",
            graph.num_candidates(),
            graph.num_pairs(),
            graph.num_edges()
        );
        for (name, alg) in &algorithms {
            let sw = Stopwatch::start();
            let s = alg.summarize(&graph, K);
            println!("  {name:<22} cost {:>5}  ({:>9.1} µs)", s.cost, sw.micros());
        }
        println!();
    }

    // Show what a k-sentence summary actually reads like.
    let graph = CoverageGraph::for_groups(
        &corpus.hierarchy,
        &ex.pairs,
        &ex.sentence_groups(),
        EPS,
        Granularity::Sentences,
    );
    let summary = GreedySummarizer.summarize(&graph, K);
    println!("greedy k={K} sentence summary:");
    for &si in &summary.selected {
        println!("  • {}", ex.sentences[si].text);
    }
}
