//! Property tests for hierarchy invariants on random rooted DAGs.

use osa_ontology::{Hierarchy, HierarchyBuilder, NodeId};
use proptest::prelude::*;

fn arb_hierarchy() -> impl Strategy<Value = Hierarchy> {
    (2usize..=20)
        .prop_flat_map(|n| {
            let parents = (1..n)
                .map(|i| (0..i, proptest::option::of(0..i)))
                .collect::<Vec<_>>();
            parents.prop_map(move |ps| {
                let mut b = HierarchyBuilder::new();
                for i in 0..n {
                    b.add_node(&format!("node-{i}"));
                }
                for (i, (p1, p2)) in ps.into_iter().enumerate() {
                    let child = NodeId::from_index(i + 1);
                    b.add_edge(NodeId::from_index(p1), child).unwrap();
                    if let Some(p2) = p2 {
                        if p2 != p1 {
                            b.add_edge(NodeId::from_index(p2), child).unwrap();
                        }
                    }
                }
                b.build().expect("construction yields a valid rooted DAG")
            })
        })
        .no_shrink()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn depth_is_shortest_root_distance(h in arb_hierarchy()) {
        for n in h.nodes() {
            prop_assert_eq!(Some(h.depth(n)), h.dist_down(h.root(), n));
        }
    }

    #[test]
    fn child_depth_at_most_parent_plus_one(h in arb_hierarchy()) {
        for n in h.nodes() {
            for &c in h.children(n) {
                prop_assert!(h.depth(c) <= h.depth(n) + 1);
                prop_assert!(h.depth(c) >= 1);
            }
        }
    }

    #[test]
    fn ancestors_and_descendants_are_dual(h in arb_hierarchy()) {
        for n in h.nodes() {
            for (a, d) in h.ancestors_with_dist(n) {
                prop_assert_eq!(h.dist_down(a, n), Some(d));
                prop_assert!(h
                    .descendants_with_dist(a)
                    .iter()
                    .any(|&(x, dd)| x == n && dd == d));
            }
        }
    }

    #[test]
    fn distance_satisfies_directed_triangle_inequality(h in arb_hierarchy()) {
        // For ancestors a of b and b of c: d(a,c) ≤ d(a,b) + d(b,c).
        for a in h.nodes() {
            for (b, dab) in h.descendants_with_dist(a) {
                for (c, dbc) in h.descendants_with_dist(b) {
                    let dac = h.dist_down(a, c).expect("a reaches c through b");
                    prop_assert!(dac <= dab + dbc);
                }
            }
        }
    }

    #[test]
    fn every_node_reaches_root_upward(h in arb_hierarchy()) {
        for n in h.nodes() {
            prop_assert!(h.is_ancestor(h.root(), n));
            let anc = h.ancestors_with_dist(n);
            prop_assert!(anc.iter().any(|&(a, _)| a == h.root()));
        }
    }

    #[test]
    fn json_roundtrip_preserves_distances(h in arb_hierarchy()) {
        let h2 = osa_ontology::io::from_json(&osa_ontology::io::to_json(&h)).unwrap();
        prop_assert_eq!(h.node_count(), h2.node_count());
        for a in h.nodes() {
            for b in h.nodes() {
                let a2 = h2.node_by_name(h.name(a)).unwrap();
                let b2 = h2.node_by_name(h.name(b)).unwrap();
                prop_assert_eq!(h.dist_down(a, b), h2.dist_down(a2, b2));
            }
        }
    }

    #[test]
    fn topological_order_respects_edges(h in arb_hierarchy()) {
        let order = h.topological_order();
        prop_assert_eq!(order.len(), h.node_count());
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in h.nodes() {
            for &c in h.children(n) {
                prop_assert!(pos[&n] < pos[&c]);
            }
        }
    }
}
