//! Property tests for the LP/ILP solver substrate: solutions are always
//! feasible, LP optima dominate every sampled feasible point, and the
//! branch & bound matches dynamic programming on knapsack instances.

use osars::solver::{Cmp, Model, Status};
use proptest::prelude::*;

const FEAS_TOL: f64 = 1e-6;

/// Random bounded LP: minimize cᵀx over box [0, u] with ≤ constraints
/// having non-negative coefficients (always feasible at x = 0).
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<f64>,
    ubs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn arb_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..=4, 0usize..=4)
        .prop_flat_map(|(nv, nc)| {
            let costs = proptest::collection::vec(-5i8..=5, nv..=nv);
            let ubs = proptest::collection::vec(1u8..=10, nv..=nv);
            let rows = proptest::collection::vec(
                (proptest::collection::vec(0u8..=3, nv..=nv), 1u8..=20),
                nc..=nc,
            );
            (costs, ubs, rows)
        })
        .prop_map(|(costs, ubs, rows)| RandomLp {
            costs: costs.into_iter().map(f64::from).collect(),
            ubs: ubs.into_iter().map(f64::from).collect(),
            rows: rows
                .into_iter()
                .map(|(coefs, rhs)| (coefs.into_iter().map(f64::from).collect(), f64::from(rhs)))
                .collect(),
        })
}

fn build(lp: &RandomLp) -> (Model, Vec<osars::solver::VarId>) {
    let mut m = Model::minimize();
    let xs: Vec<_> = lp
        .costs
        .iter()
        .zip(&lp.ubs)
        .map(|(&c, &u)| m.add_var(0.0, u, c))
        .collect();
    for (coefs, rhs) in &lp.rows {
        let terms: Vec<_> = xs.iter().copied().zip(coefs.iter().copied()).collect();
        m.add_constraint(&terms, Cmp::Le, *rhs);
    }
    (m, xs)
}

fn is_feasible(lp: &RandomLp, x: &[f64]) -> bool {
    x.iter()
        .zip(&lp.ubs)
        .all(|(&v, &u)| v >= -FEAS_TOL && v <= u + FEAS_TOL)
        && lp.rows.iter().all(|(coefs, rhs)| {
            x.iter().zip(coefs).map(|(v, c)| v * c).sum::<f64>() <= rhs + FEAS_TOL
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lp_solution_is_feasible_and_dominant(lp in arb_lp(), probe in proptest::collection::vec(0.0f64..1.0, 4)) {
        let (m, _) = build(&lp);
        let sol = m.solve_lp().expect("bounded LP");
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(is_feasible(&lp, &sol.values), "solver returned infeasible point");

        // The optimum dominates a sampled feasible point (scaled box
        // point pushed inside the constraints).
        let mut cand: Vec<f64> = probe
            .iter()
            .zip(&lp.ubs)
            .map(|(&p, &u)| p * u)
            .collect();
        // Scale down until feasible (coefficients are non-negative).
        let mut scale = 1.0f64;
        for (coefs, rhs) in &lp.rows {
            let lhs: f64 = cand.iter().zip(coefs).map(|(v, c)| v * c).sum();
            if lhs > *rhs {
                scale = scale.min(rhs / lhs);
            }
        }
        for v in &mut cand {
            *v *= scale;
        }
        prop_assert!(is_feasible(&lp, &cand));
        let cand_obj: f64 = cand.iter().zip(&lp.costs).map(|(v, c)| v * c).sum();
        prop_assert!(
            sol.objective <= cand_obj + 1e-6,
            "optimum {} beaten by sample {}",
            sol.objective,
            cand_obj
        );
    }

    #[test]
    fn ilp_matches_knapsack_dp(
        values in proptest::collection::vec(1u16..=30, 1..=8),
        weights in proptest::collection::vec(1u16..=10, 1..=8),
        capacity in 1u16..=30,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];

        // DP reference.
        let cap = capacity as usize;
        let mut dp = vec![0u32; cap + 1];
        for i in 0..n {
            let w = weights[i] as usize;
            let v = u32::from(values[i]);
            for c in (w..=cap).rev() {
                dp[c] = dp[c].max(dp[c - w] + v);
            }
        }
        let best = dp[cap];

        // ILP.
        let mut m = Model::minimize();
        let xs: Vec<_> = values.iter().map(|&v| m.add_bin_var(-f64::from(v))).collect();
        let terms: Vec<_> = xs
            .iter()
            .copied()
            .zip(weights.iter().map(|&w| f64::from(w)))
            .collect();
        m.add_constraint(&terms, Cmp::Le, f64::from(capacity));
        let sol = m.solve_ilp().expect("knapsack solves");
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(
            (sol.objective + f64::from(best)).abs() < 1e-6,
            "ILP {} vs DP {}",
            -sol.objective,
            best
        );
    }

    #[test]
    fn lp_relaxation_never_exceeds_ilp(
        values in proptest::collection::vec(1u16..=20, 2..=6),
        capacity in 2u16..=20,
    ) {
        // Same knapsack; LP bound must dominate (min: LP ≤ ILP).
        let mut m = Model::minimize();
        let xs: Vec<_> = values.iter().map(|&v| m.add_bin_var(-f64::from(v))).collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, 2.0)).collect();
        m.add_constraint(&terms, Cmp::Le, f64::from(capacity));
        let lp = m.solve_lp().expect("lp").objective;
        let ilp = m.solve_ilp().expect("ilp").objective;
        prop_assert!(lp <= ilp + 1e-6, "LP {} > ILP {}", lp, ilp);
    }
}

// --- degenerate corner cases ----------------------------------------------
//
// The property blocks above only generate feasible, bounded, non-degenerate
// models; these pin the solver's behavior on the pathological shapes the
// differential harness can feed it.

#[test]
fn infeasible_model_reports_infeasible() {
    // x ∈ [0, 1] but a constraint demands x ≥ 2: no feasible point.
    let mut m = Model::minimize();
    let x = m.add_var(0.0, 1.0, 1.0);
    m.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
    let sol = m
        .solve_lp()
        .expect("infeasibility is a status, not an error");
    assert_eq!(sol.status, Status::Infeasible);

    // The ILP path surfaces the same status for an integer variable.
    let mut m = Model::minimize();
    let x = m.add_int_var(0.0, 1.0, 1.0);
    m.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
    let sol = m
        .solve_ilp()
        .expect("infeasibility is a status, not an error");
    assert_eq!(sol.status, Status::Infeasible);
}

#[test]
fn unbounded_objective_is_an_error() {
    // minimize −x with x free above: the objective dives to −∞.
    let mut m = Model::minimize();
    let _ = m.add_var(0.0, f64::INFINITY, -1.0);
    assert!(matches!(
        m.solve_lp(),
        Err(osars::solver::SolverError::Unbounded)
    ));
}

#[test]
fn integral_relaxation_solves_at_the_root_node() {
    // min x + y s.t. x ≥ 1, y ≥ 1 over integer boxes: the LP relaxation
    // lands on the integral vertex (1, 1), so branch & bound must finish
    // without branching — pinned by allowing it exactly one node.
    use osars::solver::IlpOptions;
    let mut m = Model::minimize();
    let x = m.add_int_var(0.0, 3.0, 1.0);
    let y = m.add_int_var(0.0, 3.0, 1.0);
    m.add_constraint(&[(x, 1.0)], Cmp::Ge, 1.0);
    m.add_constraint(&[(y, 1.0)], Cmp::Ge, 1.0);
    let opts = IlpOptions {
        max_nodes: 1,
        ..IlpOptions::default()
    };
    let sol = m.solve_ilp_with(&opts).expect("root relaxation solves");
    assert_eq!(
        sol.status,
        Status::Optimal,
        "root node must prove optimality"
    );
    assert!((sol.objective - 2.0).abs() < 1e-9);
    assert!((sol.value(x) - 1.0).abs() < 1e-6);
    assert!((sol.value(y) - 1.0).abs() < 1e-6);
}

#[test]
fn degenerate_ties_do_not_cycle() {
    // Beale's classic cycling example: every basic feasible solution on
    // the way to the optimum is degenerate (RHS zeros force ratio-test
    // ties), and a naive largest-coefficient pivot rule loops forever.
    // The solver must break the ties consistently and reach the known
    // optimum −0.05 instead of hitting its iteration cap.
    let mut m = Model::minimize();
    let x1 = m.add_var(0.0, f64::INFINITY, -0.75);
    let x2 = m.add_var(0.0, f64::INFINITY, 150.0);
    let x3 = m.add_var(0.0, 1.0, -0.02);
    let x4 = m.add_var(0.0, f64::INFINITY, 6.0);
    m.add_constraint(
        &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Cmp::Le,
        0.0,
    );
    m.add_constraint(
        &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Cmp::Le,
        0.0,
    );
    let sol = m.solve_lp().expect("degenerate pivots must not cycle");
    assert_eq!(sol.status, Status::Optimal);
    assert!(
        (sol.objective - (-0.05)).abs() < 1e-9,
        "objective {} != -0.05",
        sol.objective
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dual_simplex_matches_primal_on_nonnegative_costs(
        costs in proptest::collection::vec(0u8..=5, 1..=4),
        ubs in proptest::collection::vec(1u8..=8, 1..=4),
        rows in proptest::collection::vec(
            (proptest::collection::vec(-2i8..=3, 4), -5i8..=20, 0u8..=2),
            0..=4,
        ),
    ) {
        use osars::solver::LpMethod;
        let n = costs.len().min(ubs.len());
        let mut m = Model::minimize();
        let xs: Vec<_> = (0..n)
            .map(|j| m.add_var(0.0, f64::from(ubs[j]), f64::from(costs[j])))
            .collect();
        for (coefs, rhs, cmp) in &rows {
            let terms: Vec<_> = xs
                .iter()
                .copied()
                .zip(coefs.iter().map(|&c| f64::from(c)))
                .collect();
            let cmp = match cmp {
                0 => Cmp::Le,
                1 => Cmp::Ge,
                _ => Cmp::Eq,
            };
            m.add_constraint(&terms, cmp, f64::from(*rhs));
        }
        let p = m.solve_lp().expect("primal solves bounded model");
        let d = m.solve_lp_with(LpMethod::Dual).expect("costs are non-negative");
        prop_assert_eq!(p.status, d.status, "status mismatch");
        if p.status == Status::Optimal {
            prop_assert!(
                (p.objective - d.objective).abs() < 1e-6,
                "primal {} vs dual {}",
                p.objective,
                d.objective
            );
        }
    }
}
