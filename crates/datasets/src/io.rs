//! JSON persistence for corpora.
//!
//! Snapshots let an experiment run against the *exact* corpus of an
//! earlier run (generation is already deterministic in the seed, but a
//! snapshot survives generator changes). The format stores the hierarchy
//! via `osa_ontology::io` and the reviews with their planted ground
//! truth, referencing concepts by name (stable across arena layouts).

use osa_core::Pair;
use osa_json::Value;

use crate::{Corpus, Item, Review};

/// Error type for corpus (de)serialization.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying JSON failure.
    Serde(String),
    /// Hierarchy document failure.
    Ontology(osa_ontology::OntologyError),
    /// A review references a concept name missing from the hierarchy.
    UnknownConcept(String),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Serde(e) => write!(f, "corpus serialization error: {e}"),
            Self::Ontology(e) => write!(f, "corpus hierarchy error: {e}"),
            Self::UnknownConcept(c) => write!(f, "planted pair references unknown concept '{c}'"),
            Self::Io(e) => write!(f, "corpus i/o error: {e}"),
        }
    }
}

impl std::error::Error for CorpusIoError {}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn bad(msg: &str) -> CorpusIoError {
    CorpusIoError::Serde(msg.to_owned())
}

/// Serialize a corpus to JSON.
///
/// Document shape:
///
/// ```json
/// {
///   "name": "...",
///   "hierarchy": { "nodes": [...], "edges": [...] },
///   "items": [
///     { "name": "...",
///       "reviews": [ { "text": "...", "planted": [["screen", 0.5], ...] } ] }
///   ]
/// }
/// ```
pub fn corpus_to_json(c: &Corpus) -> String {
    let items = c
        .items
        .iter()
        .map(|item| {
            let reviews = item
                .reviews
                .iter()
                .map(|r| {
                    let planted = r
                        .planted
                        .iter()
                        .map(|p| {
                            Value::Array(vec![
                                Value::from(c.hierarchy.name(p.concept)),
                                Value::from(p.sentiment),
                            ])
                        })
                        .collect();
                    Value::Object(vec![
                        ("text".into(), Value::from(r.text.as_str())),
                        ("planted".into(), Value::Array(planted)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("name".into(), Value::from(item.name.as_str())),
                ("reviews".into(), Value::Array(reviews)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("name".into(), Value::from(c.name.as_str())),
        ("hierarchy".into(), osa_ontology::io::to_value(&c.hierarchy)),
        ("items".into(), Value::Array(items)),
    ]);
    osa_json::to_string(&doc)
}

/// Parse a corpus from its JSON representation.
pub fn corpus_from_json(json: &str) -> Result<Corpus, CorpusIoError> {
    let doc = osa_json::parse(json).map_err(|e| CorpusIoError::Serde(e.to_string()))?;
    let name = doc
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("corpus must have a string 'name'"))?
        .to_owned();
    let hierarchy = osa_ontology::io::from_value(
        doc.get("hierarchy")
            .ok_or_else(|| bad("corpus must have a 'hierarchy' object"))?,
    )
    .map_err(CorpusIoError::Ontology)?;
    let item_docs = doc
        .get("items")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("corpus must have an 'items' array"))?;
    let mut items = Vec::with_capacity(item_docs.len());
    for item in item_docs {
        let item_name = item
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("item must have a string 'name'"))?
            .to_owned();
        let review_docs = item
            .get("reviews")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("item must have a 'reviews' array"))?;
        let mut reviews = Vec::with_capacity(review_docs.len());
        for r in review_docs {
            let text = r
                .get("text")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("review must have a string 'text'"))?
                .to_owned();
            let planted_docs = r
                .get("planted")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("review must have a 'planted' array"))?;
            let mut planted = Vec::with_capacity(planted_docs.len());
            for p in planted_docs {
                let (concept_name, sentiment) = match p.as_array() {
                    Some([n, s]) => (
                        n.as_str()
                            .ok_or_else(|| bad("planted concept must be a string"))?,
                        s.as_f64()
                            .ok_or_else(|| bad("planted sentiment must be a number"))?,
                    ),
                    _ => return Err(bad("planted entry must be a [concept, sentiment] pair")),
                };
                let concept = hierarchy
                    .node_by_name(concept_name)
                    .ok_or_else(|| CorpusIoError::UnknownConcept(concept_name.to_owned()))?;
                planted.push(Pair::new(concept, sentiment));
            }
            reviews.push(Review { text, planted });
        }
        items.push(Item {
            name: item_name,
            reviews,
        });
    }
    Ok(Corpus {
        name,
        hierarchy,
        items,
    })
}

/// Write a corpus to a JSON file.
pub fn save_corpus(c: &Corpus, path: &std::path::Path) -> Result<(), CorpusIoError> {
    std::fs::write(path, corpus_to_json(c))?;
    Ok(())
}

/// Load a corpus from a JSON file.
pub fn load_corpus(path: &std::path::Path) -> Result<Corpus, CorpusIoError> {
    corpus_from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusConfig;

    fn tiny() -> Corpus {
        Corpus::phones(
            &CorpusConfig {
                items: 2,
                min_reviews: 2,
                max_reviews: 4,
                mean_reviews: 3.0,
                mean_sentences: 3.0,
                aspect_sentence_prob: 0.8,
            },
            5,
        )
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let c = tiny();
        let c2 = corpus_from_json(&corpus_to_json(&c)).unwrap();
        assert_eq!(c.name, c2.name);
        assert_eq!(c.items.len(), c2.items.len());
        assert_eq!(c.hierarchy.node_count(), c2.hierarchy.node_count());
        for (a, b) in c.items.iter().zip(&c2.items) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.reviews.len(), b.reviews.len());
            for (ra, rb) in a.reviews.iter().zip(&b.reviews) {
                assert_eq!(ra.text, rb.text);
                assert_eq!(ra.planted.len(), rb.planted.len());
                for (pa, pb) in ra.planted.iter().zip(&rb.planted) {
                    assert_eq!(c.hierarchy.name(pa.concept), c2.hierarchy.name(pb.concept));
                    assert_eq!(pa.sentiment, pb.sentiment);
                }
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let c = tiny();
        let dir = std::env::temp_dir().join("osa_corpus_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");
        save_corpus(&c, &path).unwrap();
        let c2 = load_corpus(&path).unwrap();
        assert_eq!(c.total_reviews(), c2.total_reviews());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unknown_concepts() {
        let c = tiny();
        let json = corpus_to_json(&c).replace("\"screen\"", "\"nonexistent-node\"");
        // Only planted references are validated; hierarchy names change
        // too with a blanket replace, so craft a minimal bad document.
        let bad = r#"{
            "name": "x",
            "hierarchy": {"nodes": [{"name": "r", "terms": ["r"]}], "edges": []},
            "items": [{"name": "i", "reviews": [{"text": "t", "planted": [["ghost", 0.5]]}]}]
        }"#;
        let _ = json;
        assert!(matches!(
            corpus_from_json(bad),
            Err(CorpusIoError::UnknownConcept(_))
        ));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(
            corpus_from_json("{"),
            Err(CorpusIoError::Serde(_))
        ));
    }
}
